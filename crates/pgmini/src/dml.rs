//! DML execution: INSERT (with ON CONFLICT), UPDATE, DELETE, COPY.
//!
//! Writers follow PostgreSQL's read-committed protocol: target rows are found
//! under the statement snapshot, locked, then re-checked against the latest
//! committed version before modification (the EvalPlanQual dance).

use crate::catalog::{IndexMethod, TableMeta};
use crate::error::{ErrorCode, PgError, PgResult};
use crate::exec::{execute_select, scan_with_rowids, ExecCtx};
use crate::expr::{bind, eval, BExpr, ColumnRef, RowScope};
use crate::index::IndexStore;
use crate::lock::{LockKey, LockMode};
use crate::plan::{choose_access_paths, split_conjuncts, conjoin, PlanNode};
use crate::storage::{ExpireOutcome, TableStore};
use crate::types::{Datum, Row};
use crate::txn::INVALID_XID;
use crate::wal::WalRecord;
use sqlparse::ast::{Assignment, ConflictAction, Expr, Insert, InsertSource};

/// Scope of a table's own columns (unqualified + optionally aliased).
fn table_scope(meta: &TableMeta, alias: Option<&str>) -> RowScope {
    let q = alias.unwrap_or(&meta.name);
    RowScope {
        cols: meta.columns.iter().map(|c| ColumnRef::new(Some(q), &c.name)).collect(),
    }
}

/// Charge the simulated cost of writing one row (heap write + WAL + per-index
/// maintenance; trigram GIN entries dominate ingest cost, which is exactly
/// the effect Figure 7(a) measures).
fn charge_write(ctx: &mut ExecCtx, meta: &TableMeta, row: &Row) -> PgResult<()> {
    let model = ctx.engine.config.cost;
    ctx.cost.add_tuples(&model, 1);
    ctx.cost.add_cpu(model.cpu_tuple_ms); // WAL record
    for iid in &meta.indexes {
        let imeta = ctx.engine.index_meta(*iid)?;
        match imeta.method {
            IndexMethod::BTree => ctx.cost.add_cpu(model.index_descend_ms * 0.5),
            IndexMethod::Gin => {
                // one posting insertion per trigram of the indexed text
                let (keys, _) = ctx.engine.bound_index(&imeta, meta)?;
                let v = eval(&keys[0], row, &ctx.eval_ctx)?;
                if !v.is_null() {
                    let grams = crate::types::text_ops::trigrams(&v.to_text()).len();
                    ctx.cost.add_cpu(model.cpu_operator_ms * 4.0 * grams as f64);
                }
            }
        }
    }
    Ok(())
}

/// Check all unique indexes for a conflicting live row. `exclude` skips the
/// row being updated.
fn check_unique(
    ctx: &ExecCtx,
    meta: &TableMeta,
    row: &Row,
    exclude: Option<u64>,
) -> PgResult<()> {
    let store = ctx.engine.store(meta.id)?;
    let TableStore::Heap(heap) = &*store else { return Ok(()) };
    for iid in &meta.indexes {
        let imeta = ctx.engine.index_meta(*iid)?;
        if !imeta.unique {
            continue;
        }
        let (keys, _) = ctx.engine.bound_index(&imeta, meta)?;
        let key: Vec<Datum> =
            keys.iter().map(|k| eval(k, row, &ctx.eval_ctx)).collect::<PgResult<_>>()?;
        if key.iter().any(Datum::is_null) {
            continue; // SQL: NULLs never conflict
        }
        let istore = ctx.engine.index_store(*iid)?;
        let IndexStore::BTree(b) = &*istore else { continue };
        for rid in b.get_eq(&key) {
            if Some(rid) == exclude {
                continue;
            }
            for version in heap.live_or_pending_versions(&ctx.engine.txns, rid) {
                // re-check key equality (index entries can be stale)
                let vkey: Vec<Datum> = keys
                    .iter()
                    .map(|k| eval(k, &version, &ctx.eval_ctx))
                    .collect::<PgResult<_>>()?;
                if vkey
                    .iter()
                    .zip(&key)
                    .all(|(a, b)| a.sql_cmp(b) == Some(std::cmp::Ordering::Equal))
                {
                    return Err(PgError::new(
                        ErrorCode::UniqueViolation,
                        format!(
                            "duplicate key value violates unique constraint \"{}\"",
                            imeta.name
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Foreign keys: every referenced row must exist (insert/update path).
fn check_fk_outbound(ctx: &mut ExecCtx, meta: &TableMeta, row: &Row) -> PgResult<()> {
    for fk in meta.foreign_keys.clone() {
        let values: Vec<Datum> = fk.columns.iter().map(|&c| row[c].clone()).collect();
        if values.iter().any(Datum::is_null) {
            continue;
        }
        let ref_meta = ctx.engine.table_meta_by_id(fk.ref_table)?;
        if !row_exists_with(ctx, &ref_meta, &fk.ref_columns, &values)? {
            return Err(PgError::new(
                ErrorCode::ForeignKeyViolation,
                format!(
                    "insert or update on table \"{}\" violates foreign key to \"{}\"",
                    meta.name, ref_meta.name
                ),
            ));
        }
    }
    Ok(())
}

/// Foreign keys: nothing may reference a row being deleted.
fn check_fk_inbound(ctx: &mut ExecCtx, meta: &TableMeta, row: &Row) -> PgResult<()> {
    let refs = ctx.engine.catalog.read().referencing_tables(meta.id);
    for (child_id, fk) in refs {
        let values: Vec<Datum> = fk.ref_columns.iter().map(|&c| row[c].clone()).collect();
        if values.iter().any(Datum::is_null) {
            continue;
        }
        let child_meta = ctx.engine.table_meta_by_id(child_id)?;
        if row_exists_with(ctx, &child_meta, &fk.columns, &values)? {
            return Err(PgError::new(
                ErrorCode::ForeignKeyViolation,
                format!(
                    "update or delete on table \"{}\" violates foreign key on \"{}\"",
                    meta.name, child_meta.name
                ),
            ));
        }
    }
    Ok(())
}

/// Does a visible row exist in `meta` with `cols = values`? Uses an index
/// with a matching column prefix when available.
fn row_exists_with(
    ctx: &mut ExecCtx,
    meta: &TableMeta,
    cols: &[usize],
    values: &[Datum],
) -> PgResult<bool> {
    let store = ctx.engine.store(meta.id)?;
    let TableStore::Heap(heap) = &*store else {
        return Err(PgError::unsupported("foreign keys on columnar tables"));
    };
    // find a b-tree index whose leading columns are exactly `cols`
    for iid in &meta.indexes {
        let imeta = ctx.engine.index_meta(*iid)?;
        if imeta.method != IndexMethod::BTree {
            continue;
        }
        let index_cols: Option<Vec<usize>> = imeta
            .exprs
            .iter()
            .map(|e| match e {
                Expr::Column { name, .. } => meta.column_index(name),
                _ => None,
            })
            .collect();
        let Some(index_cols) = index_cols else { continue };
        if index_cols.len() < cols.len() || index_cols[..cols.len()] != *cols {
            continue;
        }
        let istore = ctx.engine.index_store(*iid)?;
        let IndexStore::BTree(b) = &*istore else { continue };
        let rids = if index_cols.len() == cols.len() {
            b.get_eq(values)
        } else {
            b.get_prefix(values)
        };
        ctx.cost.add_cpu(ctx.engine.config.cost.index_descend_ms);
        for rid in rids {
            if let Some(v) = heap.visible_version(&ctx.engine.txns, &ctx.snap, rid) {
                if cols
                    .iter()
                    .zip(values)
                    .all(|(&c, val)| v[c].sql_cmp(val) == Some(std::cmp::Ordering::Equal))
                {
                    return Ok(true);
                }
            }
        }
        return Ok(false);
    }
    // no usable index: sequential existence scan
    let mut found = false;
    heap.scan_visible(&ctx.engine.txns, &ctx.snap, |t| {
        if !found
            && cols
                .iter()
                .zip(values)
                .all(|(&c, val)| t.data[c].sql_cmp(val) == Some(std::cmp::Ordering::Equal))
        {
            found = true;
        }
    });
    ctx.cost.add_tuples(&ctx.engine.config.cost, heap.live_estimate());
    Ok(found)
}

/// Build one full row from a partial column list, applying defaults, casts,
/// and NOT NULL checks.
fn complete_row(
    ctx: &ExecCtx,
    meta: &TableMeta,
    target_cols: &[usize],
    values: Vec<Datum>,
) -> PgResult<Row> {
    if values.len() != target_cols.len() {
        return Err(PgError::new(
            ErrorCode::Syntax,
            format!("INSERT has {} expressions but {} target columns", values.len(), target_cols.len()),
        ));
    }
    let mut row: Row = vec![Datum::Null; meta.columns.len()];
    let mut provided = vec![false; meta.columns.len()];
    for (&c, v) in target_cols.iter().zip(values) {
        row[c] = v;
        provided[c] = true;
    }
    for (i, col) in meta.columns.iter().enumerate() {
        if !provided[i] {
            if let Some(d) = &col.default {
                let b = bind(d, &RowScope::default(), &[])?;
                row[i] = eval(&b, &vec![], &ctx.eval_ctx)?;
            }
        }
        if !row[i].is_null() {
            row[i] = row[i].cast_to(col.ty)?;
        } else if col.not_null {
            return Err(PgError::new(
                ErrorCode::NotNullViolation,
                format!("null value in column \"{}\" violates not-null constraint", col.name),
            ));
        }
    }
    Ok(row)
}

fn require_xid(ctx: &ExecCtx) -> PgResult<()> {
    if ctx.xid == INVALID_XID {
        return Err(PgError::internal("DML requires an active transaction"));
    }
    Ok(())
}

/// Execute INSERT. Returns the number of rows inserted (ON CONFLICT DO
/// NOTHING rows are not counted; DO UPDATE rows are).
pub fn exec_insert(ctx: &mut ExecCtx, ins: &Insert, params: &[Datum]) -> PgResult<u64> {
    require_xid(ctx)?;
    let meta = ctx.engine.table_meta(&ins.table)?;
    ctx.engine.locks.acquire(ctx.xid, LockKey::Table(meta.id), LockMode::Shared)?;
    let target_cols: Vec<usize> = if ins.columns.is_empty() {
        (0..meta.columns.len()).collect()
    } else {
        ins.columns
            .iter()
            .map(|n| meta.column_index(n).ok_or_else(|| PgError::undefined_column(n)))
            .collect::<PgResult<_>>()?
    };
    // materialise source rows first (so INSERT INTO t SELECT FROM t is sane)
    let source_rows: Vec<Row> = match &ins.source {
        InsertSource::Values(rows) => {
            let scope = RowScope::default();
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let row: Row = r
                    .iter()
                    .map(|e| {
                        let b = bind(e, &scope, params)?;
                        eval(&b, &vec![], &ctx.eval_ctx)
                    })
                    .collect::<PgResult<_>>()?;
                out.push(row);
            }
            out
        }
        InsertSource::Query(sel) => execute_select(ctx, sel, params)?.1,
    };

    let store = ctx.engine.store(meta.id)?;
    match &*store {
        TableStore::Columnar(col) => {
            if ins.on_conflict.is_some() {
                return Err(PgError::unsupported("ON CONFLICT on columnar tables"));
            }
            let mut batch = Vec::with_capacity(source_rows.len());
            for values in source_rows {
                let row = complete_row(ctx, &meta, &target_cols, values)?;
                charge_write(ctx, &meta, &row)?;
                batch.push(row);
            }
            let n = batch.len() as u64;
            let seq = col.append(ctx.xid, batch.clone(), meta.columns.len())?;
            ctx.engine.wal.append(WalRecord::ColumnarAppend {
                xid: ctx.xid,
                table: meta.id,
                seq,
                rows: batch,
            });
            Ok(n)
        }
        TableStore::Heap(heap) => {
            let mut count = 0u64;
            for values in source_rows {
                let row = complete_row(ctx, &meta, &target_cols, values)?;
                // ON CONFLICT: look for an existing live row on the target key
                if let Some(oc) = &ins.on_conflict {
                    if let Some((existing_rid, existing_row)) =
                        find_conflict(ctx, &meta, &oc.target, &row)?
                    {
                        match &oc.action {
                            ConflictAction::Nothing => continue,
                            ConflictAction::Update(assignments) => {
                                apply_conflict_update(
                                    ctx,
                                    &meta,
                                    existing_rid,
                                    &existing_row,
                                    &row,
                                    assignments,
                                    params,
                                )?;
                                count += 1;
                                continue;
                            }
                        }
                    }
                }
                check_unique(ctx, &meta, &row, None)?;
                check_fk_outbound(ctx, &meta, &row)?;
                let row_id = heap.insert(ctx.xid, row.clone());
                ctx.engine.index_insert_row(&meta, row_id, &row)?;
                ctx.engine.wal.append(WalRecord::Insert {
                    xid: ctx.xid,
                    table: meta.id,
                    row_id,
                    row: row.clone(),
                });
                charge_write(ctx, &meta, &row)?;
                count += 1;
            }
            Ok(count)
        }
    }
}

/// Find a live row conflicting with `row` on the ON CONFLICT target columns.
fn find_conflict(
    ctx: &mut ExecCtx,
    meta: &TableMeta,
    target: &[String],
    row: &Row,
) -> PgResult<Option<(u64, Row)>> {
    let cols: Vec<usize> = if target.is_empty() {
        meta.primary_key.clone().ok_or_else(|| {
            PgError::new(ErrorCode::InvalidParameter, "ON CONFLICT requires a primary key")
        })?
    } else {
        target
            .iter()
            .map(|n| meta.column_index(n).ok_or_else(|| PgError::undefined_column(n)))
            .collect::<PgResult<_>>()?
    };
    let values: Vec<Datum> = cols.iter().map(|&c| row[c].clone()).collect();
    if values.iter().any(Datum::is_null) {
        return Ok(None);
    }
    let store = ctx.engine.store(meta.id)?;
    let heap = store.heap()?;
    // find rows via any index with that prefix, else scan
    for iid in &meta.indexes {
        let imeta = ctx.engine.index_meta(*iid)?;
        let index_cols: Option<Vec<usize>> = imeta
            .exprs
            .iter()
            .map(|e| match e {
                Expr::Column { name, .. } => meta.column_index(name),
                _ => None,
            })
            .collect();
        let Some(index_cols) = index_cols else { continue };
        if index_cols[..] != cols[..] {
            continue;
        }
        let istore = ctx.engine.index_store(*iid)?;
        let IndexStore::BTree(b) = &*istore else { continue };
        for rid in b.get_eq(&values) {
            if let Some(v) = heap.visible_version(&ctx.engine.txns, &ctx.snap, rid) {
                if cols
                    .iter()
                    .zip(&values)
                    .all(|(&c, val)| v[c].sql_cmp(val) == Some(std::cmp::Ordering::Equal))
                {
                    return Ok(Some((rid, v)));
                }
            }
        }
        return Ok(None);
    }
    let mut found = None;
    heap.scan_visible(&ctx.engine.txns, &ctx.snap, |t| {
        if found.is_none()
            && cols
                .iter()
                .zip(&values)
                .all(|(&c, val)| t.data[c].sql_cmp(val) == Some(std::cmp::Ordering::Equal))
        {
            found = Some((t.row_id, t.data.clone()));
        }
    });
    Ok(found)
}

/// ON CONFLICT DO UPDATE: assignments may reference the table and
/// `excluded.*` (the proposed row).
fn apply_conflict_update(
    ctx: &mut ExecCtx,
    meta: &TableMeta,
    row_id: u64,
    _existing: &Row,
    proposed: &Row,
    assignments: &[Assignment],
    params: &[Datum],
) -> PgResult<()> {
    ctx.engine.locks.acquire(ctx.xid, LockKey::Row(meta.id, row_id), LockMode::Exclusive)?;
    let fresh = ctx.engine.txns.snapshot(ctx.xid);
    let store = ctx.engine.store(meta.id)?;
    let heap = store.heap()?;
    let Some(current) = heap.visible_version(&ctx.engine.txns, &fresh, row_id) else {
        return Ok(()); // row vanished; PostgreSQL would retry, we no-op
    };
    // scope: table columns then excluded.*
    let mut scope = table_scope(meta, None);
    scope
        .cols
        .extend(meta.columns.iter().map(|c| ColumnRef::new(Some("excluded"), &c.name)));
    let mut eval_row = current.clone();
    eval_row.extend(proposed.iter().cloned());
    let mut new_row = current.clone();
    for a in assignments {
        let c = meta
            .column_index(&a.column)
            .ok_or_else(|| PgError::undefined_column(&a.column))?;
        let b = bind(&a.value, &scope, params)?;
        let v = eval(&b, &eval_row, &ctx.eval_ctx)?;
        new_row[c] = if v.is_null() { v } else { v.cast_to(meta.columns[c].ty)? };
        if new_row[c].is_null() && meta.columns[c].not_null {
            return Err(PgError::new(
                ErrorCode::NotNullViolation,
                format!("null value in column \"{}\"", a.column),
            ));
        }
    }
    check_unique(ctx, meta, &new_row, Some(row_id))?;
    check_fk_outbound(ctx, meta, &new_row)?;
    let outcome = heap.expire(&ctx.engine.txns, &fresh, row_id, ctx.xid)?;
    if outcome != ExpireOutcome::Expired {
        return Ok(());
    }
    heap.insert_version(row_id, ctx.xid, new_row.clone());
    ctx.engine.index_insert_row(meta, row_id, &new_row)?;
    ctx.engine.wal.append(WalRecord::Update {
        xid: ctx.xid,
        table: meta.id,
        row_id,
        old_row: current,
        new_row: new_row.clone(),
    });
    charge_write(ctx, meta, &new_row)?;
    Ok(())
}

/// Collect (row_id, row) targets of an UPDATE/DELETE using index access
/// paths when possible.
fn collect_targets(
    ctx: &mut ExecCtx,
    meta: &TableMeta,
    alias: Option<&str>,
    where_clause: &Option<Expr>,
    params: &[Datum],
) -> PgResult<Vec<(u64, Row)>> {
    let scope = table_scope(meta, alias);
    let mut node = PlanNode::SeqScan { table: meta.id, filter: None, cols: None };
    if let Some(w) = where_clause {
        // subqueries in DML WHERE: execute them via the select path
        let mut subq = CtxSubquery { ctx, params: params.to_vec() };
        let flat = crate::plan::flatten_for_dml(w, &mut subq)?;
        let conjuncts = split_conjuncts(&flat);
        let mut residual = Vec::new();
        for c in conjuncts {
            let b = bind(&c, &scope, params)?;
            match &mut node {
                PlanNode::SeqScan { filter, .. } => match filter {
                    Some(f) => {
                        *filter = Some(BExpr::Binary {
                            op: sqlparse::ast::BinaryOp::And,
                            left: Box::new(f.clone()),
                            right: Box::new(b),
                        })
                    }
                    None => *filter = Some(b),
                },
                _ => residual.push(c),
            }
        }
        let _ = conjoin(residual);
    }
    let engine = ctx.engine.clone();
    let view = crate::exec::EngineCatalogView { engine: &engine };
    choose_access_paths(&mut node, &view, &|id| engine.table_meta_by_id(id))?;
    match node {
        PlanNode::SeqScan { table, filter, .. } => {
            scan_with_rowids(ctx, table, None, &filter, None)
        }
        PlanNode::IndexScan { table, index, probe, filter } => {
            scan_with_rowids(ctx, table, Some((index, &probe)), &filter, None)
        }
        _ => Err(PgError::internal("unexpected DML target plan")),
    }
}

/// Adapter so DML WHERE clauses can run subqueries through the select path.
struct CtxSubquery<'a, 'e> {
    ctx: &'a mut ExecCtx<'e>,
    params: Vec<Datum>,
}

impl crate::plan::SubqueryExecutor for CtxSubquery<'_, '_> {
    fn run_subquery(&mut self, sub: &sqlparse::ast::Select) -> PgResult<Vec<Row>> {
        execute_select(self.ctx, sub, &self.params).map(|(_, rows)| rows)
    }
}

/// Execute UPDATE. Returns rows updated.
pub fn exec_update(
    ctx: &mut ExecCtx,
    upd: &sqlparse::ast::Update,
    params: &[Datum],
) -> PgResult<u64> {
    require_xid(ctx)?;
    let meta = ctx.engine.table_meta(&upd.table)?;
    ctx.engine.locks.acquire(ctx.xid, LockKey::Table(meta.id), LockMode::Shared)?;
    let scope = table_scope(&meta, upd.alias.as_deref());
    let assignments: Vec<(usize, BExpr)> = upd
        .assignments
        .iter()
        .map(|a| {
            let c = meta
                .column_index(&a.column)
                .ok_or_else(|| PgError::undefined_column(&a.column))?;
            Ok((c, bind(&a.value, &scope, params)?))
        })
        .collect::<PgResult<_>>()?;
    let filter_bound = upd
        .where_clause
        .as_ref()
        .map(|w| {
            let mut subq = CtxSubquery { ctx, params: params.to_vec() };
            let flat = crate::plan::flatten_for_dml(w, &mut subq)?;
            bind(&flat, &scope, params)
        })
        .transpose()?;
    let targets =
        collect_targets(ctx, &meta, upd.alias.as_deref(), &upd.where_clause, params)?;
    let store = ctx.engine.store(meta.id)?;
    let heap = store.heap()?;
    let mut count = 0u64;
    for (row_id, _seen) in targets {
        ctx.engine.locks.acquire(ctx.xid, LockKey::Row(meta.id, row_id), LockMode::Exclusive)?;
        let fresh = ctx.engine.txns.snapshot(ctx.xid);
        let Some(current) = heap.visible_version(&ctx.engine.txns, &fresh, row_id) else {
            continue; // deleted meanwhile
        };
        // EvalPlanQual: predicate must still hold on the latest version
        if let Some(f) = &filter_bound {
            if !matches!(eval(f, &current, &ctx.eval_ctx)?, Datum::Bool(true)) {
                continue;
            }
        }
        let mut new_row = current.clone();
        for (c, b) in &assignments {
            let v = eval(b, &current, &ctx.eval_ctx)?;
            new_row[*c] = if v.is_null() { v } else { v.cast_to(meta.columns[*c].ty)? };
            if new_row[*c].is_null() && meta.columns[*c].not_null {
                return Err(PgError::new(
                    ErrorCode::NotNullViolation,
                    format!("null value in column \"{}\"", meta.columns[*c].name),
                ));
            }
        }
        check_unique(ctx, &meta, &new_row, Some(row_id))?;
        check_fk_outbound(ctx, &meta, &new_row)?;
        match heap.expire(&ctx.engine.txns, &fresh, row_id, ctx.xid)? {
            ExpireOutcome::Expired => {}
            _ => continue,
        }
        heap.insert_version(row_id, ctx.xid, new_row.clone());
        ctx.engine.index_insert_row(&meta, row_id, &new_row)?;
        ctx.engine.wal.append(WalRecord::Update {
            xid: ctx.xid,
            table: meta.id,
            row_id,
            old_row: current,
            new_row: new_row.clone(),
        });
        charge_write(ctx, &meta, &new_row)?;
        count += 1;
    }
    Ok(count)
}

/// Execute DELETE. Returns rows deleted.
pub fn exec_delete(
    ctx: &mut ExecCtx,
    del: &sqlparse::ast::Delete,
    params: &[Datum],
) -> PgResult<u64> {
    require_xid(ctx)?;
    let meta = ctx.engine.table_meta(&del.table)?;
    ctx.engine.locks.acquire(ctx.xid, LockKey::Table(meta.id), LockMode::Shared)?;
    let scope = table_scope(&meta, del.alias.as_deref());
    let filter_bound = del
        .where_clause
        .as_ref()
        .map(|w| {
            let mut subq = CtxSubquery { ctx, params: params.to_vec() };
            let flat = crate::plan::flatten_for_dml(w, &mut subq)?;
            bind(&flat, &scope, params)
        })
        .transpose()?;
    let targets =
        collect_targets(ctx, &meta, del.alias.as_deref(), &del.where_clause, params)?;
    let store = ctx.engine.store(meta.id)?;
    let heap = store.heap()?;
    let mut count = 0u64;
    for (row_id, _seen) in targets {
        ctx.engine.locks.acquire(ctx.xid, LockKey::Row(meta.id, row_id), LockMode::Exclusive)?;
        let fresh = ctx.engine.txns.snapshot(ctx.xid);
        let Some(current) = heap.visible_version(&ctx.engine.txns, &fresh, row_id) else {
            continue;
        };
        if let Some(f) = &filter_bound {
            if !matches!(eval(f, &current, &ctx.eval_ctx)?, Datum::Bool(true)) {
                continue;
            }
        }
        check_fk_inbound(ctx, &meta, &current)?;
        match heap.expire(&ctx.engine.txns, &fresh, row_id, ctx.xid)? {
            ExpireOutcome::Expired => {}
            _ => continue,
        }
        heap.adjust_live(-1);
        ctx.engine.wal.append(WalRecord::Delete {
            xid: ctx.xid,
            table: meta.id,
            row_id,
            row: current,
        });
        ctx.cost.add_tuples(&ctx.engine.config.cost, 1);
        count += 1;
    }
    Ok(count)
}

/// COPY FROM: bulk-append pre-parsed rows. The fast ingest path: no planning,
/// single table lock, batched constraint checks.
pub fn exec_copy(
    ctx: &mut ExecCtx,
    table: &str,
    columns: &[String],
    rows: Vec<Row>,
) -> PgResult<u64> {
    require_xid(ctx)?;
    let meta = ctx.engine.table_meta(table)?;
    ctx.engine.locks.acquire(ctx.xid, LockKey::Table(meta.id), LockMode::Shared)?;
    let target_cols: Vec<usize> = if columns.is_empty() {
        (0..meta.columns.len()).collect()
    } else {
        columns
            .iter()
            .map(|n| meta.column_index(n).ok_or_else(|| PgError::undefined_column(n)))
            .collect::<PgResult<_>>()?
    };
    let store = ctx.engine.store(meta.id)?;
    match &*store {
        TableStore::Columnar(col) => {
            let mut batch = Vec::with_capacity(rows.len());
            for values in rows {
                let row = complete_row(ctx, &meta, &target_cols, values)?;
                charge_write(ctx, &meta, &row)?;
                batch.push(row);
            }
            let n = batch.len() as u64;
            let seq = col.append(ctx.xid, batch.clone(), meta.columns.len())?;
            ctx.engine.wal.append(WalRecord::ColumnarAppend {
                xid: ctx.xid,
                table: meta.id,
                seq,
                rows: batch,
            });
            Ok(n)
        }
        TableStore::Heap(heap) => {
            let mut count = 0u64;
            for values in rows {
                let row = complete_row(ctx, &meta, &target_cols, values)?;
                check_unique(ctx, &meta, &row, None)?;
                check_fk_outbound(ctx, &meta, &row)?;
                let row_id = heap.insert(ctx.xid, row.clone());
                ctx.engine.index_insert_row(&meta, row_id, &row)?;
                ctx.engine.wal.append(WalRecord::Insert {
                    xid: ctx.xid,
                    table: meta.id,
                    row_id,
                    row: row.clone(),
                });
                charge_write(ctx, &meta, &row)?;
                count += 1;
            }
            Ok(count)
        }
    }
}
