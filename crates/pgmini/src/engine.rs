//! The engine: catalog + stores + transaction machinery for one "server".
//!
//! One `Engine` models one PostgreSQL server (a node in the cluster fabric).
//! Sessions are its connections; the distributed layer installs an
//! [`crate::hooks::Extension`] and registers UDFs to take control, exactly
//! like the extension API the paper describes.

use crate::buffer::{BufferKey, BufferPool};
use crate::catalog::{Catalog, IndexId, IndexMeta, IndexMethod, Storage, TableId, TableMeta};
use crate::cost::CostModel;
use crate::error::{ErrorCode, PgError, PgResult};
use crate::expr::{bind, eval, BExpr, ColumnRef, EvalCtx, RowScope};
use crate::hooks::Hooks;
use crate::index::{BTreeIndex, GinIndex, IndexStore};
use crate::lock::LockManager;
use crate::session::Session;
use crate::storage::{HeapStore, TableStore};
use crate::txn::{TxnManager, Xid, INVALID_XID};
use crate::types::{Datum, Row};
use crate::wal::{Wal, WalRecord};
use parking_lot::RwLock;
use sqlparse::ast::{CreateIndex, CreateTable, Statement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A user-defined function callable as `SELECT fname(args)`. This is the
/// extension RPC mechanism: the distributed layer registers its metadata
/// functions (`create_distributed_table`, `assign_distributed_transaction_id`,
/// ...) here on every node.
pub type Udf = Arc<dyn Fn(&mut Session, &[Datum]) -> PgResult<Datum> + Send + Sync>;

/// Static engine configuration (one simulated server).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Node name for diagnostics ("coordinator", "worker-1", ...).
    pub name: String,
    /// Simulated CPU cores (parallel task streams the node can run at
    /// full speed). The paper's VMs have 16 vcpus.
    pub cores: u32,
    /// Simulated memory in bytes (buffer-pool capacity). Paper: 64 GB.
    pub mem_bytes: u64,
    /// Maximum concurrent sessions (PostgreSQL's process-per-connection cap).
    pub max_connections: u32,
    pub cost: CostModel,
    /// Use batched (vectorized) kernels for columnar scans when the plan
    /// allows it; `false` forces the tuple-at-a-time volcano path everywhere
    /// (the differential tests run both and compare).
    pub vectorized: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            name: "pg".to_string(),
            cores: 16,
            mem_bytes: 64 * 1024 * 1024 * 1024,
            max_connections: 500,
            cost: CostModel::default(),
            vectorized: true,
        }
    }
}

/// One simulated PostgreSQL server.
pub struct Engine {
    pub config: EngineConfig,
    pub catalog: RwLock<Catalog>,
    stores: RwLock<HashMap<TableId, Arc<TableStore>>>,
    index_stores: RwLock<HashMap<IndexId, Arc<IndexStore>>>,
    /// Cache of bound index expressions: (key exprs, partial predicate).
    bound_index_exprs: RwLock<HashMap<IndexId, (Vec<BExpr>, Option<BExpr>)>>,
    pub txns: TxnManager,
    pub locks: LockManager,
    pub wal: Wal,
    pub buffer: BufferPool,
    pub hooks: Hooks,
    udfs: RwLock<HashMap<String, Udf>>,
    conn_count: AtomicU32,
    pub(crate) session_seq: AtomicU64,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Arc<Engine> {
        let capacity_pages = config.mem_bytes / crate::cost::PAGE_SIZE;
        Arc::new(Engine {
            catalog: RwLock::new(Catalog::default()),
            stores: RwLock::new(HashMap::new()),
            index_stores: RwLock::new(HashMap::new()),
            bound_index_exprs: RwLock::new(HashMap::new()),
            config,
            txns: TxnManager::default(),
            locks: LockManager::default(),
            wal: Wal::default(),
            buffer: BufferPool::new(capacity_pages),
            hooks: Hooks::default(),
            udfs: RwLock::new(HashMap::new()),
            conn_count: AtomicU32::new(0),
            session_seq: AtomicU64::new(1),
        })
    }

    /// Default-configured engine (16 cores, 64 GB, defaults everywhere).
    pub fn new_default() -> Arc<Engine> {
        Engine::new(EngineConfig::default())
    }

    /// Open a session (connection). Fails with `TooManyConnections` at the
    /// configured cap — the PostgreSQL connection-scalability limit §2.3
    /// complains about.
    pub fn session(self: &Arc<Self>) -> PgResult<Session> {
        let prev = self.conn_count.fetch_add(1, Ordering::SeqCst);
        if prev >= self.config.max_connections {
            self.conn_count.fetch_sub(1, Ordering::SeqCst);
            return Err(PgError::new(
                ErrorCode::TooManyConnections,
                format!(
                    "sorry, too many clients already ({} max)",
                    self.config.max_connections
                ),
            ));
        }
        Ok(Session::new(self.clone()))
    }

    pub(crate) fn connection_closed(&self) {
        self.conn_count.fetch_sub(1, Ordering::SeqCst);
    }

    pub fn connection_count(&self) -> u32 {
        self.conn_count.load(Ordering::SeqCst)
    }

    // ---------------- catalog & stores ----------------

    pub fn store(&self, id: TableId) -> PgResult<Arc<TableStore>> {
        self.stores
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| PgError::internal(format!("no store for table {id:?}")))
    }

    pub fn index_store(&self, id: IndexId) -> PgResult<Arc<IndexStore>> {
        self.index_stores
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| PgError::internal(format!("no store for index {id:?}")))
    }

    pub fn table_meta(&self, name: &str) -> PgResult<TableMeta> {
        self.catalog.read().table_by_name(name).cloned()
    }

    pub fn table_meta_by_id(&self, id: TableId) -> PgResult<TableMeta> {
        self.catalog.read().table(id).cloned()
    }

    pub fn index_meta(&self, id: IndexId) -> PgResult<IndexMeta> {
        self.catalog.read().index(id).cloned()
    }

    /// Override a table's simulated row width (benchmarks size datasets to
    /// the paper's scale this way).
    pub fn set_sim_row_width(&self, table: &str, width: u32) -> PgResult<()> {
        let mut cat = self.catalog.write();
        let id = cat.table_id(table)?;
        cat.table_mut(id)?.sim_row_width = width;
        Ok(())
    }

    /// Switch a table to columnar storage (must be empty).
    pub fn set_columnar(&self, table: &str) -> PgResult<()> {
        let mut cat = self.catalog.write();
        let id = cat.table_id(table)?;
        if self.store(id)?.live_estimate() > 0 {
            return Err(PgError::unsupported(
                "converting a non-empty table to columnar storage",
            ));
        }
        cat.table_mut(id)?.storage = Storage::Columnar;
        self.stores
            .write()
            .insert(id, Arc::new(TableStore::Columnar(Default::default())));
        Ok(())
    }

    /// Simulated heap pages of a table right now (live + dead versions).
    pub fn table_pages(&self, meta: &TableMeta) -> u64 {
        let Ok(store) = self.store(meta.id) else { return 0 };
        let rows = match &*store {
            TableStore::Heap(h) => h.slot_count(),
            TableStore::Columnar(c) => c.live_estimate(),
        };
        meta.pages(rows)
    }

    // ---------------- UDFs ----------------

    pub fn register_udf(
        &self,
        name: &str,
        f: impl Fn(&mut Session, &[Datum]) -> PgResult<Datum> + Send + Sync + 'static,
    ) {
        self.udfs.write().insert(name.to_string(), Arc::new(f));
    }

    pub fn udf(&self, name: &str) -> Option<Udf> {
        self.udfs.read().get(name).cloned()
    }

    // ---------------- DDL ----------------

    /// CREATE TABLE: catalog entry, store, primary-key/unique indexes,
    /// foreign keys. Logged to the WAL so standbys can replay schema.
    pub fn ddl_create_table(&self, stmt: &CreateTable) -> PgResult<()> {
        let mut cat = self.catalog.write();
        let Some(id) = cat.create_table(stmt)? else { return Ok(()) };
        let store = match cat.table(id)?.storage {
            Storage::Heap => TableStore::Heap(HeapStore::default()),
            Storage::Columnar => TableStore::Columnar(Default::default()),
        };
        self.stores.write().insert(id, Arc::new(store));
        // primary key index
        if let Some(pk) = cat.table(id)?.primary_key.clone() {
            let iid = cat.create_pkey_index(id, &pk);
            self.index_stores
                .write()
                .insert(iid, Arc::new(IndexStore::BTree(BTreeIndex::default())));
        }
        // unique columns get their own unique indexes
        let uniques: Vec<usize> = stmt
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique && !c.primary_key)
            .map(|(i, _)| i)
            .collect();
        for u in uniques {
            let iid = cat.create_pkey_index(id, &[u]);
            self.index_stores
                .write()
                .insert(iid, Arc::new(IndexStore::BTree(BTreeIndex::default())));
        }
        // foreign keys: inline REFERENCES and table constraints
        for c in &stmt.columns {
            if let Some((ref_table, ref_col)) = &c.references {
                let ref_cols =
                    if ref_col.is_empty() { vec![] } else { vec![ref_col.clone()] };
                cat.add_foreign_key(id, &[c.name.clone()], ref_table, &ref_cols)?;
            }
        }
        for con in &stmt.constraints {
            if let sqlparse::ast::TableConstraint::ForeignKey { columns, ref_table, ref_columns } =
                con
            {
                cat.add_foreign_key(id, columns, ref_table, ref_columns)?;
            }
        }
        drop(cat);
        self.wal.append(WalRecord::Ddl {
            sql: sqlparse::deparse(&Statement::CreateTable(Box::new(stmt.clone()))),
        });
        Ok(())
    }

    /// CREATE INDEX: catalog entry, store, and backfill from visible rows.
    pub fn ddl_create_index(&self, stmt: &CreateIndex) -> PgResult<()> {
        let mut cat = self.catalog.write();
        if let Ok(tid) = cat.table_id(&stmt.table) {
            if matches!(cat.table(tid)?.storage, Storage::Columnar) {
                return Err(PgError::new(
                    ErrorCode::FeatureNotSupported,
                    "cannot create indexes on columnar tables",
                ));
            }
        }
        let Some(iid) = cat.create_index(stmt)? else { return Ok(()) };
        let imeta = cat.index(iid)?.clone();
        let tmeta = cat.table(imeta.table)?.clone();
        drop(cat);
        let store: Arc<IndexStore> = match imeta.method {
            IndexMethod::BTree => Arc::new(IndexStore::BTree(BTreeIndex::default())),
            IndexMethod::Gin => Arc::new(IndexStore::Gin(GinIndex::default())),
        };
        self.index_stores.write().insert(iid, store.clone());
        // backfill all visible rows
        let snap = self.txns.snapshot(INVALID_XID);
        let table_store = self.store(imeta.table)?;
        let heap = table_store.heap()?;
        let mut rows: Vec<(u64, Row)> = Vec::new();
        heap.scan_visible(&self.txns, &snap, |t| rows.push((t.row_id, t.data.clone())));
        for (row_id, row) in rows {
            self.index_insert_row_one(&tmeta, &imeta, &store, row_id, &row)?;
        }
        self.wal.append(WalRecord::Ddl {
            sql: sqlparse::deparse(&Statement::CreateIndex(Box::new(stmt.clone()))),
        });
        Ok(())
    }

    pub fn ddl_drop_table(&self, name: &str, if_exists: bool) -> PgResult<()> {
        let mut cat = self.catalog.write();
        if cat.table_id(name).is_err() && if_exists {
            return Ok(());
        }
        let meta = cat.drop_table(name)?;
        drop(cat);
        self.stores.write().remove(&meta.id);
        self.buffer.forget(BufferKey::Table(meta.id.0));
        for i in 0..meta.columns.len() {
            self.buffer.forget(BufferKey::TableColumn(meta.id.0, i as u32));
        }
        let mut istores = self.index_stores.write();
        for iid in &meta.indexes {
            istores.remove(iid);
            self.buffer.forget(BufferKey::Index(iid.0));
            self.bound_index_exprs.write().remove(iid);
        }
        drop(istores);
        self.wal.append(WalRecord::Ddl {
            sql: format!("DROP TABLE {}", sqlparse::quote_ident(name)),
        });
        Ok(())
    }

    /// TRUNCATE (non-MVCC, caller holds the exclusive table lock).
    pub fn truncate_table(&self, name: &str) -> PgResult<()> {
        let meta = self.table_meta(name)?;
        self.store(meta.id)?.truncate();
        for iid in &meta.indexes {
            let fresh: Arc<IndexStore> = match self.index_meta(*iid)?.method {
                IndexMethod::BTree => Arc::new(IndexStore::BTree(BTreeIndex::default())),
                IndexMethod::Gin => Arc::new(IndexStore::Gin(GinIndex::default())),
            };
            self.index_stores.write().insert(*iid, fresh);
        }
        self.buffer.forget(BufferKey::Table(meta.id.0));
        for i in 0..meta.columns.len() {
            self.buffer.forget(BufferKey::TableColumn(meta.id.0, i as u32));
        }
        self.wal
            .append(WalRecord::Ddl { sql: format!("TRUNCATE {}", sqlparse::quote_ident(name)) });
        Ok(())
    }

    // ---------------- index maintenance ----------------

    /// Bound key expressions + predicate for an index, cached.
    pub fn bound_index(&self, imeta: &IndexMeta, tmeta: &TableMeta) -> PgResult<(Vec<BExpr>, Option<BExpr>)> {
        if let Some(found) = self.bound_index_exprs.read().get(&imeta.id) {
            return Ok(found.clone());
        }
        let scope = RowScope {
            cols: tmeta.columns.iter().map(|c| ColumnRef::new(None, &c.name)).collect(),
        };
        let keys: Vec<BExpr> =
            imeta.exprs.iter().map(|e| bind(e, &scope, &[])).collect::<PgResult<_>>()?;
        let pred = imeta.predicate.as_ref().map(|p| bind(p, &scope, &[])).transpose()?;
        let entry = (keys, pred);
        self.bound_index_exprs.write().insert(imeta.id, entry.clone());
        Ok(entry)
    }

    fn index_insert_row_one(
        &self,
        tmeta: &TableMeta,
        imeta: &IndexMeta,
        store: &IndexStore,
        row_id: u64,
        row: &Row,
    ) -> PgResult<()> {
        let (keys, pred) = self.bound_index(imeta, tmeta)?;
        let ctx = EvalCtx::default();
        if let Some(p) = &pred {
            if !matches!(eval(p, row, &ctx)?, Datum::Bool(true)) {
                return Ok(());
            }
        }
        match store {
            IndexStore::BTree(b) => {
                let key: Vec<Datum> =
                    keys.iter().map(|k| eval(k, row, &ctx)).collect::<PgResult<_>>()?;
                b.insert(key, row_id);
            }
            IndexStore::Gin(g) => {
                let v = eval(&keys[0], row, &ctx)?;
                if !v.is_null() {
                    g.insert(&v.to_text(), row_id);
                }
            }
        }
        Ok(())
    }

    /// Add `row` to every index of its table.
    pub fn index_insert_row(&self, tmeta: &TableMeta, row_id: u64, row: &Row) -> PgResult<()> {
        for iid in &tmeta.indexes {
            let imeta = self.index_meta(*iid)?;
            let store = self.index_store(*iid)?;
            self.index_insert_row_one(tmeta, &imeta, &store, row_id, row)?;
        }
        Ok(())
    }

    /// Remove `row`'s entries from every index (vacuum path).
    pub fn index_remove_row(&self, tmeta: &TableMeta, row_id: u64, row: &Row) -> PgResult<()> {
        let ctx = EvalCtx::default();
        for iid in &tmeta.indexes {
            let imeta = self.index_meta(*iid)?;
            let store = self.index_store(*iid)?;
            let (keys, pred) = self.bound_index(&imeta, tmeta)?;
            if let Some(p) = &pred {
                if !matches!(eval(p, row, &ctx)?, Datum::Bool(true)) {
                    continue;
                }
            }
            match &*store {
                IndexStore::BTree(b) => {
                    let key: Vec<Datum> =
                        keys.iter().map(|k| eval(k, row, &ctx)).collect::<PgResult<_>>()?;
                    b.remove(&key, row_id);
                }
                IndexStore::Gin(g) => {
                    let v = eval(&keys[0], row, &ctx)?;
                    if !v.is_null() {
                        g.remove(&v.to_text(), row_id);
                    }
                }
            }
        }
        Ok(())
    }

    // ---------------- vacuum ----------------

    /// VACUUM one table: reclaim dead versions and their index entries.
    /// Returns the number of versions reclaimed.
    pub fn vacuum_table(&self, name: &str) -> PgResult<u64> {
        let meta = self.table_meta(name)?;
        let store = self.store(meta.id)?;
        let TableStore::Heap(heap) = &*store else { return Ok(0) };
        let horizon = self.txns.oldest_active_xid();
        let reclaimed = heap.vacuum(&self.txns, horizon);
        for (row_id, row) in &reclaimed {
            self.index_remove_row(&meta, *row_id, row)?;
        }
        Ok(reclaimed.len() as u64)
    }

    pub fn vacuum_all(&self) -> PgResult<u64> {
        let names = self.catalog.read().table_names();
        let mut total = 0;
        for n in names {
            total += self.vacuum_table(&n)?;
        }
        Ok(total)
    }

    /// Force-abort a transaction from outside its owning session (the
    /// metadata-fence victim path): mark it aborted in the MVCC status map
    /// (its versions become invisible), WAL-log the abort, raise the owner's
    /// fence flag, and release every lock it holds so blocked distributed
    /// operations can proceed. The owning session discovers the abort at its
    /// next statement (or blocked lock wait) and surfaces a retryable
    /// serialization failure. Returns false for unknown/finished xids.
    pub fn force_abort_xid(&self, xid: Xid) -> bool {
        if self.txns.status(xid) != crate::txn::TxStatus::InProgress {
            return false;
        }
        // flag first: if the victim is blocked in the lock manager it must
        // wake with the fence error, and release_all drops its registration
        self.locks.fence_xid(xid);
        self.txns.abort(xid);
        self.wal.append(WalRecord::Abort { xid });
        self.locks.release_all(xid);
        true
    }

    // ---------------- replication / recovery ----------------

    /// Rebuild an engine from a WAL stream, stopping after `upto` records
    /// (None = full log). Prepared-but-undecided transactions are recreated
    /// as prepared, so 2PC recovery can finish them — the property the
    /// paper's consistent-restore-point backups rely on (§3.9).
    pub fn restore_from_wal(records: &[WalRecord], upto: Option<u64>) -> PgResult<Arc<Engine>> {
        let engine = Engine::new_default();
        let upto = upto.map(|u| u as usize).unwrap_or(records.len()).min(records.len());
        let slice = &records[..upto];
        // outcome per original xid
        #[derive(Clone)]
        enum Fate {
            Committed,
            Aborted,
            Prepared(String),
        }
        let mut fate: HashMap<Xid, Fate> = HashMap::new();
        let mut gid_to_xid: HashMap<String, Xid> = HashMap::new();
        for rec in slice {
            match rec {
                WalRecord::Commit { xid } => {
                    fate.insert(*xid, Fate::Committed);
                }
                WalRecord::Abort { xid } => {
                    fate.insert(*xid, Fate::Aborted);
                }
                WalRecord::Prepare { xid, gid } => {
                    fate.insert(*xid, Fate::Prepared(gid.clone()));
                    gid_to_xid.insert(gid.clone(), *xid);
                }
                WalRecord::CommitPrepared { gid } => {
                    if let Some(x) = gid_to_xid.get(gid) {
                        fate.insert(*x, Fate::Committed);
                    }
                }
                WalRecord::AbortPrepared { gid } => {
                    if let Some(x) = gid_to_xid.get(gid) {
                        fate.insert(*x, Fate::Aborted);
                    }
                }
                _ => {}
            }
        }
        // apply schema + data. Committed transactions' new xids are marked
        // committed *up front*, so replayed updates can expire the versions
        // earlier records inserted (visibility checks see them as committed).
        let mut xid_map: HashMap<Xid, Xid> = HashMap::new();
        for (orig, f) in &fate {
            if matches!(f, Fate::Committed) {
                let new_xid = engine.txns.begin();
                engine.txns.commit(new_xid);
                xid_map.insert(*orig, new_xid);
            }
        }
        // Replayed changes are re-logged into the new engine's WAL under
        // their new xids. Without this the promoted standby starts with an
        // empty history and a *second* crash replays only post-promotion
        // records, silently losing everything earlier: restore must compose,
        // restore(wal(restore(wal))) == restore(wal). Aborted transactions
        // are dropped — the re-logged WAL is the compacted history.
        for rec in slice {
            match rec {
                WalRecord::Ddl { sql } => {
                    // the ddl_* methods re-log the record themselves
                    match sqlparse::parse(sql)? {
                        Statement::CreateTable(ct) => engine.ddl_create_table(&ct)?,
                        Statement::CreateIndex(ci) => engine.ddl_create_index(&ci)?,
                        Statement::DropTable { names, if_exists } => {
                            for n in names {
                                engine.ddl_drop_table(&n, if_exists)?;
                            }
                        }
                        Statement::Truncate { tables } => {
                            for t in tables {
                                engine.truncate_table(&t)?;
                            }
                        }
                        other => {
                            return Err(PgError::internal(format!(
                                "unexpected DDL in WAL: {other:?}"
                            )))
                        }
                    }
                }
                WalRecord::Insert { xid, table, row_id, row } => {
                    if !matches!(fate.get(xid), Some(Fate::Committed | Fate::Prepared(_))) {
                        continue;
                    }
                    let new_xid = *xid_map
                        .entry(*xid)
                        .or_insert_with(|| engine.txns.begin());
                    let meta = engine.table_meta_by_id(*table)?;
                    let store = engine.store(*table)?;
                    store.heap()?.insert_version(*row_id, new_xid, row.clone());
                    store.heap()?.adjust_live(1);
                    engine.index_insert_row(&meta, *row_id, row)?;
                    engine.wal.append(WalRecord::Insert {
                        xid: new_xid,
                        table: *table,
                        row_id: *row_id,
                        row: row.clone(),
                    });
                }
                WalRecord::Update { xid, table, row_id, old_row, new_row } => {
                    if !matches!(fate.get(xid), Some(Fate::Committed | Fate::Prepared(_))) {
                        continue;
                    }
                    let new_xid = *xid_map
                        .entry(*xid)
                        .or_insert_with(|| engine.txns.begin());
                    let meta = engine.table_meta_by_id(*table)?;
                    let store = engine.store(*table)?;
                    let heap = store.heap()?;
                    let snap = engine.txns.snapshot(new_xid);
                    let _ = heap.expire(&engine.txns, &snap, *row_id, new_xid)?;
                    heap.insert_version(*row_id, new_xid, new_row.clone());
                    engine.index_insert_row(&meta, *row_id, new_row)?;
                    engine.wal.append(WalRecord::Update {
                        xid: new_xid,
                        table: *table,
                        row_id: *row_id,
                        old_row: old_row.clone(),
                        new_row: new_row.clone(),
                    });
                }
                WalRecord::Delete { xid, table, row_id, row } => {
                    if !matches!(fate.get(xid), Some(Fate::Committed | Fate::Prepared(_))) {
                        continue;
                    }
                    let new_xid = *xid_map
                        .entry(*xid)
                        .or_insert_with(|| engine.txns.begin());
                    let store = engine.store(*table)?;
                    let heap = store.heap()?;
                    let snap = engine.txns.snapshot(new_xid);
                    let _ = heap.expire(&engine.txns, &snap, *row_id, new_xid)?;
                    heap.adjust_live(-1);
                    engine.wal.append(WalRecord::Delete {
                        xid: new_xid,
                        table: *table,
                        row_id: *row_id,
                        row: row.clone(),
                    });
                }
                WalRecord::ColumnarAppend { xid, table, seq, rows } => {
                    if !matches!(fate.get(xid), Some(Fate::Committed | Fate::Prepared(_))) {
                        continue;
                    }
                    let new_xid = *xid_map
                        .entry(*xid)
                        .or_insert_with(|| engine.txns.begin());
                    let meta = engine.table_meta_by_id(*table)?;
                    // tables switched to columnar post-creation (set_columnar)
                    // replay their CREATE TABLE as heap; the first stripe in
                    // the WAL proves the conversion happened while empty
                    if engine.store(*table)?.columnar().is_err() {
                        engine.set_columnar(&meta.name)?;
                    }
                    let store = engine.store(*table)?;
                    store.columnar()?.append_with_seq(
                        new_xid,
                        *seq,
                        rows.clone(),
                        meta.columns.len(),
                    )?;
                    engine.wal.append(WalRecord::ColumnarAppend {
                        xid: new_xid,
                        table: *table,
                        seq: *seq,
                        rows: rows.clone(),
                    });
                }
                WalRecord::RestorePoint { name } => {
                    engine.wal.append(WalRecord::RestorePoint { name: name.clone() });
                }
                _ => {}
            }
        }
        // settle remaining (prepared / unknown) transaction outcomes and
        // re-log them (sorted by new xid, so the re-logged WAL is
        // deterministic)
        let mut settled: Vec<(Xid, Xid)> = xid_map.iter().map(|(o, n)| (*n, *o)).collect();
        settled.sort_unstable();
        for (new_xid, orig) in settled {
            match fate.get(&orig) {
                Some(Fate::Committed) => {
                    // committed up front; log the decision
                    engine.wal.append(WalRecord::Commit { xid: new_xid });
                }
                Some(Fate::Prepared(gid)) => {
                    engine.txns.prepare(new_xid, gid)?;
                    engine.wal.append(WalRecord::Prepare { xid: new_xid, gid: gid.clone() });
                }
                _ => engine.txns.abort(new_xid),
            }
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlparse::parse;

    fn create(engine: &Engine, sql: &str) {
        match parse(sql).unwrap() {
            Statement::CreateTable(ct) => engine.ddl_create_table(&ct).unwrap(),
            Statement::CreateIndex(ci) => engine.ddl_create_index(&ci).unwrap(),
            _ => panic!("not DDL"),
        }
    }

    #[test]
    fn ddl_creates_store_and_pk_index() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY, v text)");
        let meta = e.table_meta("t").unwrap();
        assert!(e.store(meta.id).is_ok());
        assert_eq!(meta.indexes.len(), 1);
        assert!(e.index_store(meta.indexes[0]).is_ok());
    }

    #[test]
    fn connection_cap() {
        let mut cfg = EngineConfig::default();
        cfg.max_connections = 2;
        let e = Engine::new(cfg);
        let s1 = e.session().unwrap();
        let _s2 = e.session().unwrap();
        assert_eq!(e.session().map(|_| ()).unwrap_err().code, ErrorCode::TooManyConnections);
        drop(s1);
        assert!(e.session().is_ok());
    }

    #[test]
    fn index_backfill_on_create() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY, v text)");
        let meta = e.table_meta("t").unwrap();
        // insert rows directly through the heap
        let xid = e.txns.begin();
        let store = e.store(meta.id).unwrap();
        let rid = store.heap().unwrap().insert(
            xid,
            vec![Datum::Int(1), Datum::from_text("fix postgres bug")],
        );
        e.index_insert_row(&meta, rid, &vec![Datum::Int(1), Datum::from_text("fix postgres bug")])
            .unwrap();
        e.txns.commit(xid);
        create(&e, "CREATE INDEX gi ON t USING gin (v)");
        let meta = e.table_meta("t").unwrap();
        let gin = e.index_store(*meta.indexes.last().unwrap()).unwrap();
        let IndexStore::Gin(g) = &*gin else { panic!() };
        assert_eq!(g.candidates_for_like("%postgres%").unwrap(), vec![rid]);
    }

    #[test]
    fn drop_table_cleans_up() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY)");
        let meta = e.table_meta("t").unwrap();
        e.ddl_drop_table("t", false).unwrap();
        assert!(e.table_meta("t").is_err());
        assert!(e.store(meta.id).is_err());
        // idempotent with IF EXISTS
        e.ddl_drop_table("t", true).unwrap();
        assert!(e.ddl_drop_table("t", false).is_err());
    }

    #[test]
    fn restore_from_wal_replays_schema_and_data() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY, v text)");
        let meta = e.table_meta("t").unwrap();
        let xid = e.txns.begin();
        e.wal.append(WalRecord::Begin { xid });
        let store = e.store(meta.id).unwrap();
        let rid = store.heap().unwrap().insert(xid, vec![Datum::Int(1), Datum::from_text("a")]);
        e.wal.append(WalRecord::Insert {
            xid,
            table: meta.id,
            row_id: rid,
            row: vec![Datum::Int(1), Datum::from_text("a")],
        });
        e.txns.commit(xid);
        e.wal.append(WalRecord::Commit { xid });
        // an aborted txn's insert must not replay
        let xid2 = e.txns.begin();
        e.wal.append(WalRecord::Begin { xid: xid2 });
        e.wal.append(WalRecord::Insert {
            xid: xid2,
            table: meta.id,
            row_id: 999,
            row: vec![Datum::Int(2), Datum::from_text("b")],
        });
        e.txns.abort(xid2);
        e.wal.append(WalRecord::Abort { xid: xid2 });

        let standby = Engine::restore_from_wal(&e.wal.all(), None).unwrap();
        let meta2 = standby.table_meta("t").unwrap();
        let snap = standby.txns.snapshot(INVALID_XID);
        let mut rows = Vec::new();
        standby
            .store(meta2.id)
            .unwrap()
            .heap()
            .unwrap()
            .scan_visible(&standby.txns, &snap, |t| rows.push(t.data.clone()));
        assert_eq!(rows, vec![vec![Datum::Int(1), Datum::from_text("a")]]);
    }

    #[test]
    fn restore_recreates_prepared_transactions() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY)");
        let meta = e.table_meta("t").unwrap();
        let xid = e.txns.begin();
        e.wal.append(WalRecord::Begin { xid });
        let rid = e.store(meta.id).unwrap().heap().unwrap().insert(xid, vec![Datum::Int(7)]);
        e.wal.append(WalRecord::Insert { xid, table: meta.id, row_id: rid, row: vec![Datum::Int(7)] });
        e.txns.prepare(xid, "gid_7").unwrap();
        e.wal.append(WalRecord::Prepare { xid, gid: "gid_7".into() });

        let standby = Engine::restore_from_wal(&e.wal.all(), None).unwrap();
        assert_eq!(standby.txns.prepared_gids(), vec!["gid_7".to_string()]);
        // invisible until commit prepared
        let snap = standby.txns.snapshot(INVALID_XID);
        let meta2 = standby.table_meta("t").unwrap();
        let mut n = 0;
        standby
            .store(meta2.id)
            .unwrap()
            .heap()
            .unwrap()
            .scan_visible(&standby.txns, &snap, |_| n += 1);
        assert_eq!(n, 0);
        let xid2 = standby.txns.finish_prepared("gid_7", true).unwrap();
        standby.locks.release_all(xid2);
        let snap = standby.txns.snapshot(INVALID_XID);
        let mut n = 0;
        standby
            .store(meta2.id)
            .unwrap()
            .heap()
            .unwrap()
            .scan_visible(&standby.txns, &snap, |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn restore_composes_across_repeated_failovers() {
        // restore(wal(restore(wal))) == restore(wal): the promoted standby's
        // WAL must carry the replayed history forward, or a second crash
        // silently loses everything committed before the first one
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY, v text)");
        let meta = e.table_meta("t").unwrap();
        for v in 1..=3i64 {
            let xid = e.txns.begin();
            e.wal.append(WalRecord::Begin { xid });
            let row = vec![Datum::Int(v), Datum::from_text("x")];
            let rid = e.store(meta.id).unwrap().heap().unwrap().insert(xid, row.clone());
            e.wal.append(WalRecord::Insert { xid, table: meta.id, row_id: rid, row });
            e.txns.commit(xid);
            e.wal.append(WalRecord::Commit { xid });
        }
        let visible = |eng: &Engine| {
            let meta = eng.table_meta("t").unwrap();
            let snap = eng.txns.snapshot(INVALID_XID);
            let mut rows: Vec<Row> = Vec::new();
            eng.store(meta.id)
                .unwrap()
                .heap()
                .unwrap()
                .scan_visible(&eng.txns, &snap, |t| rows.push(t.data.clone()));
            rows.sort_by_key(|r| r[0].as_i64().unwrap());
            rows
        };
        let first = Engine::restore_from_wal(&e.wal.all(), None).unwrap();
        assert_eq!(visible(&first).len(), 3);
        let second = Engine::restore_from_wal(&first.wal.all(), None).unwrap();
        assert_eq!(visible(&second), visible(&first), "second failover lost committed rows");
        // and new commits on the standby extend its WAL without clashing
        // with the replayed xids
        let meta1 = first.table_meta("t").unwrap();
        let xid = first.txns.begin();
        first.wal.append(WalRecord::Begin { xid });
        let row = vec![Datum::Int(4), Datum::from_text("y")];
        let rid = first.store(meta1.id).unwrap().heap().unwrap().insert(xid, row.clone());
        first.wal.append(WalRecord::Insert { xid, table: meta1.id, row_id: rid, row });
        first.txns.commit(xid);
        first.wal.append(WalRecord::Commit { xid });
        let third = Engine::restore_from_wal(&first.wal.all(), None).unwrap();
        assert_eq!(visible(&third).len(), 4);
    }

    #[test]
    fn restore_point_cuts_the_stream() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint PRIMARY KEY)");
        let meta = e.table_meta("t").unwrap();
        let mk = |v: i64| {
            let xid = e.txns.begin();
            let rid = e.store(meta.id).unwrap().heap().unwrap().insert(xid, vec![Datum::Int(v)]);
            e.wal.append(WalRecord::Insert { xid, table: meta.id, row_id: rid, row: vec![Datum::Int(v)] });
            e.txns.commit(xid);
            e.wal.append(WalRecord::Commit { xid });
        };
        mk(1);
        e.wal.append(WalRecord::RestorePoint { name: "rp".into() });
        mk(2);
        let upto = e.wal.restore_point("rp").unwrap();
        let standby = Engine::restore_from_wal(&e.wal.all(), Some(upto)).unwrap();
        let meta2 = standby.table_meta("t").unwrap();
        let snap = standby.txns.snapshot(INVALID_XID);
        let mut n = 0;
        standby
            .store(meta2.id)
            .unwrap()
            .heap()
            .unwrap()
            .scan_visible(&standby.txns, &snap, |_| n += 1);
        assert_eq!(n, 1, "row written after the restore point must not appear");
    }

    #[test]
    fn columnar_conversion() {
        let e = Engine::new_default();
        create(&e, "CREATE TABLE t (id bigint, v float)");
        e.set_columnar("t").unwrap();
        let meta = e.table_meta("t").unwrap();
        assert_eq!(meta.storage, Storage::Columnar);
        assert!(e.store(meta.id).unwrap().heap().is_err());
    }
}
