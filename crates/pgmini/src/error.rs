//! Engine error type, modelled on PostgreSQL SQLSTATE classes.

use std::fmt;

/// Error classes the engine can raise. Each maps onto the PostgreSQL
/// SQLSTATE the corresponding condition would carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// 42601 — syntax error (from the shared parser).
    Syntax,
    /// 42P01 — relation does not exist.
    UndefinedTable,
    /// 42703 — column does not exist.
    UndefinedColumn,
    /// 42P07 — relation already exists.
    DuplicateObject,
    /// 23505 — unique constraint violation.
    UniqueViolation,
    /// 23503 — foreign key violation.
    ForeignKeyViolation,
    /// 23502 — NOT NULL violation.
    NotNullViolation,
    /// 40P01 — deadlock detected.
    DeadlockDetected,
    /// 40001 — serialization failure (e.g. a transaction fenced off by a
    /// concurrent metadata change; retrying the transaction can succeed).
    SerializationFailure,
    /// 57014 — query cancelled (e.g. by the distributed deadlock detector).
    QueryCanceled,
    /// 25xxx — invalid transaction state (e.g. COMMIT PREPARED of unknown gid).
    InvalidTransactionState,
    /// 0A000 — feature not supported (e.g. correlated subqueries on shards).
    FeatureNotSupported,
    /// 22012 — division by zero.
    DivisionByZero,
    /// 22P02 — invalid text representation (bad cast input).
    InvalidText,
    /// 53300 — too many connections.
    TooManyConnections,
    /// 08006 — connection failure (node down in the simulated fabric).
    ConnectionFailure,
    /// 22023 — invalid parameter value.
    InvalidParameter,
    /// XX000 — internal error; indicates an engine bug.
    Internal,
}

impl ErrorCode {
    /// The PostgreSQL SQLSTATE for this condition.
    pub fn sqlstate(self) -> &'static str {
        match self {
            ErrorCode::Syntax => "42601",
            ErrorCode::UndefinedTable => "42P01",
            ErrorCode::UndefinedColumn => "42703",
            ErrorCode::DuplicateObject => "42P07",
            ErrorCode::UniqueViolation => "23505",
            ErrorCode::ForeignKeyViolation => "23503",
            ErrorCode::NotNullViolation => "23502",
            ErrorCode::DeadlockDetected => "40P01",
            ErrorCode::SerializationFailure => "40001",
            ErrorCode::QueryCanceled => "57014",
            ErrorCode::InvalidTransactionState => "25000",
            ErrorCode::FeatureNotSupported => "0A000",
            ErrorCode::DivisionByZero => "22012",
            ErrorCode::InvalidText => "22P02",
            ErrorCode::TooManyConnections => "53300",
            ErrorCode::ConnectionFailure => "08006",
            ErrorCode::InvalidParameter => "22023",
            ErrorCode::Internal => "XX000",
        }
    }
}

/// An error raised by the engine, carrying its class and a human message.
#[derive(Debug, Clone, PartialEq)]
pub struct PgError {
    pub code: ErrorCode,
    pub message: String,
}

impl PgError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        PgError { code, message: message.into() }
    }

    pub fn undefined_table(name: &str) -> Self {
        Self::new(ErrorCode::UndefinedTable, format!("relation \"{name}\" does not exist"))
    }

    pub fn undefined_column(name: &str) -> Self {
        Self::new(ErrorCode::UndefinedColumn, format!("column \"{name}\" does not exist"))
    }

    pub fn unsupported(what: impl Into<String>) -> Self {
        Self::new(ErrorCode::FeatureNotSupported, what)
    }

    pub fn internal(what: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, what)
    }

    /// True when retrying the whole transaction could succeed (deadlock or
    /// cancellation), which is how benchmark drivers treat these conditions.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.code,
            ErrorCode::DeadlockDetected
                | ErrorCode::QueryCanceled
                | ErrorCode::SerializationFailure
        )
    }
}

impl fmt::Display for PgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code.sqlstate(), self.message)
    }
}

impl std::error::Error for PgError {}

impl From<sqlparse::ParseError> for PgError {
    fn from(e: sqlparse::ParseError) -> Self {
        PgError::new(ErrorCode::Syntax, e.to_string())
    }
}

/// Engine result alias.
pub type PgResult<T> = Result<T, PgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqlstates_match_postgres() {
        assert_eq!(ErrorCode::UniqueViolation.sqlstate(), "23505");
        assert_eq!(ErrorCode::DeadlockDetected.sqlstate(), "40P01");
        assert_eq!(ErrorCode::FeatureNotSupported.sqlstate(), "0A000");
    }

    #[test]
    fn retryable_classification() {
        assert!(PgError::new(ErrorCode::DeadlockDetected, "x").is_retryable());
        assert!(PgError::new(ErrorCode::QueryCanceled, "x").is_retryable());
        assert!(PgError::new(ErrorCode::SerializationFailure, "x").is_retryable());
        assert!(!PgError::new(ErrorCode::UniqueViolation, "x").is_retryable());
    }

    #[test]
    fn display_includes_sqlstate() {
        let e = PgError::undefined_table("nope");
        assert!(e.to_string().contains("42P01"));
        assert!(e.to_string().contains("nope"));
    }
}
