//! Plan execution (SELECT side).
//!
//! Materialising executor: each plan node produces its full row set. This
//! matches the engine's role in the reproduction — PostgreSQL is effectively
//! single-threaded per query (§2.2 of the paper), and all parallelism comes
//! from the distributed layer running many per-shard queries concurrently.

use crate::buffer::BufferKey;
use crate::catalog::TableId;
use crate::cost::SimCost;
use crate::engine::Engine;
use crate::error::{PgError, PgResult};
use crate::expr::{eval, BExpr, EvalCtx};
use crate::index::IndexStore;
use crate::lock::{LockKey, LockMode};
use crate::plan::{AggCall, AggKind, IndexProbe, PlanNode, SelectPlan};
use crate::storage::TableStore;
use crate::txn::{Snapshot, Xid, INVALID_XID};
use crate::types::{Datum, Row, SortKey};
use sqlparse::ast::JoinKind;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Execution context for one statement.
pub struct ExecCtx<'e> {
    pub engine: &'e Arc<Engine>,
    pub snap: Snapshot,
    /// Current transaction id; [`INVALID_XID`] for implicit read-only.
    pub xid: Xid,
    pub eval_ctx: EvalCtx,
    pub cost: SimCost,
}

impl<'e> ExecCtx<'e> {
    pub fn new(engine: &'e Arc<Engine>, snap: Snapshot, xid: Xid, seed: u64) -> Self {
        let now = crate::types::time::parse_timestamp("2020-06-01 00:00:00").expect("const");
        ExecCtx { engine, snap, xid, eval_ctx: EvalCtx::new(seed, now), cost: SimCost::ZERO }
    }

    fn model(&self) -> crate::cost::CostModel {
        self.engine.config.cost
    }
}

/// Planner's view of an engine's catalog and statistics.
pub struct EngineCatalogView<'a> {
    pub engine: &'a Engine,
}

impl crate::plan::PlannerCatalog for EngineCatalogView<'_> {
    fn table_meta(&self, name: &str) -> PgResult<crate::catalog::TableMeta> {
        self.engine.table_meta(name)
    }

    fn index_meta(&self, id: crate::catalog::IndexId) -> PgResult<crate::catalog::IndexMeta> {
        self.engine.index_meta(id)
    }

    fn row_estimate(&self, table: TableId) -> u64 {
        self.engine.store(table).map(|s| s.live_estimate()).unwrap_or(0)
    }
}

/// Subquery executor that recurses through `execute_select` on the same
/// execution context (same snapshot, shared cost accounting).
struct CtxSubquery<'a, 'e> {
    ctx: &'a mut ExecCtx<'e>,
    params: Vec<Datum>,
}

impl crate::plan::SubqueryExecutor for CtxSubquery<'_, '_> {
    fn run_subquery(&mut self, sub: &sqlparse::ast::Select) -> PgResult<Vec<Row>> {
        execute_select(self.ctx, sub, &self.params).map(|(_, rows)| rows)
    }
}

/// Plan a SELECT against the context's engine (subqueries run eagerly).
pub fn build_select_plan(
    ctx: &mut ExecCtx,
    sel: &sqlparse::ast::Select,
    params: &[Datum],
) -> PgResult<SelectPlan> {
    let engine = ctx.engine.clone();
    let view = EngineCatalogView { engine: &engine };
    let mut plan = {
        let mut subq = CtxSubquery { ctx, params: params.to_vec() };
        crate::plan::plan_select(sel, &view, &mut subq, params)?
    };
    crate::plan::choose_access_paths(&mut plan.input, &view, &|id| engine.table_meta_by_id(id))?;
    Ok(plan)
}

/// Plan + run a SELECT, returning (column names, rows).
pub fn execute_select(
    ctx: &mut ExecCtx,
    sel: &sqlparse::ast::Select,
    params: &[Datum],
) -> PgResult<(Vec<String>, Vec<Row>)> {
    let plan = build_select_plan(ctx, sel, params)?;
    run_select_plan(ctx, &plan)
}

/// Evaluate a filter as a WHERE condition (NULL = false).
fn passes(filter: &Option<BExpr>, row: &Row, ctx: &EvalCtx) -> PgResult<bool> {
    match filter {
        None => Ok(true),
        Some(f) => Ok(matches!(eval(f, row, ctx)?, Datum::Bool(true))),
    }
}

/// I/O of a columnar scan touching only `refs` columns: the table's simulated
/// bytes are apportioned across columns by declared type width, so a query
/// reading 2 of 16 lineitem columns pays ~1/8 the I/O of a full scan. Each
/// referenced column reads — and caches — under its own buffer key, so mixed
/// projections over the same table keep each other's columns warm instead of
/// fighting over a single residency counter. Returns `(pages, misses)`.
fn columnar_scan_io(
    buffer: &crate::buffer::BufferPool,
    meta: &crate::catalog::TableMeta,
    table: TableId,
    rows: u64,
    refs: &[usize],
) -> (u64, u64) {
    let total: u64 = meta
        .columns
        .iter()
        .map(|c| crate::catalog::type_width(c.ty) as u64)
        .sum::<u64>()
        .max(1);
    let mut pages = 0u64;
    let mut misses = 0u64;
    for &i in refs {
        let Some(col) = meta.columns.get(i) else { continue };
        let w = crate::catalog::type_width(col.ty) as u64;
        let eff_width = ((meta.sim_row_width as u64 * w) / total).max(1) as u32;
        let col_pages = crate::cost::pages_for(rows, eff_width);
        pages += col_pages;
        misses += buffer.scan(BufferKey::TableColumn(table.0, i as u32), col_pages);
    }
    (pages, misses)
}

/// Scan a table, returning `(row_id, row)` pairs that pass `filter`.
/// This is the shared primitive behind SELECT scans, UPDATE/DELETE target
/// collection, and FOR UPDATE. `cols` is the planner's referenced-column set
/// (projection pushdown); `None` reads every column.
pub fn scan_with_rowids(
    ctx: &mut ExecCtx,
    table: TableId,
    index: Option<(crate::catalog::IndexId, &IndexProbe)>,
    filter: &Option<BExpr>,
    cols: Option<&[usize]>,
) -> PgResult<Vec<(u64, Row)>> {
    let meta = ctx.engine.table_meta_by_id(table)?;
    let store = ctx.engine.store(table)?;
    let model = ctx.model();
    let mut out = Vec::new();
    match index {
        None => match &*store {
            TableStore::Heap(heap) => {
                let pages = ctx.engine.table_pages(&meta);
                let misses = ctx.engine.buffer.scan(BufferKey::Table(table.0), pages);
                ctx.cost.add_pages(&model, pages, misses);
                let mut scanned = 0u64;
                let mut err = None;
                heap.scan_visible(&ctx.engine.txns, &ctx.snap, |t| {
                    if err.is_some() {
                        return;
                    }
                    scanned += 1;
                    match passes(filter, &t.data, &ctx.eval_ctx) {
                        Ok(true) => out.push((t.row_id, t.data.clone())),
                        Ok(false) => {}
                        Err(e) => err = Some(e),
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
                ctx.cost.add_tuples(&model, scanned);
            }
            TableStore::Columnar(col) => {
                // columnar I/O: only the referenced columns' pages are read
                let rows = col.live_estimate();
                let all_cols: Vec<usize> = (0..meta.columns.len()).collect();
                let refs: &[usize] = cols.unwrap_or(&all_cols);
                let (pages, misses) =
                    columnar_scan_io(&ctx.engine.buffer, &meta, table, rows, refs);
                ctx.cost.add_pages(&model, pages, misses);
                let batchable = ctx.engine.config.vectorized
                    && filter.as_ref().is_none_or(crate::batch::supports_batch);
                if batchable {
                    // Tier A: batched scan + filter. Stripe slices become
                    // `ColumnBatch`es (only `refs` columns cloned), the
                    // filter runs as kernels over the column vectors, and
                    // only surviving rows are materialized.
                    let kernels_per_batch =
                        1 + filter.as_ref().map_or(0, crate::batch::kernel_count);
                    let mut scanned = 0u64;
                    let mut batches = 0u64;
                    let mut err = None;
                    col.for_each_visible_stripe(
                        &ctx.engine.txns,
                        &ctx.snap,
                        |_seq, nrows, columns| {
                            if err.is_some() {
                                return;
                            }
                            let mut lo = 0;
                            while lo < nrows {
                                let len =
                                    (nrows - lo).min(crate::batch::BATCH_CAPACITY);
                                let batch = crate::batch::ColumnBatch::from_stripe(
                                    columns, lo, len, refs,
                                );
                                let sel: Vec<usize> = (0..len).collect();
                                let selected = match filter {
                                    None => sel,
                                    Some(f) => match crate::batch::filter_batch(
                                        f,
                                        &batch,
                                        &sel,
                                        &ctx.eval_ctx,
                                    ) {
                                        Ok(s) => s,
                                        Err(e) => {
                                            err = Some(e);
                                            return;
                                        }
                                    },
                                };
                                batches += 1;
                                scanned += len as u64;
                                for row in batch.take_rows(&selected) {
                                    out.push((0, row));
                                }
                                lo += len;
                            }
                        },
                    );
                    if let Some(e) = err {
                        return Err(e);
                    }
                    ctx.cost.batches += batches;
                    ctx.cost.add_kernels(&model, kernels_per_batch * batches, scanned);
                    ctx.cost.rows_processed += scanned;
                } else {
                    // volcano fallback (vectorization off, or the filter
                    // contains a construct with no kernel): tuple-at-a-time
                    // with full per-tuple CPU; the per-column I/O advantage
                    // above still applies.
                    let mut scanned = 0u64;
                    let mut err = None;
                    col.scan_visible(&ctx.engine.txns, &ctx.snap, cols, |row| {
                        if err.is_some() {
                            return;
                        }
                        scanned += 1;
                        match passes(filter, &row, &ctx.eval_ctx) {
                            Ok(true) => out.push((0, row)),
                            Ok(false) => {}
                            Err(e) => err = Some(e),
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                    ctx.cost.add_tuples(&model, scanned);
                }
            }
        },
        Some((iid, probe)) => {
            let istore = ctx.engine.index_store(iid)?;
            let heap = store.heap()?;
            let row_ids: Vec<u64> = match (&*istore, probe) {
                (IndexStore::BTree(b), IndexProbe::EqPrefix(vals)) => {
                    let key: Vec<Datum> = vals
                        .iter()
                        .map(|v| eval(v, &vec![], &ctx.eval_ctx))
                        .collect::<PgResult<_>>()?;
                    let imeta = ctx.engine.index_meta(iid)?;
                    ctx.cost.add_cpu(model.index_descend_ms);
                    // page touches of a B-tree descent: modelled at the
                    // *full-size* index depth (a few levels) rather than the
                    // scaled-down one, so sharded and unsharded layouts pay
                    // comparable per-probe I/O
                    let touched = 3;
                    let ipages = (b.len() / 200).max(1);
                    let misses =
                        ctx.engine.buffer.point_read(BufferKey::Index(iid.0), ipages, touched);
                    ctx.cost.add_pages(&model, touched, misses);
                    if key.len() == imeta.exprs.len() {
                        b.get_eq(&key)
                    } else {
                        b.get_prefix(&key)
                    }
                }
                (IndexStore::BTree(b), IndexProbe::Range { low, high }) => {
                    let lo = low
                        .as_ref()
                        .map(|(e, i)| Ok::<_, PgError>((eval(e, &vec![], &ctx.eval_ctx)?, *i)))
                        .transpose()?;
                    let hi = high
                        .as_ref()
                        .map(|(e, i)| Ok::<_, PgError>((eval(e, &vec![], &ctx.eval_ctx)?, *i)))
                        .transpose()?;
                    ctx.cost.add_cpu(model.index_descend_ms);
                    b.range_first_col(
                        lo.as_ref().map(|(d, i)| (d, *i)),
                        hi.as_ref().map(|(d, i)| (d, *i)),
                    )
                }
                (IndexStore::Gin(g), IndexProbe::LikePattern { pattern, .. }) => {
                    let p = eval(pattern, &vec![], &ctx.eval_ctx)?;
                    ctx.cost.add_cpu(model.index_descend_ms * 3.0);
                    match g.candidates_for_like(&p.to_text()) {
                        Some(ids) => ids,
                        None => {
                            // pattern too short: seq scan fallback
                            return scan_with_rowids(ctx, table, None, filter, cols);
                        }
                    }
                }
                _ => return Err(PgError::internal("index probe/store mismatch")),
            };
            // every MVCC version has its own index entry; a logical row must
            // be fetched once
            let row_ids = {
                let mut ids = row_ids;
                ids.sort_unstable();
                ids.dedup();
                ids
            };
            // fetch + recheck each candidate
            let table_pages = ctx.engine.table_pages(&meta).max(1);
            for row_id in row_ids {
                let misses =
                    ctx.engine.buffer.point_read(BufferKey::Table(table.0), table_pages, 1);
                ctx.cost.add_pages(&model, 1, misses);
                if let Some(row) =
                    heap.visible_version(&ctx.engine.txns, &ctx.snap, row_id)
                {
                    ctx.cost.add_tuples(&model, 1);
                    if passes(filter, &row, &ctx.eval_ctx)? {
                        out.push((row_id, row));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Execute a FROM/WHERE plan node, producing rows.
pub fn run_plan_node(ctx: &mut ExecCtx, node: &PlanNode) -> PgResult<Vec<Row>> {
    match node {
        PlanNode::SeqScan { table, filter, cols } => {
            Ok(scan_with_rowids(ctx, *table, None, filter, cols.as_deref())?
                .into_iter()
                .map(|(_, r)| r)
                .collect())
        }
        PlanNode::IndexScan { table, index, probe, filter } => {
            Ok(scan_with_rowids(ctx, *table, Some((*index, probe)), filter, None)?
                .into_iter()
                .map(|(_, r)| r)
                .collect())
        }
        PlanNode::Materialized { rows, .. } => {
            ctx.cost.add_tuples(&ctx.model(), rows.len() as u64);
            Ok(rows.clone())
        }
        PlanNode::Filter { input, pred } => {
            let rows = run_plan_node(ctx, input)?;
            let mut out = Vec::new();
            for r in rows {
                if matches!(eval(pred, &r, &ctx.eval_ctx)?, Datum::Bool(true)) {
                    out.push(r);
                }
            }
            ctx.cost.add_tuples(&ctx.model(), out.len() as u64);
            Ok(out)
        }
        PlanNode::Join { left, right, kind, hash_keys, on, left_arity, right_arity } => {
            let lrows = run_plan_node(ctx, left)?;
            let rrows = run_plan_node(ctx, right)?;
            join_rows(ctx, lrows, rrows, *kind, hash_keys, on, *left_arity, *right_arity)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn join_rows(
    ctx: &mut ExecCtx,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    kind: JoinKind,
    hash_keys: &Option<(Vec<BExpr>, Vec<BExpr>)>,
    on: &Option<BExpr>,
    left_arity: usize,
    right_arity: usize,
) -> PgResult<Vec<Row>> {
    let model = ctx.model();
    let mut out = Vec::new();
    match hash_keys {
        Some((lkeys, rkeys)) => {
            // build on the right side
            let mut table: BTreeMap<SortKey, Vec<usize>> = BTreeMap::new();
            for (i, r) in rrows.iter().enumerate() {
                let key: Vec<Datum> =
                    rkeys.iter().map(|k| eval(k, r, &ctx.eval_ctx)).collect::<PgResult<_>>()?;
                if key.iter().any(Datum::is_null) {
                    continue; // NULL keys never join
                }
                table.entry(SortKey(key)).or_default().push(i);
            }
            ctx.cost.add_tuples(&model, rrows.len() as u64);
            let mut right_matched = vec![false; rrows.len()];
            for l in &lrows {
                let key: Vec<Datum> =
                    lkeys.iter().map(|k| eval(k, l, &ctx.eval_ctx)).collect::<PgResult<_>>()?;
                let mut matched = false;
                if !key.iter().any(Datum::is_null) {
                    if let Some(bucket) = table.get(&SortKey(key)) {
                        for &ri in bucket {
                            let mut combined = l.clone();
                            combined.extend(rrows[ri].iter().cloned());
                            if passes(on, &combined, &ctx.eval_ctx)? {
                                right_matched[ri] = true;
                                matched = true;
                                out.push(combined);
                            }
                        }
                    }
                }
                if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                    let mut combined = l.clone();
                    combined.extend(std::iter::repeat_n(Datum::Null, right_arity));
                    out.push(combined);
                }
            }
            if matches!(kind, JoinKind::Right | JoinKind::Full) {
                for (ri, m) in right_matched.iter().enumerate() {
                    if !m {
                        let mut combined: Row =
                            std::iter::repeat_n(Datum::Null, left_arity).collect();
                        combined.extend(rrows[ri].iter().cloned());
                        out.push(combined);
                    }
                }
            }
            ctx.cost.add_tuples(&model, lrows.len() as u64 + out.len() as u64);
        }
        None => {
            if matches!(kind, JoinKind::Right | JoinKind::Full) {
                return Err(PgError::unsupported(
                    "RIGHT/FULL join without an equality condition",
                ));
            }
            for l in &lrows {
                let mut matched = false;
                for r in &rrows {
                    let mut combined = l.clone();
                    combined.extend(r.iter().cloned());
                    if passes(on, &combined, &ctx.eval_ctx)? {
                        matched = true;
                        out.push(combined);
                    }
                }
                if !matched && kind == JoinKind::Left {
                    let mut combined = l.clone();
                    combined.extend(std::iter::repeat_n(Datum::Null, right_arity));
                    out.push(combined);
                }
            }
            ctx.cost
                .add_tuples(&model, (lrows.len() * rrows.len().max(1)) as u64);
        }
    }
    Ok(out)
}

/// Aggregate accumulator.
struct AggState {
    kind: AggKind,
    count: u64,
    sum_i: i64,
    sum_f: f64,
    float_mode: bool,
    minmax: Option<Datum>,
    distinct: Option<std::collections::BTreeSet<SortKey>>,
}

impl AggState {
    fn new(call: &AggCall) -> AggState {
        AggState {
            kind: call.kind,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            float_mode: false,
            minmax: None,
            distinct: if call.distinct {
                Some(std::collections::BTreeSet::new())
            } else {
                None
            },
        }
    }

    fn update(&mut self, value: Option<Datum>) -> PgResult<()> {
        match self.kind {
            AggKind::CountStar => {
                self.count += 1;
                return Ok(());
            }
            _ => {
                let Some(v) = value else { return Ok(()) };
                if v.is_null() {
                    return Ok(());
                }
                if let Some(set) = &mut self.distinct {
                    if !set.insert(SortKey(vec![v.clone()])) {
                        return Ok(());
                    }
                }
                match self.kind {
                    AggKind::Count => self.count += 1,
                    AggKind::Sum | AggKind::Avg => {
                        self.count += 1;
                        match &v {
                            Datum::Int(x) => {
                                self.sum_i = self.sum_i.wrapping_add(*x);
                                self.sum_f += *x as f64;
                            }
                            _ => {
                                self.float_mode = true;
                                self.sum_f += v.as_f64()?;
                            }
                        }
                    }
                    AggKind::Min => {
                        let take = match &self.minmax {
                            None => true,
                            Some(cur) => {
                                v.sql_cmp(cur) == Some(std::cmp::Ordering::Less)
                            }
                        };
                        if take {
                            self.minmax = Some(v);
                        }
                    }
                    AggKind::Max => {
                        let take = match &self.minmax {
                            None => true,
                            Some(cur) => {
                                v.sql_cmp(cur) == Some(std::cmp::Ordering::Greater)
                            }
                        };
                        if take {
                            self.minmax = Some(v);
                        }
                    }
                    AggKind::CountStar => unreachable!(),
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Datum {
        match self.kind {
            AggKind::CountStar | AggKind::Count => Datum::Int(self.count as i64),
            AggKind::Sum => {
                if self.count == 0 {
                    Datum::Null
                } else if self.float_mode {
                    Datum::Float(self.sum_f)
                } else {
                    Datum::Int(self.sum_i)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Datum::Null
                } else {
                    Datum::Float(self.sum_f / self.count as f64)
                }
            }
            AggKind::Min | AggKind::Max => self.minmax.clone().unwrap_or(Datum::Null),
        }
    }
}

/// Tier B: fused batched scan→filter→aggregate over a columnar base table.
/// Group keys and aggregate inputs are evaluated as kernels over the column
/// vectors of each batch — rows are never materialized. Returns `None` when
/// the plan shape or an expression doesn't qualify (the volcano path runs).
fn try_vectorized_agg(
    ctx: &mut ExecCtx,
    stage: &crate::plan::AggStage,
    input: &PlanNode,
) -> PgResult<Option<Vec<Row>>> {
    use crate::batch::{eval_batch, filter_batch, kernel_count, supports_batch, ColumnBatch};
    let PlanNode::SeqScan { table, filter, cols } = input else { return Ok(None) };
    let store = ctx.engine.store(*table)?;
    let TableStore::Columnar(col) = &*store else { return Ok(None) };
    if !filter.as_ref().is_none_or(supports_batch)
        || !stage.group.iter().all(supports_batch)
        || !stage.calls.iter().all(|c| c.arg.as_ref().is_none_or(supports_batch))
    {
        return Ok(None);
    }
    let meta = ctx.engine.table_meta_by_id(*table)?;
    let model = ctx.model();
    // same per-column I/O accounting as the row-returning scan path
    let rows = col.live_estimate();
    let all_cols: Vec<usize> = (0..meta.columns.len()).collect();
    let refs: &[usize] = cols.as_deref().unwrap_or(&all_cols);
    let (pages, misses) = columnar_scan_io(&ctx.engine.buffer, &meta, *table, rows, refs);
    ctx.cost.add_pages(&model, pages, misses);
    // one scan kernel, the filter's kernels, plus a gather + kernels per
    // group key and per aggregate input
    let kernels_per_batch: u64 = 1
        + filter.as_ref().map_or(0, kernel_count)
        + stage.group.iter().map(|g| 1 + kernel_count(g)).sum::<u64>()
        + stage
            .calls
            .iter()
            .map(|c| c.arg.as_ref().map_or(1, |a| 1 + kernel_count(a)))
            .sum::<u64>();

    let mut groups: BTreeMap<SortKey, Vec<AggState>> = BTreeMap::new();
    let mut scanned = 0u64;
    let mut batches = 0u64;
    let mut err: Option<PgError> = None;
    col.for_each_visible_stripe(&ctx.engine.txns, &ctx.snap, |_seq, nrows, columns| {
        if err.is_some() {
            return;
        }
        let mut lo = 0;
        while lo < nrows {
            let len = (nrows - lo).min(crate::batch::BATCH_CAPACITY);
            let batch = ColumnBatch::from_stripe(columns, lo, len, refs);
            let sel: Vec<usize> = (0..len).collect();
            let step = || -> PgResult<()> {
                let selected = match filter {
                    None => sel,
                    Some(f) => filter_batch(f, &batch, &sel, &ctx.eval_ctx)?,
                };
                let gvecs: Vec<_> = stage
                    .group
                    .iter()
                    .map(|g| eval_batch(g, &batch, &selected, &ctx.eval_ctx))
                    .collect::<PgResult<_>>()?;
                let avecs: Vec<Option<_>> = stage
                    .calls
                    .iter()
                    .map(|c| {
                        c.arg
                            .as_ref()
                            .map(|a| eval_batch(a, &batch, &selected, &ctx.eval_ctx))
                            .transpose()
                    })
                    .collect::<PgResult<_>>()?;
                for &i in &selected {
                    let key: Vec<Datum> = gvecs.iter().map(|v| v.get(i).clone()).collect();
                    let states = groups
                        .entry(SortKey(key))
                        .or_insert_with(|| stage.calls.iter().map(AggState::new).collect());
                    for (st, av) in states.iter_mut().zip(&avecs) {
                        st.update(av.as_ref().map(|v| v.get(i).clone()))?;
                    }
                }
                Ok(())
            };
            if let Err(e) = step() {
                err = Some(e);
                return;
            }
            batches += 1;
            scanned += len as u64;
            lo += len;
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    ctx.cost.batches += batches;
    ctx.cost.add_kernels(&model, kernels_per_batch * batches, scanned);
    ctx.cost.rows_processed += scanned;
    // global aggregate over empty input still yields one row
    if groups.is_empty() && stage.group.is_empty() {
        groups.insert(SortKey(vec![]), stage.calls.iter().map(AggState::new).collect());
    }
    Ok(Some(
        groups
            .into_iter()
            .map(|(key, states)| {
                let mut row = key.0;
                row.extend(states.iter().map(AggState::finish));
                row
            })
            .collect(),
    ))
}

/// Execute a planned SELECT end to end, returning (column names, rows).
pub fn run_select_plan(ctx: &mut ExecCtx, plan: &SelectPlan) -> PgResult<(Vec<String>, Vec<Row>)> {
    let model = ctx.model();
    // Tier B fused vectorized aggregation, when the shape allows it
    if let (Some(stage), None, true) =
        (&plan.agg, plan.for_update, ctx.engine.config.vectorized)
    {
        if let Some(mid_rows) = try_vectorized_agg(ctx, stage, &plan.input)? {
            return finish_select(ctx, plan, mid_rows);
        }
    }
    // FOR UPDATE uses the locking scan path
    let input_rows: Vec<Row> = if let Some(table) = plan.for_update {
        if ctx.xid == INVALID_XID {
            return Err(PgError::internal("FOR UPDATE requires a transaction"));
        }
        let (index, filter) = match &plan.input {
            PlanNode::SeqScan { filter, .. } => (None, filter.clone()),
            PlanNode::IndexScan { index, probe, filter, .. } => {
                (Some((*index, probe.clone())), filter.clone())
            }
            _ => return Err(PgError::unsupported("FOR UPDATE on joins")),
        };
        let targets = scan_with_rowids(
            ctx,
            table,
            index.as_ref().map(|(i, p)| (*i, p)),
            &filter,
            None,
        )?;
        let mut rows = Vec::new();
        for (row_id, _) in targets {
            ctx.engine.locks.acquire(ctx.xid, LockKey::Row(table, row_id), LockMode::Exclusive)?;
            // recheck under a fresh snapshot after acquiring the lock
            let fresh = ctx.engine.txns.snapshot(ctx.xid);
            let heap_store = ctx.engine.store(table)?;
            let heap = heap_store.heap()?;
            if let Some(row) = heap.visible_version(&ctx.engine.txns, &fresh, row_id) {
                if passes(&filter, &row, &ctx.eval_ctx)? {
                    rows.push(row);
                }
            }
        }
        rows
    } else {
        run_plan_node(ctx, &plan.input)?
    };

    // aggregation
    let mid_rows: Vec<Row> = match &plan.agg {
        None => input_rows,
        Some(stage) => {
            let mut groups: BTreeMap<SortKey, Vec<AggState>> = BTreeMap::new();
            for row in &input_rows {
                let key: Vec<Datum> = stage
                    .group
                    .iter()
                    .map(|g| eval(g, row, &ctx.eval_ctx))
                    .collect::<PgResult<_>>()?;
                let states = groups
                    .entry(SortKey(key))
                    .or_insert_with(|| stage.calls.iter().map(AggState::new).collect());
                for (st, call) in states.iter_mut().zip(&stage.calls) {
                    let arg = match &call.arg {
                        None => None,
                        Some(a) => Some(eval(a, row, &ctx.eval_ctx)?),
                    };
                    st.update(arg)?;
                }
            }
            ctx.cost.add_tuples(&model, input_rows.len() as u64);
            // global aggregate over empty input still yields one row
            if groups.is_empty() && stage.group.is_empty() {
                groups.insert(
                    SortKey(vec![]),
                    stage.calls.iter().map(AggState::new).collect(),
                );
            }
            groups
                .into_iter()
                .map(|(key, states)| {
                    let mut row = key.0;
                    row.extend(states.iter().map(AggState::finish));
                    row
                })
                .collect()
        }
    };

    finish_select(ctx, plan, mid_rows)
}

/// HAVING → projection → DISTINCT → ORDER BY → OFFSET/LIMIT, shared by the
/// volcano and fused-vectorized aggregation paths.
fn finish_select(
    ctx: &mut ExecCtx,
    plan: &SelectPlan,
    mid_rows: Vec<Row>,
) -> PgResult<(Vec<String>, Vec<Row>)> {
    let model = ctx.model();
    // HAVING
    let mut result_rows = Vec::new();
    for row in mid_rows {
        if passes(&plan.having, &row, &ctx.eval_ctx)? {
            // projection (incl. hidden order-by columns)
            let projected: Row = plan
                .projection
                .iter()
                .map(|p| eval(p, &row, &ctx.eval_ctx))
                .collect::<PgResult<_>>()?;
            result_rows.push(projected);
        }
    }
    ctx.cost.add_tuples(&model, result_rows.len() as u64);

    // DISTINCT
    if plan.distinct {
        let mut seen = std::collections::BTreeSet::new();
        result_rows.retain(|r| seen.insert(SortKey(r[..plan.visible].to_vec())));
    }

    // ORDER BY
    if !plan.order_by.is_empty() {
        result_rows.sort_by(|a, b| {
            for (idx, desc) in &plan.order_by {
                let ord = a[*idx].total_cmp(&b[*idx]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        ctx.cost.add_cpu(
            model.cpu_tuple_ms * result_rows.len() as f64
                * (result_rows.len().max(2) as f64).log2(),
        );
    }

    // OFFSET / LIMIT
    if let Some(off) = plan.offset {
        let off = (off as usize).min(result_rows.len());
        result_rows.drain(..off);
    }
    if let Some(lim) = plan.limit {
        result_rows.truncate(lim as usize);
    }

    // hide order-by helper columns
    for r in &mut result_rows {
        r.truncate(plan.visible);
    }
    let names = plan.names[..plan.visible].to_vec();
    Ok((names, result_rows))
}
