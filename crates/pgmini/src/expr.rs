//! Expression binding and evaluation.
//!
//! The planner resolves parsed [`sqlparse::ast::Expr`] trees against a row
//! scope (the columns produced by the FROM clause) into [`BExpr`] — a bound
//! form with column positions instead of names — which the executor then
//! evaluates per row with SQL's three-valued logic.

use crate::error::{ErrorCode, PgError, PgResult};
use crate::types::{datum::splitmix64, hash_bytes, text_ops, time, Datum, Json, Row};
use sqlparse::ast::{BinaryOp, Expr, Literal, TypeName, UnaryOp};
use std::cell::Cell;
use std::cmp::Ordering;

/// One visible column in the binder's scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Table alias / name the column is reachable through, when any.
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColumnRef {
    pub fn new(qualifier: Option<&str>, name: &str) -> Self {
        ColumnRef { qualifier: qualifier.map(str::to_string), name: name.to_string() }
    }
}

/// The ordered set of columns an expression may reference.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowScope {
    pub cols: Vec<ColumnRef>,
}

impl RowScope {
    pub fn of_table(qualifier: &str, names: &[String]) -> Self {
        RowScope {
            cols: names.iter().map(|n| ColumnRef::new(Some(qualifier), n)).collect(),
        }
    }

    /// Concatenate two scopes (the output of a join).
    pub fn join(&self, other: &RowScope) -> RowScope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        RowScope { cols }
    }

    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> PgResult<usize> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && match qualifier {
                        None => true,
                        Some(q) => c.qualifier.as_deref() == Some(q),
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(PgError::undefined_column(&match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            _ => Err(PgError::new(
                ErrorCode::UndefinedColumn,
                format!("column reference \"{name}\" is ambiguous"),
            )),
        }
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    Lower,
    Upper,
    Length,
    Substr,
    Concat,
    Replace,
    Position,
    Md5,
    Random,
    Floor,
    Ceil,
    Abs,
    Round,
    Power,
    Sqrt,
    Mod,
    Coalesce,
    NullIf,
    Greatest,
    Least,
    Now,
    DateTrunc,
    Extract,
    DateAddDays,
    DateAddMonths,
    JsonbArrayLength,
    JsonbPathQueryArray,
    JsonbTypeof,
}

impl Builtin {
    /// Resolve a function name; returns `None` for unknown (maybe UDF) names.
    pub fn resolve(name: &str) -> Option<Builtin> {
        Some(match name {
            "lower" => Builtin::Lower,
            "upper" => Builtin::Upper,
            "length" | "char_length" => Builtin::Length,
            "substr" | "substring" => Builtin::Substr,
            "concat" => Builtin::Concat,
            "replace" => Builtin::Replace,
            "position" | "strpos" => Builtin::Position,
            "md5" => Builtin::Md5,
            "random" => Builtin::Random,
            "floor" => Builtin::Floor,
            "ceil" | "ceiling" => Builtin::Ceil,
            "abs" => Builtin::Abs,
            "round" => Builtin::Round,
            "power" | "pow" => Builtin::Power,
            "sqrt" => Builtin::Sqrt,
            "mod" => Builtin::Mod,
            "coalesce" => Builtin::Coalesce,
            "nullif" => Builtin::NullIf,
            "greatest" => Builtin::Greatest,
            "least" => Builtin::Least,
            "now" | "current_timestamp" | "clock_timestamp" => Builtin::Now,
            "date_trunc" => Builtin::DateTrunc,
            "extract" | "date_part" => Builtin::Extract,
            "date_add_days" => Builtin::DateAddDays,
            "date_add_months" => Builtin::DateAddMonths,
            "jsonb_array_length" | "json_array_length" => Builtin::JsonbArrayLength,
            "jsonb_path_query_array" => Builtin::JsonbPathQueryArray,
            "jsonb_typeof" => Builtin::JsonbTypeof,
            _ => return None,
        })
    }
}

/// A bound expression, ready to evaluate against rows of its scope.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    Const(Datum),
    Col(usize),
    Unary { op: UnaryOp, expr: Box<BExpr> },
    Binary { op: BinaryOp, left: Box<BExpr>, right: Box<BExpr> },
    Like { expr: Box<BExpr>, pattern: Box<BExpr>, negated: bool, case_insensitive: bool },
    Between { expr: Box<BExpr>, low: Box<BExpr>, high: Box<BExpr>, negated: bool },
    InList { expr: Box<BExpr>, list: Vec<BExpr>, negated: bool },
    /// Large constant IN-lists compile to a set probe (subplan results can
    /// contain thousands of values; linear scans would dominate runtime).
    InSet { expr: Box<BExpr>, set: std::sync::Arc<std::collections::BTreeSet<crate::types::SortKey>>, has_null: bool, negated: bool },
    IsNull { expr: Box<BExpr>, negated: bool },
    Case {
        operand: Option<Box<BExpr>>,
        branches: Vec<(BExpr, BExpr)>,
        else_result: Option<Box<BExpr>>,
    },
    Cast { expr: Box<BExpr>, ty: TypeName },
    Func { f: Builtin, args: Vec<BExpr> },
}

impl BExpr {
    /// True when the expression references no columns (constant-foldable).
    pub fn is_const(&self) -> bool {
        match self {
            BExpr::Const(_) => true,
            BExpr::Col(_) => false,
            BExpr::Unary { expr, .. } | BExpr::Cast { expr, .. } | BExpr::IsNull { expr, .. } => {
                expr.is_const()
            }
            BExpr::Binary { left, right, .. } => left.is_const() && right.is_const(),
            BExpr::Like { expr, pattern, .. } => expr.is_const() && pattern.is_const(),
            BExpr::Between { expr, low, high, .. } => {
                expr.is_const() && low.is_const() && high.is_const()
            }
            BExpr::InList { expr, list, .. } => {
                expr.is_const() && list.iter().all(BExpr::is_const)
            }
            BExpr::InSet { expr, .. } => expr.is_const(),
            BExpr::Case { operand, branches, else_result } => {
                operand.as_deref().is_none_or(BExpr::is_const)
                    && branches.iter().all(|(w, t)| w.is_const() && t.is_const())
                    && else_result.as_deref().is_none_or(BExpr::is_const)
            }
            BExpr::Func { f, args } => {
                !matches!(f, Builtin::Random | Builtin::Now) && args.iter().all(BExpr::is_const)
            }
        }
    }
}

/// Per-statement evaluation context: deterministic RNG and a fixed `now()`.
pub struct EvalCtx {
    rng: Cell<u64>,
    pub now_micros: i64,
}

impl EvalCtx {
    pub fn new(seed: u64, now_micros: i64) -> Self {
        EvalCtx { rng: Cell::new(seed | 1), now_micros }
    }

    fn next_f64(&self) -> f64 {
        let next = splitmix64(self.rng.get());
        self.rng.set(next);
        (next >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for EvalCtx {
    fn default() -> Self {
        EvalCtx::new(0x1234_5678, time::parse_timestamp("2020-06-01 00:00:00").unwrap())
    }
}

/// Bind a parsed expression against `scope`. `params` supplies `$n` values.
/// Subqueries must have been flattened by the planner before binding.
pub fn bind(expr: &Expr, scope: &RowScope, params: &[Datum]) -> PgResult<BExpr> {
    Ok(match expr {
        Expr::Literal(l) => BExpr::Const(literal_datum(l)),
        Expr::Param(n) => {
            let v = params.get(*n - 1).ok_or_else(|| {
                PgError::new(ErrorCode::InvalidParameter, format!("no value for parameter ${n}"))
            })?;
            BExpr::Const(v.clone())
        }
        Expr::Column { table, name } => {
            BExpr::Col(scope.resolve(table.as_deref(), name)?)
        }
        Expr::Unary { op, expr } => {
            BExpr::Unary { op: *op, expr: Box::new(bind(expr, scope, params)?) }
        }
        Expr::Binary { left, op, right } => BExpr::Binary {
            op: *op,
            left: Box::new(bind(left, scope, params)?),
            right: Box::new(bind(right, scope, params)?),
        },
        Expr::Like { expr, pattern, negated, case_insensitive } => BExpr::Like {
            expr: Box::new(bind(expr, scope, params)?),
            pattern: Box::new(bind(pattern, scope, params)?),
            negated: *negated,
            case_insensitive: *case_insensitive,
        },
        Expr::Between { expr, low, high, negated } => BExpr::Between {
            expr: Box::new(bind(expr, scope, params)?),
            low: Box::new(bind(low, scope, params)?),
            high: Box::new(bind(high, scope, params)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => {
            let bound: Vec<BExpr> =
                list.iter().map(|e| bind(e, scope, params)).collect::<PgResult<_>>()?;
            if bound.len() > 32 && bound.iter().all(BExpr::is_const) {
                let ctx = EvalCtx::default();
                let mut set = std::collections::BTreeSet::new();
                let mut has_null = false;
                for b in &bound {
                    let v = eval(b, &vec![], &ctx)?;
                    if v.is_null() {
                        has_null = true;
                    } else {
                        set.insert(crate::types::SortKey(vec![v]));
                    }
                }
                BExpr::InSet {
                    expr: Box::new(bind(expr, scope, params)?),
                    set: std::sync::Arc::new(set),
                    has_null,
                    negated: *negated,
                }
            } else {
                BExpr::InList {
                    expr: Box::new(bind(expr, scope, params)?),
                    list: bound,
                    negated: *negated,
                }
            }
        }
        Expr::IsNull { expr, negated } => {
            BExpr::IsNull { expr: Box::new(bind(expr, scope, params)?), negated: *negated }
        }
        Expr::Case { operand, branches, else_result } => BExpr::Case {
            operand: operand
                .as_ref()
                .map(|o| bind(o, scope, params).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((bind(w, scope, params)?, bind(t, scope, params)?)))
                .collect::<PgResult<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|e| bind(e, scope, params).map(Box::new))
                .transpose()?,
        },
        Expr::Cast { expr, ty } => {
            BExpr::Cast { expr: Box::new(bind(expr, scope, params)?), ty: *ty }
        }
        Expr::Func(fc) => {
            let f = Builtin::resolve(&fc.name).ok_or_else(|| {
                PgError::new(
                    ErrorCode::UndefinedColumn,
                    format!("function {}({}) does not exist", fc.name, fc.args.len()),
                )
            })?;
            BExpr::Func {
                f,
                args: fc.args.iter().map(|a| bind(a, scope, params)).collect::<PgResult<_>>()?,
            }
        }
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => {
            return Err(PgError::internal(
                "subquery reached the binder; the planner must flatten subqueries first",
            ))
        }
    })
}

pub fn literal_datum(l: &Literal) -> Datum {
    match l {
        Literal::Null => Datum::Null,
        Literal::Bool(b) => Datum::Bool(*b),
        Literal::Int(v) => Datum::Int(*v),
        Literal::Float(v) => Datum::Float(*v),
        Literal::String(s) => Datum::Text(s.clone()),
    }
}

/// Evaluate a bound expression against one row.
pub fn eval(e: &BExpr, row: &Row, ctx: &EvalCtx) -> PgResult<Datum> {
    match e {
        BExpr::Const(d) => Ok(d.clone()),
        BExpr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| PgError::internal(format!("column index {i} out of range"))),
        BExpr::Unary { op, expr } => apply_unary(*op, eval(expr, row, ctx)?),
        BExpr::Binary { op, left, right } => eval_binary(*op, left, right, row, ctx),
        BExpr::Like { expr, pattern, negated, case_insensitive } => {
            let v = eval(expr, row, ctx)?;
            let p = eval(pattern, row, ctx)?;
            if v.is_null() || p.is_null() {
                return Ok(Datum::Null);
            }
            let hit = text_ops::like_match(&v.to_text(), &p.to_text(), *case_insensitive);
            Ok(Datum::Bool(hit != *negated))
        }
        BExpr::Between { expr, low, high, negated } => {
            let v = eval(expr, row, ctx)?;
            let lo = eval(low, row, ctx)?;
            let hi = eval(high, row, ctx)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Datum::Bool(inside != *negated))
                }
                _ => Ok(Datum::Null),
            }
        }
        BExpr::InList { expr, list, negated } => {
            let v = eval(expr, row, ctx)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row, ctx)?;
                match v.sql_cmp(&iv) {
                    Some(Ordering::Equal) => return Ok(Datum::Bool(!*negated)),
                    None if iv.is_null() => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Datum::Null)
            } else {
                Ok(Datum::Bool(*negated))
            }
        }
        BExpr::InSet { expr, set, has_null, negated } => {
            let v = eval(expr, row, ctx)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let hit = set.contains(&crate::types::SortKey(vec![v]));
            if hit {
                Ok(Datum::Bool(!*negated))
            } else if *has_null {
                Ok(Datum::Null)
            } else {
                Ok(Datum::Bool(*negated))
            }
        }
        BExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, ctx)?;
            Ok(Datum::Bool(v.is_null() != *negated))
        }
        BExpr::Case { operand, branches, else_result } => {
            match operand {
                Some(op_expr) => {
                    let v = eval(op_expr, row, ctx)?;
                    for (when, then) in branches {
                        let w = eval(when, row, ctx)?;
                        if v.sql_cmp(&w) == Some(Ordering::Equal) {
                            return eval(then, row, ctx);
                        }
                    }
                }
                None => {
                    for (when, then) in branches {
                        if matches!(eval(when, row, ctx)?, Datum::Bool(true)) {
                            return eval(then, row, ctx);
                        }
                    }
                }
            }
            match else_result {
                Some(e) => eval(e, row, ctx),
                None => Ok(Datum::Null),
            }
        }
        BExpr::Cast { expr, ty } => eval(expr, row, ctx)?.cast_to(*ty),
        BExpr::Func { f, args } => eval_func(*f, args, row, ctx),
    }
}

/// Scalar core of unary evaluation, shared by the row-at-a-time interpreter
/// and the vectorized batch kernels (`crate::batch`) so both paths produce
/// identical values and errors.
pub(crate) fn apply_unary(op: UnaryOp, v: Datum) -> PgResult<Datum> {
    match op {
        UnaryOp::Neg => match v {
            Datum::Null => Ok(Datum::Null),
            Datum::Int(x) => Ok(Datum::Int(-x)),
            Datum::Float(x) => Ok(Datum::Float(-x)),
            other => Err(PgError::new(
                ErrorCode::InvalidText,
                format!("cannot negate {}", other.to_text()),
            )),
        },
        UnaryOp::Not => match v {
            Datum::Null => Ok(Datum::Null),
            other => Ok(Datum::Bool(!other.as_bool()?)),
        },
    }
}

/// Kleene combination for AND/OR once both operand values are known. The
/// short-circuit cases (AND false / OR true) are subsumed by the match.
pub(crate) fn kleene_combine(op: BinaryOp, l: Datum, r: Datum) -> Datum {
    match (op, l, r) {
        (BinaryOp::And, Datum::Bool(a), Datum::Bool(b)) => Datum::Bool(a && b),
        (BinaryOp::Or, Datum::Bool(a), Datum::Bool(b)) => Datum::Bool(a || b),
        (BinaryOp::And, Datum::Null, Datum::Bool(false))
        | (BinaryOp::And, Datum::Bool(false), Datum::Null) => Datum::Bool(false),
        (BinaryOp::Or, Datum::Null, Datum::Bool(true))
        | (BinaryOp::Or, Datum::Bool(true), Datum::Null) => Datum::Bool(true),
        _ => Datum::Null,
    }
}

fn eval_binary(op: BinaryOp, left: &BExpr, right: &BExpr, row: &Row, ctx: &EvalCtx) -> PgResult<Datum> {
    // AND/OR need Kleene logic with lazy-ish NULL handling
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = eval(left, row, ctx)?;
        // short-circuit
        match (op, &l) {
            (BinaryOp::And, Datum::Bool(false)) => return Ok(Datum::Bool(false)),
            (BinaryOp::Or, Datum::Bool(true)) => return Ok(Datum::Bool(true)),
            _ => {}
        }
        let r = eval(right, row, ctx)?;
        return Ok(kleene_combine(op, l, r));
    }
    let l = eval(left, row, ctx)?;
    let r = eval(right, row, ctx)?;
    apply_binary(op, l, r)
}

/// Scalar core of non-AND/OR binary evaluation on already-computed operand
/// values; shared by the batch kernels.
pub(crate) fn apply_binary(op: BinaryOp, l: Datum, r: Datum) -> PgResult<Datum> {
    if op.is_comparison() {
        return Ok(match l.sql_cmp(&r) {
            None => Datum::Null,
            Some(ord) => Datum::Bool(match op {
                BinaryOp::Eq => ord == Ordering::Equal,
                BinaryOp::Neq => ord != Ordering::Equal,
                BinaryOp::Lt => ord == Ordering::Less,
                BinaryOp::Le => ord != Ordering::Greater,
                BinaryOp::Gt => ord == Ordering::Greater,
                BinaryOp::Ge => ord != Ordering::Less,
                _ => unreachable!("is_comparison covers these"),
            }),
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    match op {
        BinaryOp::Concat => Ok(Datum::Text(format!("{}{}", l.to_text(), r.to_text()))),
        BinaryOp::JsonGet | BinaryOp::JsonGetText => {
            let j = match &l {
                Datum::Json(j) => j.clone(),
                Datum::Text(s) => Json::parse(s)?,
                other => {
                    return Err(PgError::new(
                        ErrorCode::InvalidText,
                        format!("cannot apply -> to {}", other.to_text()),
                    ))
                }
            };
            let child = match &r {
                Datum::Int(i) => j.get_index(*i as usize).cloned(),
                other => j.get(&other.to_text()).cloned(),
            };
            Ok(match child {
                None => Datum::Null,
                Some(c) => {
                    if op == BinaryOp::JsonGet {
                        Datum::Json(c)
                    } else if matches!(c, Json::Null) {
                        Datum::Null
                    } else {
                        Datum::Text(c.as_text())
                    }
                }
            })
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            // timestamp ± int days
            if let (Datum::Timestamp(t), Datum::Int(d)) = (&l, &r) {
                return Ok(match op {
                    BinaryOp::Add => Datum::Timestamp(t + d * time::MICROS_PER_DAY),
                    BinaryOp::Sub => Datum::Timestamp(t - d * time::MICROS_PER_DAY),
                    _ => {
                        return Err(PgError::new(
                            ErrorCode::InvalidText,
                            "unsupported timestamp arithmetic",
                        ))
                    }
                });
            }
            let int_mode = matches!((&l, &r), (Datum::Int(_), Datum::Int(_)));
            if int_mode {
                let (a, b) = (l.as_i64()?, r.as_i64()?);
                return match op {
                    BinaryOp::Add => Ok(Datum::Int(a.wrapping_add(b))),
                    BinaryOp::Sub => Ok(Datum::Int(a.wrapping_sub(b))),
                    BinaryOp::Mul => Ok(Datum::Int(a.wrapping_mul(b))),
                    BinaryOp::Div => {
                        if b == 0 {
                            Err(PgError::new(ErrorCode::DivisionByZero, "division by zero"))
                        } else {
                            Ok(Datum::Int(a / b))
                        }
                    }
                    BinaryOp::Mod => {
                        if b == 0 {
                            Err(PgError::new(ErrorCode::DivisionByZero, "division by zero"))
                        } else {
                            Ok(Datum::Int(a % b))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            match op {
                BinaryOp::Add => Ok(Datum::Float(a + b)),
                BinaryOp::Sub => Ok(Datum::Float(a - b)),
                BinaryOp::Mul => Ok(Datum::Float(a * b)),
                BinaryOp::Div => {
                    if b == 0.0 {
                        Err(PgError::new(ErrorCode::DivisionByZero, "division by zero"))
                    } else {
                        Ok(Datum::Float(a / b))
                    }
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        Err(PgError::new(ErrorCode::DivisionByZero, "division by zero"))
                    } else {
                        Ok(Datum::Float(a % b))
                    }
                }
                _ => unreachable!(),
            }
        }
        BinaryOp::And | BinaryOp::Or | BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt
        | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => unreachable!("handled above"),
    }
}

fn eval_func(f: Builtin, args: &[BExpr], row: &Row, ctx: &EvalCtx) -> PgResult<Datum> {
    let arity = |n: usize| -> PgResult<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(PgError::new(
                ErrorCode::InvalidParameter,
                format!("function expects {n} argument(s), got {}", args.len()),
            ))
        }
    };
    let v = |i: usize| eval(&args[i], row, ctx);
    match f {
        Builtin::Random => {
            arity(0)?;
            Ok(Datum::Float(ctx.next_f64()))
        }
        Builtin::Now => {
            arity(0)?;
            Ok(Datum::Timestamp(ctx.now_micros))
        }
        Builtin::Lower => {
            arity(1)?;
            let a = v(0)?;
            Ok(if a.is_null() { Datum::Null } else { Datum::Text(a.to_text().to_lowercase()) })
        }
        Builtin::Upper => {
            arity(1)?;
            let a = v(0)?;
            Ok(if a.is_null() { Datum::Null } else { Datum::Text(a.to_text().to_uppercase()) })
        }
        Builtin::Length => {
            arity(1)?;
            let a = v(0)?;
            Ok(if a.is_null() {
                Datum::Null
            } else {
                Datum::Int(a.to_text().chars().count() as i64)
            })
        }
        Builtin::Substr => {
            if args.len() != 2 && args.len() != 3 {
                return Err(PgError::new(ErrorCode::InvalidParameter, "substr takes 2 or 3 args"));
            }
            let s = v(0)?;
            if s.is_null() {
                return Ok(Datum::Null);
            }
            let text = s.to_text();
            let start = v(1)?.as_i64()?.max(1) as usize - 1;
            let chars: Vec<char> = text.chars().collect();
            let slice: String = if args.len() == 3 {
                let len = v(2)?.as_i64()?.max(0) as usize;
                chars.iter().skip(start).take(len).collect()
            } else {
                chars.iter().skip(start).collect()
            };
            Ok(Datum::Text(slice))
        }
        Builtin::Concat => {
            let mut out = String::new();
            for a in args {
                let x = eval(a, row, ctx)?;
                if !x.is_null() {
                    out.push_str(&x.to_text());
                }
            }
            Ok(Datum::Text(out))
        }
        Builtin::Replace => {
            arity(3)?;
            let (s, from, to) = (v(0)?, v(1)?, v(2)?);
            if s.is_null() || from.is_null() || to.is_null() {
                return Ok(Datum::Null);
            }
            Ok(Datum::Text(s.to_text().replace(&from.to_text(), &to.to_text())))
        }
        Builtin::Position => {
            arity(2)?;
            let (needle, hay) = (v(0)?, v(1)?);
            if needle.is_null() || hay.is_null() {
                return Ok(Datum::Null);
            }
            Ok(Datum::Int(
                hay.to_text().find(&needle.to_text()).map(|i| i as i64 + 1).unwrap_or(0),
            ))
        }
        Builtin::Md5 => {
            arity(1)?;
            let a = v(0)?;
            if a.is_null() {
                return Ok(Datum::Null);
            }
            let text = a.to_text();
            let h1 = hash_bytes(text.as_bytes());
            let h2 = hash_bytes(format!("md5:{text}").as_bytes());
            Ok(Datum::Text(format!("{h1:016x}{h2:016x}")))
        }
        Builtin::Floor | Builtin::Ceil | Builtin::Abs | Builtin::Sqrt => {
            arity(1)?;
            let a = v(0)?;
            if a.is_null() {
                return Ok(Datum::Null);
            }
            if let (Builtin::Abs, Datum::Int(x)) = (f, &a) {
                return Ok(Datum::Int(x.abs()));
            }
            let x = a.as_f64()?;
            Ok(match f {
                Builtin::Floor => Datum::Float(x.floor()),
                Builtin::Ceil => Datum::Float(x.ceil()),
                Builtin::Abs => Datum::Float(x.abs()),
                Builtin::Sqrt => Datum::Float(x.sqrt()),
                _ => unreachable!(),
            })
        }
        Builtin::Round => {
            let a = v(0)?;
            if a.is_null() {
                return Ok(Datum::Null);
            }
            let x = a.as_f64()?;
            if args.len() == 2 {
                let digits = v(1)?.as_i64()?;
                let scale = 10f64.powi(digits as i32);
                Ok(Datum::Float((x * scale).round() / scale))
            } else {
                Ok(Datum::Float(x.round()))
            }
        }
        Builtin::Power => {
            arity(2)?;
            let (a, b) = (v(0)?, v(1)?);
            if a.is_null() || b.is_null() {
                return Ok(Datum::Null);
            }
            Ok(Datum::Float(a.as_f64()?.powf(b.as_f64()?)))
        }
        Builtin::Mod => {
            arity(2)?;
            let (a, b) = (v(0)?, v(1)?);
            if a.is_null() || b.is_null() {
                return Ok(Datum::Null);
            }
            let bb = b.as_i64()?;
            if bb == 0 {
                return Err(PgError::new(ErrorCode::DivisionByZero, "division by zero"));
            }
            Ok(Datum::Int(a.as_i64()? % bb))
        }
        Builtin::Coalesce => {
            for a in args {
                let x = eval(a, row, ctx)?;
                if !x.is_null() {
                    return Ok(x);
                }
            }
            Ok(Datum::Null)
        }
        Builtin::NullIf => {
            arity(2)?;
            let (a, b) = (v(0)?, v(1)?);
            if a.sql_cmp(&b) == Some(Ordering::Equal) {
                Ok(Datum::Null)
            } else {
                Ok(a)
            }
        }
        Builtin::Greatest | Builtin::Least => {
            let mut best: Option<Datum> = None;
            for a in args {
                let x = eval(a, row, ctx)?;
                if x.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => x,
                    Some(b) => {
                        let keep_new = match (f, x.sql_cmp(&b)) {
                            (Builtin::Greatest, Some(Ordering::Greater)) => true,
                            (Builtin::Least, Some(Ordering::Less)) => true,
                            _ => false,
                        };
                        if keep_new {
                            x
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Datum::Null))
        }
        Builtin::DateTrunc => {
            arity(2)?;
            let field = v(0)?;
            let ts = v(1)?.cast_to(TypeName::Timestamp)?;
            match ts {
                Datum::Null => Ok(Datum::Null),
                Datum::Timestamp(t) => {
                    let out = time::date_trunc(&field.to_text(), t).ok_or_else(|| {
                        PgError::new(
                            ErrorCode::InvalidParameter,
                            format!("unknown date_trunc field {}", field.to_text()),
                        )
                    })?;
                    Ok(Datum::Timestamp(out))
                }
                _ => unreachable!("cast_to Timestamp"),
            }
        }
        Builtin::Extract => {
            arity(2)?;
            let field = v(0)?;
            let ts = v(1)?.cast_to(TypeName::Timestamp)?;
            match ts {
                Datum::Null => Ok(Datum::Null),
                Datum::Timestamp(t) => {
                    let out = time::extract(&field.to_text(), t).ok_or_else(|| {
                        PgError::new(
                            ErrorCode::InvalidParameter,
                            format!("unknown extract field {}", field.to_text()),
                        )
                    })?;
                    Ok(Datum::Float(out))
                }
                _ => unreachable!("cast_to Timestamp"),
            }
        }
        Builtin::DateAddDays => {
            arity(2)?;
            let ts = v(0)?.cast_to(TypeName::Timestamp)?;
            let days = v(1)?;
            match (ts, days) {
                (Datum::Timestamp(t), Datum::Int(d)) => {
                    Ok(Datum::Timestamp(t + d * time::MICROS_PER_DAY))
                }
                _ => Ok(Datum::Null),
            }
        }
        Builtin::DateAddMonths => {
            arity(2)?;
            let ts = v(0)?.cast_to(TypeName::Timestamp)?;
            let months = v(1)?;
            match (ts, months) {
                (Datum::Timestamp(t), Datum::Int(m)) => Ok(Datum::Timestamp(time::add_months(t, m))),
                _ => Ok(Datum::Null),
            }
        }
        Builtin::JsonbArrayLength => {
            arity(1)?;
            match v(0)? {
                Datum::Null => Ok(Datum::Null),
                Datum::Json(j) => j
                    .array_len()
                    .map(|n| Datum::Int(n as i64))
                    .ok_or_else(|| {
                        PgError::new(
                            ErrorCode::InvalidParameter,
                            "cannot get array length of a non-array",
                        )
                    }),
                other => Err(PgError::new(
                    ErrorCode::InvalidText,
                    format!("jsonb_array_length on non-json {}", other.to_text()),
                )),
            }
        }
        Builtin::JsonbPathQueryArray => {
            arity(2)?;
            let doc = v(0)?;
            let path = v(1)?;
            match (doc, path) {
                (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                (Datum::Json(j), p) => {
                    let hits = j.path_query(&p.to_text())?;
                    Ok(Datum::Json(Json::Array(hits.into_iter().cloned().collect())))
                }
                (other, _) => Err(PgError::new(
                    ErrorCode::InvalidText,
                    format!("jsonb_path_query_array on non-json {}", other.to_text()),
                )),
            }
        }
        Builtin::JsonbTypeof => {
            arity(1)?;
            match v(0)? {
                Datum::Null => Ok(Datum::Null),
                Datum::Json(j) => Ok(Datum::Text(
                    match j {
                        Json::Null => "null",
                        Json::Bool(_) => "boolean",
                        Json::Number(_) => "number",
                        Json::String(_) => "string",
                        Json::Array(_) => "array",
                        Json::Object(_) => "object",
                    }
                    .to_string(),
                )),
                other => Err(PgError::new(
                    ErrorCode::InvalidText,
                    format!("jsonb_typeof on non-json {}", other.to_text()),
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlparse::parse_expr;

    fn scope() -> RowScope {
        RowScope::of_table(
            "t",
            &["a".to_string(), "b".to_string(), "name".to_string(), "data".to_string()],
        )
    }

    fn run(src: &str, row: &Row) -> Datum {
        let e = parse_expr(src).unwrap();
        let b = bind(&e, &scope(), &[]).unwrap();
        eval(&b, row, &EvalCtx::default()).unwrap()
    }

    fn sample_row() -> Row {
        vec![
            Datum::Int(10),
            Datum::Float(2.5),
            Datum::from_text("Hello"),
            Datum::Json(Json::parse(r#"{"k": "v", "xs": [1, 2, 3]}"#).unwrap()),
        ]
    }

    #[test]
    fn arithmetic_and_precedence() {
        let r = sample_row();
        assert_eq!(run("a + 5", &r), Datum::Int(15));
        assert_eq!(run("a * b", &r), Datum::Float(25.0));
        assert_eq!(run("1 + 2 * 3", &r), Datum::Int(7));
        assert_eq!(run("a / 3", &r), Datum::Int(3));
        assert_eq!(run("a / 4.0", &r), Datum::Float(2.5));
        assert_eq!(run("a % 3", &r), Datum::Int(1));
        assert_eq!(run("-a", &r), Datum::Int(-10));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = parse_expr("a / 0").unwrap();
        let b = bind(&e, &scope(), &[]).unwrap();
        let err = eval(&b, &sample_row(), &EvalCtx::default()).unwrap_err();
        assert_eq!(err.code, ErrorCode::DivisionByZero);
    }

    #[test]
    fn three_valued_logic() {
        let r = vec![Datum::Null, Datum::Bool(true), Datum::Null, Datum::Null];
        assert_eq!(run("a = 1", &r), Datum::Null);
        assert_eq!(run("a = 1 AND false", &r), Datum::Bool(false));
        assert_eq!(run("a = 1 OR true", &r), Datum::Bool(true));
        assert_eq!(run("a = 1 OR false", &r), Datum::Null);
        assert_eq!(run("a IS NULL", &r), Datum::Bool(true));
        assert_eq!(run("a IS NOT NULL", &r), Datum::Bool(false));
        assert_eq!(run("NOT (a = 1)", &r), Datum::Null);
    }

    #[test]
    fn in_list_with_nulls() {
        let r = sample_row();
        assert_eq!(run("a IN (1, 10, 3)", &r), Datum::Bool(true));
        assert_eq!(run("a IN (1, 2)", &r), Datum::Bool(false));
        assert_eq!(run("a IN (1, NULL)", &r), Datum::Null);
        assert_eq!(run("a NOT IN (1, 2)", &r), Datum::Bool(true));
    }

    #[test]
    fn between_and_like() {
        let r = sample_row();
        assert_eq!(run("a BETWEEN 5 AND 15", &r), Datum::Bool(true));
        assert_eq!(run("a NOT BETWEEN 5 AND 15", &r), Datum::Bool(false));
        assert_eq!(run("name LIKE 'He%'", &r), Datum::Bool(true));
        assert_eq!(run("name LIKE 'he%'", &r), Datum::Bool(false));
        assert_eq!(run("name ILIKE 'he%'", &r), Datum::Bool(true));
        assert_eq!(run("name NOT LIKE '%z%'", &r), Datum::Bool(true));
    }

    #[test]
    fn case_expressions() {
        let r = sample_row();
        assert_eq!(
            run("CASE WHEN a > 5 THEN 'big' ELSE 'small' END", &r),
            Datum::from_text("big")
        );
        assert_eq!(run("CASE a WHEN 10 THEN 1 WHEN 20 THEN 2 END", &r), Datum::Int(1));
        assert_eq!(run("CASE a WHEN 99 THEN 1 END", &r), Datum::Null);
        // lazy: the ELSE branch's division never runs
        assert_eq!(run("CASE WHEN a = 10 THEN 1 ELSE a / 0 END", &r), Datum::Int(1));
    }

    #[test]
    fn json_operators() {
        let r = sample_row();
        assert_eq!(run("data->>'k'", &r), Datum::from_text("v"));
        assert_eq!(run("jsonb_array_length(data->'xs')", &r), Datum::Int(3));
        assert_eq!(run("data->'xs'->1", &r), Datum::Json(Json::Number(2.0)));
        assert_eq!(run("data->>'missing'", &r), Datum::Null);
        assert_eq!(
            run("jsonb_path_query_array(data, '$.xs[*]')", &r),
            Datum::Json(Json::parse("[1,2,3]").unwrap())
        );
    }

    #[test]
    fn string_functions() {
        let r = sample_row();
        assert_eq!(run("lower(name)", &r), Datum::from_text("hello"));
        assert_eq!(run("upper(name)", &r), Datum::from_text("HELLO"));
        assert_eq!(run("length(name)", &r), Datum::Int(5));
        assert_eq!(run("substr(name, 2, 3)", &r), Datum::from_text("ell"));
        assert_eq!(run("name || ' world'", &r), Datum::from_text("Hello world"));
        assert_eq!(run("replace(name, 'l', 'L')", &r), Datum::from_text("HeLLo"));
        assert_eq!(run("position('ll', name)", &r), Datum::Int(3));
        let md5 = run("md5(name)", &r);
        assert_eq!(md5.to_text().len(), 32);
    }

    #[test]
    fn null_propagation_in_functions() {
        let r = vec![Datum::Null, Datum::Null, Datum::Null, Datum::Null];
        assert_eq!(run("lower(name)", &r), Datum::Null);
        assert_eq!(run("coalesce(a, b, 7)", &r), Datum::Int(7));
        assert_eq!(run("nullif(5, 5)", &r), Datum::Null);
        assert_eq!(run("nullif(5, 6)", &r), Datum::Int(5));
        assert_eq!(run("greatest(a, 3, 9)", &r), Datum::Int(9));
        assert_eq!(run("least(4, 2, a)", &r), Datum::Int(2));
    }

    #[test]
    fn date_functions() {
        let r = sample_row();
        assert_eq!(
            run("extract(year FROM '2020-03-15'::timestamp)", &r),
            Datum::Float(2020.0)
        );
        assert_eq!(
            run("date_trunc('month', '2020-03-15'::timestamp)", &r),
            Datum::Timestamp(time::parse_timestamp("2020-03-01").unwrap())
        );
        assert_eq!(
            run("date_add_months('1994-01-01'::timestamp, 3)", &r),
            Datum::Timestamp(time::parse_timestamp("1994-04-01").unwrap())
        );
        assert_eq!(
            run("'2020-01-01'::timestamp + 31", &r),
            Datum::Timestamp(time::parse_timestamp("2020-02-01").unwrap())
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let e = parse_expr("random()").unwrap();
        let b = bind(&e, &scope(), &[]).unwrap();
        let c1 = EvalCtx::new(7, 0);
        let c2 = EvalCtx::new(7, 0);
        let v1 = eval(&b, &sample_row(), &c1).unwrap();
        let v2 = eval(&b, &sample_row(), &c2).unwrap();
        assert_eq!(v1, v2);
        let v3 = eval(&b, &sample_row(), &c1).unwrap();
        assert_ne!(v1, v3, "successive draws differ");
        let x = v1.as_f64().unwrap();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn params_bind() {
        let e = parse_expr("a + $1").unwrap();
        let b = bind(&e, &scope(), &[Datum::Int(32)]).unwrap();
        assert_eq!(eval(&b, &sample_row(), &EvalCtx::default()).unwrap(), Datum::Int(42));
        assert!(bind(&e, &scope(), &[]).is_err());
    }

    #[test]
    fn unknown_column_and_function() {
        let e = parse_expr("nope + 1").unwrap();
        assert_eq!(bind(&e, &scope(), &[]).unwrap_err().code, ErrorCode::UndefinedColumn);
        let e = parse_expr("frobnicate(a)").unwrap();
        assert!(bind(&e, &scope(), &[]).is_err());
    }

    #[test]
    fn ambiguous_column() {
        let s = RowScope {
            cols: vec![ColumnRef::new(Some("x"), "id"), ColumnRef::new(Some("y"), "id")],
        };
        assert!(s.resolve(None, "id").is_err());
        assert_eq!(s.resolve(Some("y"), "id").unwrap(), 1);
    }

    #[test]
    fn constness() {
        let s = scope();
        let c = bind(&parse_expr("1 + 2 * length('ab')").unwrap(), &s, &[]).unwrap();
        assert!(c.is_const());
        let nc = bind(&parse_expr("a + 1").unwrap(), &s, &[]).unwrap();
        assert!(!nc.is_const());
        let rnd = bind(&parse_expr("random()").unwrap(), &s, &[]).unwrap();
        assert!(!rnd.is_const(), "volatile functions are not const");
    }
}
