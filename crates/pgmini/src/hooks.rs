//! Extension hooks — the §3.1 surface of the paper.
//!
//! A PostgreSQL extension changes engine behaviour through a fixed set of
//! hook points; pgmini exposes the same ones the paper lists Citus using:
//!
//! * **planner hook** — intercept SELECT/DML before local planning;
//! * **utility hook** — intercept DDL, COPY, and other non-planned commands;
//! * **transaction callbacks** — pre-commit / post-commit / abort, used for
//!   two-phase commit orchestration;
//! * **UDFs** — registered on the engine (see `Engine::register_udf`), used
//!   for metadata manipulation and remote procedure calls;
//! * **background workers** — see [`crate::bgworker`].
//!
//! pgmini itself has zero knowledge of the distributed layer: the `citrus`
//! crate installs an implementation of [`Extension`] and takes over from
//! there, exactly as the real extension does.

use crate::error::PgResult;
use crate::session::{QueryResult, Session};
use sqlparse::ast::Statement;

/// An installed extension. All methods default to "not handled".
pub trait Extension: Send + Sync {
    /// Offered every SELECT/INSERT/UPDATE/DELETE before local planning.
    /// Return `Some(result)` to fully handle the statement.
    fn planner_hook(
        &self,
        _session: &mut Session,
        _stmt: &Statement,
    ) -> Option<PgResult<QueryResult>> {
        None
    }

    /// Offered every utility statement (DDL, COPY, TRUNCATE, VACUUM, SET)
    /// before built-in processing.
    fn utility_hook(
        &self,
        _session: &mut Session,
        _stmt: &Statement,
    ) -> Option<PgResult<QueryResult>> {
        None
    }

    /// Called inside COMMIT, before the local transaction commits. Returning
    /// an error aborts the local transaction (this is where 2PC prepares
    /// remote transactions and writes commit records).
    fn pre_commit(&self, _session: &mut Session) -> PgResult<()> {
        Ok(())
    }

    /// Called after the local transaction committed durably.
    fn post_commit(&self, _session: &mut Session) {}

    /// Called after the local transaction aborted.
    fn post_abort(&self, _session: &mut Session) {}
}

/// Hook registry on an engine. A single extension slot is sufficient here
/// (the paper notes Citus and TimescaleDB conflict over hooks — a real
/// chain exists in PostgreSQL but one extension is all we install).
#[derive(Default)]
pub struct Hooks {
    extension: parking_lot::RwLock<Option<std::sync::Arc<dyn Extension>>>,
}

impl Hooks {
    pub fn install(&self, ext: std::sync::Arc<dyn Extension>) {
        *self.extension.write() = Some(ext);
    }

    pub fn installed(&self) -> Option<std::sync::Arc<dyn Extension>> {
        self.extension.read().clone()
    }

    pub fn is_installed(&self) -> bool {
        self.extension.read().is_some()
    }
}
