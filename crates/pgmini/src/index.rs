//! Index storage: B-tree (equality/range) and trigram GIN (substring search,
//! the pg_trgm stand-in). Index entries point at stable row ids; scans
//! re-check visibility and key match against the heap, so stale entries are
//! harmless until vacuum removes them.

use crate::types::{text_ops, Datum, SortKey};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// B-tree over (possibly multi-column) keys.
#[derive(Default)]
pub struct BTreeIndex {
    map: RwLock<BTreeMap<SortKey, Vec<u64>>>,
    entries: std::sync::atomic::AtomicU64,
}

impl BTreeIndex {
    pub fn insert(&self, key: Vec<Datum>, row_id: u64) {
        let mut m = self.map.write();
        m.entry(SortKey(key)).or_default().push(row_id);
        self.entries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn remove(&self, key: &[Datum], row_id: u64) {
        let mut m = self.map.write();
        let k = SortKey(key.to_vec());
        if let Some(ids) = m.get_mut(&k) {
            if let Some(pos) = ids.iter().position(|&id| id == row_id) {
                ids.swap_remove(pos);
                self.entries.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
            }
            if ids.is_empty() {
                m.remove(&k);
            }
        }
    }

    /// Row ids with exactly this key.
    pub fn get_eq(&self, key: &[Datum]) -> Vec<u64> {
        self.map.read().get(&SortKey(key.to_vec())).cloned().unwrap_or_default()
    }

    /// Row ids whose *first key column* falls in the given bounds; used for
    /// single-column range predicates.
    pub fn range_first_col(
        &self,
        low: Option<(&Datum, bool)>,
        high: Option<(&Datum, bool)>,
    ) -> Vec<u64> {
        let m = self.map.read();
        let lo: Bound<SortKey> = match low {
            None => Bound::Unbounded,
            Some((d, incl)) => {
                let k = SortKey(vec![d.clone()]);
                if incl {
                    Bound::Included(k)
                } else {
                    // exclusive low on a prefix: still Included on the prefix,
                    // filtered below for multi-column keys
                    Bound::Included(k)
                }
            }
        };
        let mut out = Vec::new();
        for (k, ids) in m.range((lo, Bound::Unbounded)) {
            let first = &k.0[0];
            if let Some((d, incl)) = low {
                match first.total_cmp(d) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal if !incl => continue,
                    _ => {}
                }
            }
            if let Some((d, incl)) = high {
                match first.total_cmp(d) {
                    std::cmp::Ordering::Greater => break,
                    std::cmp::Ordering::Equal if !incl => break,
                    _ => {}
                }
            }
            if first.is_null() {
                break; // NULLs sort last; a range never matches them
            }
            out.extend_from_slice(ids);
        }
        out
    }

    /// Row ids matching a key prefix (leading columns equal).
    pub fn get_prefix(&self, prefix: &[Datum]) -> Vec<u64> {
        let m = self.map.read();
        let lo = SortKey(prefix.to_vec());
        let mut out = Vec::new();
        for (k, ids) in m.range(lo..) {
            if k.0.len() < prefix.len()
                || k.0[..prefix.len()]
                    .iter()
                    .zip(prefix)
                    .any(|(a, b)| a.total_cmp(b) != std::cmp::Ordering::Equal)
            {
                break;
            }
            out.extend_from_slice(ids);
        }
        out
    }

    /// All row ids in key order (index-ordered scans).
    pub fn scan_ordered(&self) -> Vec<u64> {
        let m = self.map.read();
        m.values().flatten().copied().collect()
    }

    pub fn len(&self) -> u64 {
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated depth of the equivalent on-disk B-tree (page-touch math).
    pub fn sim_depth(&self) -> u64 {
        // ~256 entries per page
        let n = self.len().max(1);
        (n as f64).log(256.0).ceil().max(1.0) as u64
    }
}

/// Trigram GIN index over one text expression.
#[derive(Default)]
pub struct GinIndex {
    postings: RwLock<HashMap<[char; 3], HashSet<u64>>>,
    entries: std::sync::atomic::AtomicU64,
}

impl GinIndex {
    pub fn insert(&self, text: &str, row_id: u64) {
        let mut p = self.postings.write();
        for g in text_ops::trigrams(text) {
            p.entry(g).or_default().insert(row_id);
        }
        self.entries.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn remove(&self, text: &str, row_id: u64) {
        let mut p = self.postings.write();
        for g in text_ops::trigrams(text) {
            if let Some(set) = p.get_mut(&g) {
                set.remove(&row_id);
                if set.is_empty() {
                    p.remove(&g);
                }
            }
        }
        self.entries.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Candidate row ids for a LIKE/ILIKE pattern: the intersection of the
    /// posting lists of the pattern's required trigrams. `None` means the
    /// pattern is too short to prune with — caller falls back to a seq scan.
    /// Candidates must still be re-checked against the actual pattern.
    pub fn candidates_for_like(&self, pattern: &str) -> Option<Vec<u64>> {
        let required = text_ops::required_trigrams_for_like(pattern)?;
        let p = self.postings.read();
        let mut iter = required.iter();
        let first = iter.next()?;
        let mut acc: HashSet<u64> = p.get(first).cloned().unwrap_or_default();
        for g in iter {
            match p.get(g) {
                None => return Some(Vec::new()),
                Some(set) => acc.retain(|id| set.contains(id)),
            }
            if acc.is_empty() {
                return Some(Vec::new());
            }
        }
        let mut v: Vec<u64> = acc.into_iter().collect();
        v.sort_unstable();
        Some(v)
    }

    pub fn len(&self) -> u64 {
        self.entries.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// GIN maintenance is the expensive part of ingest with trigram indexes;
    /// expose the posting count so the cost model can charge for it.
    pub fn posting_count(&self) -> u64 {
        self.postings.read().len() as u64
    }
}

/// The storage half of one index.
pub enum IndexStore {
    BTree(BTreeIndex),
    Gin(GinIndex),
}

impl IndexStore {
    pub fn len(&self) -> u64 {
        match self {
            IndexStore::BTree(b) => b.len(),
            IndexStore::Gin(g) => g.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btree_eq_and_remove() {
        let idx = BTreeIndex::default();
        idx.insert(vec![Datum::Int(5)], 100);
        idx.insert(vec![Datum::Int(5)], 101);
        idx.insert(vec![Datum::Int(7)], 102);
        let mut ids = idx.get_eq(&[Datum::Int(5)]);
        ids.sort();
        assert_eq!(ids, vec![100, 101]);
        idx.remove(&[Datum::Int(5)], 100);
        assert_eq!(idx.get_eq(&[Datum::Int(5)]), vec![101]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn btree_range_bounds() {
        let idx = BTreeIndex::default();
        for i in 0..10 {
            idx.insert(vec![Datum::Int(i)], i as u64);
        }
        let lo = Datum::Int(3);
        let hi = Datum::Int(6);
        let ids = idx.range_first_col(Some((&lo, true)), Some((&hi, true)));
        assert_eq!(ids, vec![3, 4, 5, 6]);
        let ids = idx.range_first_col(Some((&lo, false)), Some((&hi, false)));
        assert_eq!(ids, vec![4, 5]);
        let ids = idx.range_first_col(None, Some((&lo, true)));
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let ids = idx.range_first_col(Some((&hi, true)), None);
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn btree_range_skips_nulls() {
        let idx = BTreeIndex::default();
        idx.insert(vec![Datum::Int(1)], 1);
        idx.insert(vec![Datum::Null], 2);
        let lo = Datum::Int(0);
        assert_eq!(idx.range_first_col(Some((&lo, true)), None), vec![1]);
    }

    #[test]
    fn btree_composite_prefix() {
        let idx = BTreeIndex::default();
        idx.insert(vec![Datum::Int(1), Datum::Int(10)], 1);
        idx.insert(vec![Datum::Int(1), Datum::Int(20)], 2);
        idx.insert(vec![Datum::Int(2), Datum::Int(10)], 3);
        assert_eq!(idx.get_prefix(&[Datum::Int(1)]), vec![1, 2]);
        assert_eq!(idx.get_eq(&[Datum::Int(1), Datum::Int(20)]), vec![2]);
        assert!(idx.get_prefix(&[Datum::Int(3)]).is_empty());
    }

    #[test]
    fn btree_ordered_scan() {
        let idx = BTreeIndex::default();
        idx.insert(vec![Datum::Int(3)], 30);
        idx.insert(vec![Datum::Int(1)], 10);
        idx.insert(vec![Datum::Int(2)], 20);
        assert_eq!(idx.scan_ordered(), vec![10, 20, 30]);
    }

    #[test]
    fn gin_like_candidates() {
        let idx = GinIndex::default();
        idx.insert("fix postgres planner bug", 1);
        idx.insert("update docs", 2);
        idx.insert("postgresql is great", 3);
        let c = idx.candidates_for_like("%postgres%").unwrap();
        assert_eq!(c, vec![1, 3]);
        // short patterns cannot prune
        assert!(idx.candidates_for_like("%pg%").is_none());
        // no matches
        assert_eq!(idx.candidates_for_like("%zzzyyy%").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn gin_remove() {
        let idx = GinIndex::default();
        idx.insert("hello world", 1);
        idx.insert("hello there", 2);
        idx.remove("hello world", 1);
        assert_eq!(idx.candidates_for_like("%hello%").unwrap(), vec![2]);
        assert_eq!(idx.candidates_for_like("%world%").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn sim_depth_grows_slowly() {
        let idx = BTreeIndex::default();
        assert_eq!(idx.sim_depth(), 1);
        for i in 0..1000 {
            idx.insert(vec![Datum::Int(i)], i as u64);
        }
        assert!(idx.sim_depth() >= 2);
        assert!(idx.sim_depth() <= 3);
    }
}
