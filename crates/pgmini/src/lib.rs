//! pgmini: a single-node MVCC SQL engine — the PostgreSQL stand-in substrate
//! for the citrus reproduction of the Citus paper (SIGMOD 2021).
//!
//! Feature inventory (each maps to a PostgreSQL capability the paper's
//! distributed layer depends on):
//!
//! * MVCC heap storage with snapshots, row versioning, and vacuum;
//! * B-tree and trigram-GIN indexes (incl. expression and partial indexes);
//! * columnar storage for analytical tables;
//! * write-ahead log with restore points, byte encoding, and replay;
//! * blocking lock manager with a queryable wait-for graph;
//! * transactions with `PREPARE TRANSACTION` / `COMMIT PREPARED` (2PC halves);
//! * a volcano-style executor over the shared `sqlparse` ASTs;
//! * extension hooks (planner, utility, transaction callbacks, UDFs,
//!   background workers) — the exact surface the Citus paper describes in
//!   §3.1, through which the `citrus` crate changes engine behaviour without
//!   the engine knowing about it;
//! * a simulated buffer pool + cost model producing virtual-time measurements.

pub mod batch;
pub mod bgworker;
pub mod buffer;
pub mod catalog;
pub mod cost;
pub mod dml;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod hooks;
pub mod lock;
pub mod plan;
pub mod session;
pub mod storage;
pub mod txn;
pub mod types;
pub mod wal;

pub use engine::{Engine, EngineConfig};
pub use error::{ErrorCode, PgError, PgResult};
pub use session::{QueryResult, Session};
pub use types::{Datum, Json, Row};
