//! Lock manager: blocking table and row locks with a queryable wait-for
//! graph.
//!
//! Local (single-engine) deadlocks are detected here, like PostgreSQL's
//! deadlock checker: a waiter that has been blocked longer than
//! `deadlock_timeout` searches the local wait-for graph for a cycle through
//! itself. *Distributed* deadlocks produce no local cycle — each engine sees
//! only a path — so this module also exports [`LockManager::wait_edges`],
//! which the distributed layer's detection daemon polls and merges by
//! distributed transaction id (§3.7.3 of the paper).

use crate::catalog::TableId;
use crate::error::{ErrorCode, PgError, PgResult};
use crate::txn::Xid;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lock modes. `Shared` conflicts only with `Exclusive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

impl LockMode {
    fn conflicts(self, other: LockMode) -> bool {
        matches!(
            (self, other),
            (LockMode::Exclusive, _) | (_, LockMode::Exclusive)
        )
    }
}

/// What is being locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKey {
    Table(TableId),
    /// A logical row, identified by its stable row id (shared by all MVCC
    /// versions of the row).
    Row(TableId, u64),
}

/// Distributed transaction identity, assigned by a coordinator and attached
/// to worker transactions so lock-graph nodes can be merged across engines.
/// Mirrors Citus's `(origin node, transaction number, timestamp)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistTxnId {
    pub origin_node: u32,
    pub number: u64,
    /// Logical start time; "youngest transaction in the cycle" compares this.
    pub timestamp: u64,
}

/// Why a backend was cancelled (stored in the shared cancel flag).
pub const CANCEL_NONE: u8 = 0;
pub const CANCEL_QUERY: u8 = 1;
pub const CANCEL_DEADLOCK: u8 = 2;
/// The transaction was force-aborted by a metadata fence (its locks are
/// already released); the session surfaces a retryable serialization failure.
pub const CANCEL_FENCE: u8 = 3;

/// Shared per-session cancellation flag.
pub type CancelFlag = Arc<AtomicU8>;

/// One edge of the wait-for graph: `waiter` is blocked on `holder`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    pub waiter: Xid,
    pub holder: Xid,
    pub waiter_dist: Option<DistTxnId>,
    pub holder_dist: Option<DistTxnId>,
    /// How long the waiter has been blocked (the distributed detector's
    /// bounded-wait tier compares this against `deadlock_timeout`).
    pub waited: Duration,
}

/// One held lock, as surfaced by [`LockManager::lock_report`]: the
/// per-worker report the distributed layer merges into the coordinator's
/// wait graph so it can see purely-local (MX fast path) lock holders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockHolder {
    pub key: LockKey,
    pub xid: Xid,
    pub mode: LockMode,
    /// `None` means the holder is invisible to distributed-id graph merging.
    pub dist: Option<DistTxnId>,
}

#[derive(Debug, Default)]
struct LockEntry {
    holders: Vec<(Xid, LockMode)>,
    /// Waiting (xid, mode) pairs, in arrival order.
    waiters: Vec<(Xid, LockMode)>,
}

#[derive(Default)]
struct LockState {
    locks: HashMap<LockKey, LockEntry>,
    held: HashMap<Xid, Vec<LockKey>>,
    /// xid → the key it is currently blocked on.
    waiting_on: HashMap<Xid, LockKey>,
    /// xid → when it started blocking (drives `WaitEdge::waited`).
    waiting_since: HashMap<Xid, std::time::Instant>,
    cancel: HashMap<Xid, CancelFlag>,
    dist: HashMap<Xid, DistTxnId>,
}

impl LockState {
    /// Can `xid` acquire `mode` on the entry right now?
    fn grantable(&self, entry: &LockEntry, xid: Xid, mode: LockMode) -> bool {
        entry
            .holders
            .iter()
            .all(|&(h, hmode)| h == xid || !mode.conflicts(hmode))
    }

    /// Holders of `key` that conflict with `xid` wanting `mode`.
    fn conflicting_holders(&self, key: &LockKey, xid: Xid, mode: LockMode) -> Vec<Xid> {
        self.locks
            .get(key)
            .map(|e| {
                e.holders
                    .iter()
                    .filter(|&&(h, hmode)| h != xid && mode.conflicts(hmode))
                    .map(|&(h, _)| h)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Local wait-for edges (waiter → each conflicting holder).
    fn edges(&self) -> Vec<WaitEdge> {
        let mut out = Vec::new();
        for (&waiter, key) in &self.waiting_on {
            let mode = self
                .locks
                .get(key)
                .and_then(|e| e.waiters.iter().find(|&&(x, _)| x == waiter).map(|&(_, m)| m))
                .unwrap_or(LockMode::Exclusive);
            let waited = self
                .waiting_since
                .get(&waiter)
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO);
            for holder in self.conflicting_holders(key, waiter, mode) {
                out.push(WaitEdge {
                    waiter,
                    holder,
                    waiter_dist: self.dist.get(&waiter).copied(),
                    holder_dist: self.dist.get(&holder).copied(),
                    waited,
                });
            }
        }
        out
    }

    /// Does the local wait-for graph contain a cycle through `start`?
    fn local_cycle_through(&self, start: Xid) -> bool {
        // DFS over waiter→holder edges
        let edges = self.edges();
        let mut adj: HashMap<Xid, Vec<Xid>> = HashMap::new();
        for e in &edges {
            adj.entry(e.waiter).or_default().push(e.holder);
        }
        let mut stack = vec![start];
        let mut seen = std::collections::HashSet::new();
        while let Some(x) = stack.pop() {
            for &next in adj.get(&x).map(Vec::as_slice).unwrap_or(&[]) {
                if next == start {
                    return true;
                }
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    }
}

/// Engine-wide lock manager.
pub struct LockManager {
    state: Mutex<LockState>,
    cond: Condvar,
    /// How long a waiter blocks before running local deadlock detection.
    pub deadlock_timeout: Duration,
    /// Optional hard cap on lock waits (None = wait forever).
    pub lock_timeout: Option<Duration>,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager {
            state: Mutex::new(LockState::default()),
            cond: Condvar::new(),
            deadlock_timeout: Duration::from_millis(50),
            lock_timeout: None,
        }
    }
}

impl LockManager {
    /// Register a transaction's cancel flag (and optional distributed id) so
    /// it can be cancelled while blocked.
    pub fn register_txn(&self, xid: Xid, cancel: CancelFlag, dist: Option<DistTxnId>) {
        let mut s = self.state.lock();
        s.cancel.insert(xid, cancel);
        if let Some(d) = dist {
            s.dist.insert(xid, d);
        }
    }

    /// Attach a distributed transaction id after the fact (the
    /// `assign_distributed_transaction_id` UDF path).
    pub fn assign_dist_id(&self, xid: Xid, dist: DistTxnId) {
        self.state.lock().dist.insert(xid, dist);
    }

    /// Acquire `mode` on `key` for `xid`, blocking until granted.
    ///
    /// Errors with `DeadlockDetected` if a local cycle forms, or if the
    /// transaction's cancel flag is raised while waiting (the distributed
    /// deadlock detector's kill path).
    pub fn acquire(&self, xid: Xid, key: LockKey, mode: LockMode) -> PgResult<()> {
        let mut s = self.state.lock();
        // fast path incl. reentrant acquisition
        if let Some(entry) = s.locks.get(&key) {
            if let Some(&(_, held)) = entry.holders.iter().find(|&&(h, _)| h == xid) {
                if held == LockMode::Exclusive || mode == LockMode::Shared {
                    return Ok(());
                }
                // shared → exclusive upgrade handled below
            }
        }
        s.locks.entry(key).or_default();
        let can_grant = {
            let entry = s.locks.get(&key).expect("just inserted");
            s.grantable(entry, xid, mode)
        };
        if can_grant {
            let entry = s.locks.get_mut(&key).expect("present");
            upgrade_or_add(entry, xid, mode);
            s.held.entry(xid).or_default().push(key);
            return Ok(());
        }
        // slow path: enqueue and wait
        s.locks.get_mut(&key).expect("present").waiters.push((xid, mode));
        s.waiting_on.insert(xid, key);
        s.waiting_since.insert(xid, std::time::Instant::now());
        let cancel = s.cancel.get(&xid).cloned();
        let started = std::time::Instant::now();
        let mut deadlock_checked = false;
        loop {
            self.cond.wait_for(&mut s, Duration::from_millis(5));
            // cancellation (distributed deadlock detector or user)
            if let Some(flag) = &cancel {
                match flag.load(Ordering::SeqCst) {
                    CANCEL_NONE => {}
                    reason => {
                        self.remove_waiter(&mut s, xid, key);
                        flag.store(CANCEL_NONE, Ordering::SeqCst);
                        return Err(match reason {
                            CANCEL_DEADLOCK => PgError::new(
                                ErrorCode::DeadlockDetected,
                                "canceling the transaction since it was involved in a \
                                 distributed deadlock",
                            ),
                            CANCEL_FENCE => PgError::new(
                                ErrorCode::SerializationFailure,
                                "canceling statement due to a conflicting metadata change",
                            ),
                            _ => PgError::new(
                                ErrorCode::QueryCanceled,
                                "canceling statement due to user request",
                            ),
                        });
                    }
                }
            }
            // grant?
            let grantable = s
                .locks
                .get(&key)
                .map(|e| s.grantable(e, xid, mode))
                .unwrap_or(true);
            if grantable {
                let entry = s.locks.entry(key).or_default();
                entry.waiters.retain(|&(x, _)| x != xid);
                upgrade_or_add(entry, xid, mode);
                s.waiting_on.remove(&xid);
                s.waiting_since.remove(&xid);
                s.held.entry(xid).or_default().push(key);
                return Ok(());
            }
            // local deadlock detection after deadlock_timeout
            if !deadlock_checked && started.elapsed() >= self.deadlock_timeout {
                deadlock_checked = true;
                if s.local_cycle_through(xid) {
                    self.remove_waiter(&mut s, xid, key);
                    return Err(PgError::new(ErrorCode::DeadlockDetected, "deadlock detected"));
                }
            }
            if let Some(cap) = self.lock_timeout {
                if started.elapsed() >= cap {
                    self.remove_waiter(&mut s, xid, key);
                    return Err(PgError::new(
                        ErrorCode::QueryCanceled,
                        "canceling statement due to lock timeout",
                    ));
                }
            }
        }
    }

    fn remove_waiter(&self, s: &mut LockState, xid: Xid, key: LockKey) {
        if let Some(e) = s.locks.get_mut(&key) {
            e.waiters.retain(|&(x, _)| x != xid);
        }
        s.waiting_on.remove(&xid);
        s.waiting_since.remove(&xid);
    }

    /// Release everything `xid` holds (commit, abort, or COMMIT PREPARED).
    pub fn release_all(&self, xid: Xid) {
        let mut s = self.state.lock();
        if let Some(keys) = s.held.remove(&xid) {
            for key in keys {
                if let Some(e) = s.locks.get_mut(&key) {
                    e.holders.retain(|&(h, _)| h != xid);
                    if e.holders.is_empty() && e.waiters.is_empty() {
                        s.locks.remove(&key);
                    }
                }
            }
        }
        s.waiting_on.remove(&xid);
        s.waiting_since.remove(&xid);
        s.cancel.remove(&xid);
        s.dist.remove(&xid);
        self.cond.notify_all();
    }

    /// Transfer lock ownership bookkeeping when a transaction becomes
    /// prepared: locks stay held by the xid; only the cancel flag detaches
    /// (the session moves on).
    pub fn detach_session(&self, xid: Xid) {
        let mut s = self.state.lock();
        s.cancel.remove(&xid);
    }

    /// Snapshot of the wait-for graph (the distributed detector's poll).
    pub fn wait_edges(&self) -> Vec<WaitEdge> {
        self.state.lock().edges()
    }

    /// Cancel the backend running distributed transaction `dist`, marking it
    /// a deadlock victim. Returns true if a matching local txn was found.
    pub fn cancel_dist_txn(&self, dist: DistTxnId) -> bool {
        let s = self.state.lock();
        let mut hit = false;
        for (xid, d) in &s.dist {
            if *d == dist {
                if let Some(flag) = s.cancel.get(xid) {
                    flag.store(CANCEL_DEADLOCK, Ordering::SeqCst);
                    hit = true;
                }
            }
        }
        drop(s);
        self.cond.notify_all();
        hit
    }

    /// Cancel a specific local transaction (user-initiated).
    pub fn cancel_xid(&self, xid: Xid) -> bool {
        let s = self.state.lock();
        let hit = s.cancel.get(&xid).map(|f| {
            f.store(CANCEL_QUERY, Ordering::SeqCst);
        });
        drop(s);
        self.cond.notify_all();
        hit.is_some()
    }

    /// Mark a specific local transaction as a metadata-fence victim: its
    /// next cancel-flag check (blocked acquire or statement boundary) raises
    /// a retryable serialization failure. Returns true when the flag of a
    /// registered transaction was raised.
    pub fn fence_xid(&self, xid: Xid) -> bool {
        let s = self.state.lock();
        let hit = s.cancel.get(&xid).map(|f| {
            f.store(CANCEL_FENCE, Ordering::SeqCst);
        });
        drop(s);
        self.cond.notify_all();
        hit.is_some()
    }

    /// Per-worker lock report: every held lock with its holder's identity.
    /// The distributed layer's fence tier uses this to find purely-local
    /// holders (`dist == None`) that block distributed operations.
    pub fn lock_report(&self) -> Vec<LockHolder> {
        let s = self.state.lock();
        let mut out = Vec::new();
        for (key, entry) in &s.locks {
            for &(xid, mode) in &entry.holders {
                out.push(LockHolder { key: *key, xid, mode, dist: s.dist.get(&xid).copied() });
            }
        }
        out.sort_by_key(|h| h.xid);
        out
    }

    /// Holders of `key` (the targeted flavour of [`Self::lock_report`]).
    pub fn holders_of(&self, key: LockKey) -> Vec<(Xid, Option<DistTxnId>)> {
        let s = self.state.lock();
        s.locks
            .get(&key)
            .map(|e| {
                e.holders
                    .iter()
                    .map(|&(xid, _)| (xid, s.dist.get(&xid).copied()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of transactions currently blocked.
    pub fn waiting_count(&self) -> usize {
        self.state.lock().waiting_on.len()
    }

    /// The distributed id registered for `xid`, if any.
    pub fn dist_id_of(&self, xid: Xid) -> Option<DistTxnId> {
        self.state.lock().dist.get(&xid).copied()
    }
}

fn upgrade_or_add(entry: &mut LockEntry, xid: Xid, mode: LockMode) {
    if let Some(slot) = entry.holders.iter_mut().find(|(h, _)| *h == xid) {
        if mode == LockMode::Exclusive {
            slot.1 = LockMode::Exclusive;
        }
    } else {
        entry.holders.push((xid, mode));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU8;
    use std::thread;

    fn flag() -> CancelFlag {
        Arc::new(AtomicU8::new(CANCEL_NONE))
    }

    const T: TableId = TableId(1);

    #[test]
    fn shared_locks_coexist_exclusive_blocks() {
        let lm = Arc::new(LockManager::default());
        lm.register_txn(1, flag(), None);
        lm.register_txn(2, flag(), None);
        lm.acquire(1, LockKey::Table(T), LockMode::Shared).unwrap();
        lm.acquire(2, LockKey::Table(T), LockMode::Shared).unwrap();
        // exclusive must wait for both
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            lm2.register_txn(3, flag(), None);
            lm2.acquire(3, LockKey::Table(T), LockMode::Exclusive).unwrap();
            lm2.release_all(3);
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(lm.waiting_count(), 1);
        lm.release_all(1);
        lm.release_all(2);
        h.join().unwrap();
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::default();
        lm.register_txn(1, flag(), None);
        lm.acquire(1, LockKey::Row(T, 5), LockMode::Shared).unwrap();
        lm.acquire(1, LockKey::Row(T, 5), LockMode::Shared).unwrap();
        // sole shared holder upgrades immediately
        lm.acquire(1, LockKey::Row(T, 5), LockMode::Exclusive).unwrap();
        // exclusive holder re-acquires freely
        lm.acquire(1, LockKey::Row(T, 5), LockMode::Shared).unwrap();
        lm.release_all(1);
    }

    #[test]
    fn local_deadlock_detected() {
        let lm = Arc::new(LockManager::default());
        lm.register_txn(1, flag(), None);
        lm.register_txn(2, flag(), None);
        lm.acquire(1, LockKey::Row(T, 1), LockMode::Exclusive).unwrap();
        lm.acquire(2, LockKey::Row(T, 2), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            // txn 2 waits for row 1; on deadlock the "abort" releases locks
            let r = lm2.acquire(2, LockKey::Row(T, 1), LockMode::Exclusive);
            lm2.release_all(2);
            r
        });
        thread::sleep(Duration::from_millis(20));
        // txn 1 waits for row 2 → cycle; one of the two must get an error
        let r1 = lm.acquire(1, LockKey::Row(T, 2), LockMode::Exclusive);
        lm.release_all(1);
        let r2 = h.join().unwrap();
        let errs =
            [&r1, &r2].iter().filter(|r| r.is_err()).count();
        assert!(errs >= 1, "deadlock must break: {r1:?} {r2:?}");
        for (i, r) in [r1, r2].into_iter().enumerate() {
            if let Err(e) = r {
                assert_eq!(e.code, ErrorCode::DeadlockDetected, "txn {}", i + 1);
            }
        }
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn wait_edges_expose_graph_with_dist_ids() {
        let lm = Arc::new(LockManager::default());
        let d1 = DistTxnId { origin_node: 1, number: 10, timestamp: 100 };
        lm.register_txn(1, flag(), Some(d1));
        lm.acquire(1, LockKey::Row(T, 9), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            let d2 = DistTxnId { origin_node: 2, number: 11, timestamp: 200 };
            lm2.register_txn(2, flag(), Some(d2));
            let _ = lm2.acquire(2, LockKey::Row(T, 9), LockMode::Exclusive);
            lm2.release_all(2);
        });
        thread::sleep(Duration::from_millis(20));
        let edges = lm.wait_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].waiter, 2);
        assert_eq!(edges[0].holder, 1);
        assert_eq!(edges[0].holder_dist, Some(d1));
        assert!(edges[0].waiter_dist.is_some());
        lm.release_all(1);
        h.join().unwrap();
    }

    #[test]
    fn cancel_dist_txn_wakes_waiter_with_deadlock_error() {
        let lm = Arc::new(LockManager::default());
        lm.register_txn(1, flag(), None);
        lm.acquire(1, LockKey::Row(T, 3), LockMode::Exclusive).unwrap();
        let victim = DistTxnId { origin_node: 7, number: 42, timestamp: 999 };
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            lm2.register_txn(2, flag(), Some(victim));
            lm2.acquire(2, LockKey::Row(T, 3), LockMode::Exclusive)
        });
        thread::sleep(Duration::from_millis(20));
        assert!(lm.cancel_dist_txn(victim));
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlockDetected);
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn lock_timeout_fires() {
        let mut lm = LockManager::default();
        lm.lock_timeout = Some(Duration::from_millis(30));
        let lm = Arc::new(lm);
        lm.register_txn(1, flag(), None);
        lm.acquire(1, LockKey::Row(T, 1), LockMode::Exclusive).unwrap();
        lm.register_txn(2, flag(), None);
        let err = lm.acquire(2, LockKey::Row(T, 1), LockMode::Exclusive).unwrap_err();
        assert_eq!(err.code, ErrorCode::QueryCanceled);
        lm.release_all(1);
    }

    #[test]
    fn fence_xid_wakes_waiter_with_serialization_failure() {
        let lm = Arc::new(LockManager::default());
        lm.register_txn(1, flag(), None);
        lm.acquire(1, LockKey::Row(T, 3), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            lm2.register_txn(2, flag(), None);
            lm2.acquire(2, LockKey::Row(T, 3), LockMode::Exclusive)
        });
        thread::sleep(Duration::from_millis(20));
        assert!(lm.fence_xid(2));
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::SerializationFailure);
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn lock_report_distinguishes_local_and_distributed_holders() {
        let lm = LockManager::default();
        let d = DistTxnId { origin_node: 1, number: 7, timestamp: 70 };
        lm.register_txn(1, flag(), None);
        lm.register_txn(2, flag(), Some(d));
        lm.acquire(1, LockKey::Table(T), LockMode::Shared).unwrap();
        lm.acquire(2, LockKey::Table(T), LockMode::Shared).unwrap();
        let report = lm.lock_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].xid, 1);
        assert_eq!(report[0].dist, None);
        assert_eq!(report[1].xid, 2);
        assert_eq!(report[1].dist, Some(d));
        let holders = lm.holders_of(LockKey::Table(T));
        assert_eq!(holders, vec![(1, None), (2, Some(d))]);
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn wait_edges_carry_wait_age() {
        let lm = Arc::new(LockManager::default());
        lm.register_txn(1, flag(), None);
        lm.acquire(1, LockKey::Row(T, 9), LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = thread::spawn(move || {
            lm2.register_txn(2, flag(), None);
            let _ = lm2.acquire(2, LockKey::Row(T, 9), LockMode::Exclusive);
            lm2.release_all(2);
        });
        thread::sleep(Duration::from_millis(30));
        let edges = lm.wait_edges();
        assert_eq!(edges.len(), 1);
        assert!(edges[0].waited >= Duration::from_millis(10));
        lm.release_all(1);
        h.join().unwrap();
    }

    #[test]
    fn release_unblocks_fifo() {
        let lm = Arc::new(LockManager::default());
        lm.register_txn(1, flag(), None);
        lm.acquire(1, LockKey::Table(T), LockMode::Exclusive).unwrap();
        let mut handles = Vec::new();
        for xid in 2..6 {
            let lm2 = lm.clone();
            handles.push(thread::spawn(move || {
                lm2.register_txn(xid, flag(), None);
                lm2.acquire(xid, LockKey::Table(T), LockMode::Shared).unwrap();
                lm2.release_all(xid);
            }));
        }
        thread::sleep(Duration::from_millis(30));
        lm.release_all(1);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lm.waiting_count(), 0);
    }
}
