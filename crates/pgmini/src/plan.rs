//! Local (single-node) query planning.
//!
//! Produces a [`SelectPlan`] from a parsed SELECT: a FROM/WHERE tree with
//! index access paths chosen per table, an optional aggregation stage, and
//! bound projection/ordering stages. Uncorrelated subqueries are flattened
//! into constants by executing them first (correlated subqueries raise
//! `FeatureNotSupported`, matching the Citus 9.5 limitation the paper
//! reports for 4 of the 22 TPC-H queries).
//!
//! Like PostgreSQL, most of the engine is single-threaded per query; the
//! paper's parallelism comes from the distributed layer fanning out over
//! shards, not from this planner.

use crate::catalog::{IndexId, IndexMethod, TableId, TableMeta};
use crate::error::{ErrorCode, PgError, PgResult};
use crate::expr::{bind, BExpr, ColumnRef, RowScope};
use crate::types::Datum;
use sqlparse::ast::{
    BinaryOp, Expr, FuncCall, JoinKind, Literal, Select, SelectItem, TableRef,
};
use sqlparse::deparse_expr;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggKind {
    pub fn resolve(name: &str, star: bool) -> Option<AggKind> {
        Some(match (name, star) {
            ("count", true) => AggKind::CountStar,
            ("count", false) => AggKind::Count,
            ("sum", false) => AggKind::Sum,
            ("avg", false) => AggKind::Avg,
            ("min", false) => AggKind::Min,
            ("max", false) => AggKind::Max,
            _ => return None,
        })
    }
}

/// One aggregate call, with its argument bound over the raw input scope.
#[derive(Debug, Clone)]
pub struct AggCall {
    pub kind: AggKind,
    pub arg: Option<BExpr>,
    pub distinct: bool,
}

/// How an index is probed.
#[derive(Debug, Clone)]
pub enum IndexProbe {
    /// Equality on a key prefix.
    EqPrefix(Vec<BExpr>),
    /// Range on the first key column: (low, incl), (high, incl).
    Range { low: Option<(BExpr, bool)>, high: Option<(BExpr, bool)> },
    /// Trigram candidates for a LIKE/ILIKE pattern.
    LikePattern { pattern: BExpr, case_insensitive: bool },
}

/// A FROM-tree node with access paths selected.
#[derive(Debug, Clone)]
pub enum PlanNode {
    SeqScan {
        table: TableId,
        /// Residual filter over this table's scope (after index conditions).
        filter: Option<BExpr>,
        /// Table-relative indices of the columns this query actually reads
        /// (filter + join keys + projection/aggregate inputs). `None` means
        /// all columns. Columnar scans materialize only these.
        cols: Option<Vec<usize>>,
    },
    IndexScan {
        table: TableId,
        index: IndexId,
        probe: IndexProbe,
        /// Residual filter, including a re-check of the probe condition.
        filter: Option<BExpr>,
    },
    /// Pre-materialised rows (derived tables / flattened subqueries).
    Materialized { rows: Vec<crate::types::Row>, arity: usize },
    Join {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: JoinKind,
        /// Equi-join keys when a hash join applies.
        hash_keys: Option<(Vec<BExpr>, Vec<BExpr>)>,
        /// Full join condition (bound over left ++ right scope).
        on: Option<BExpr>,
        left_arity: usize,
        right_arity: usize,
    },
    /// Filter applied above a node (non-pushable conjuncts).
    Filter { input: Box<PlanNode>, pred: BExpr },
}

impl PlanNode {
    /// Short structural description for EXPLAIN output.
    pub fn describe(&self, catalog: &crate::catalog::Catalog, out: &mut Vec<String>, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::SeqScan { table, filter, cols } => {
                let name =
                    catalog.table(*table).map(|t| t.name.clone()).unwrap_or_default();
                let f = if filter.is_some() { " (filtered)" } else { "" };
                let c = match cols {
                    Some(c) => format!(" (cols: {})", c.len()),
                    None => String::new(),
                };
                out.push(format!("{pad}Seq Scan on {name}{f}{c}"));
            }
            PlanNode::IndexScan { table, index, probe, .. } => {
                let name =
                    catalog.table(*table).map(|t| t.name.clone()).unwrap_or_default();
                let iname = catalog.index(*index).map(|i| i.name.clone()).unwrap_or_default();
                let kind = match probe {
                    IndexProbe::EqPrefix(_) => "eq",
                    IndexProbe::Range { .. } => "range",
                    IndexProbe::LikePattern { .. } => "trigram",
                };
                out.push(format!("{pad}Index Scan ({kind}) using {iname} on {name}"));
            }
            PlanNode::Materialized { rows, .. } => {
                out.push(format!("{pad}Materialized ({} rows)", rows.len()));
            }
            PlanNode::Join { left, right, kind, hash_keys, .. } => {
                let strat = if hash_keys.is_some() { "Hash" } else { "Nested Loop" };
                out.push(format!("{pad}{strat} {kind:?} Join"));
                left.describe(catalog, out, depth + 1);
                right.describe(catalog, out, depth + 1);
            }
            PlanNode::Filter { input, .. } => {
                out.push(format!("{pad}Filter"));
                input.describe(catalog, out, depth + 1);
            }
        }
    }
}

/// Aggregation stage.
#[derive(Debug, Clone)]
pub struct AggStage {
    /// Group-key expressions, bound over the raw scope.
    pub group: Vec<BExpr>,
    pub calls: Vec<AggCall>,
}

/// A fully-planned SELECT.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    pub input: PlanNode,
    pub raw_scope: RowScope,
    pub agg: Option<AggStage>,
    /// Bound over post-agg scope when `agg` is set, else raw scope.
    pub having: Option<BExpr>,
    /// Output expressions (same scope rule as `having`). Hidden trailing
    /// entries may exist for ORDER BY; `visible` is the real output arity.
    pub projection: Vec<BExpr>,
    pub names: Vec<String>,
    pub visible: usize,
    pub distinct: bool,
    /// (projection index, descending)
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<u64>,
    pub offset: Option<u64>,
    /// FOR UPDATE: lock the returned rows of this single table.
    pub for_update: Option<TableId>,
}

/// Planner services that require execution (subquery flattening). The session
/// supplies this, breaking the plan↔exec cycle.
pub trait SubqueryExecutor {
    /// Execute an uncorrelated subquery, returning its rows.
    fn run_subquery(&mut self, sub: &Select) -> PgResult<Vec<crate::types::Row>>;
}

/// Catalog + statistics view the planner needs.
pub trait PlannerCatalog {
    fn table_meta(&self, name: &str) -> PgResult<TableMeta>;
    fn index_meta(&self, id: IndexId) -> PgResult<crate::catalog::IndexMeta>;
    fn row_estimate(&self, table: TableId) -> u64;
}

/// Plan a SELECT. `params` supplies `$n` values.
pub fn plan_select(
    sel: &Select,
    cat: &dyn PlannerCatalog,
    subq: &mut dyn SubqueryExecutor,
    params: &[Datum],
) -> PgResult<SelectPlan> {
    // 1. resolve FROM into (node, scope), left-deep across comma items
    let mut arities: std::collections::HashMap<TableId, usize> =
        std::collections::HashMap::new();
    let mut from_parts: Vec<(PlanNode, RowScope)> = Vec::new();
    for item in &sel.from {
        from_parts.push(plan_table_ref(item, cat, subq, params, &mut arities)?);
    }
    let (mut node, mut scope) = match from_parts.len() {
        0 => (
            PlanNode::Materialized { rows: vec![vec![]], arity: 0 },
            RowScope::default(),
        ),
        _ => {
            let mut it = from_parts.into_iter();
            let first = it.next().expect("non-empty");
            it.fold(first, |(lnode, lscope), (rnode, rscope)| {
                let joined = PlanNode::Join {
                    left_arity: lscope.len(),
                    right_arity: rscope.len(),
                    left: Box::new(lnode),
                    right: Box::new(rnode),
                    kind: JoinKind::Cross,
                    hash_keys: None,
                    on: None,
                };
                (joined, lscope.join(&rscope))
            })
        }
    };

    // 2. WHERE: flatten subqueries, split conjuncts, push down to scans
    if let Some(where_clause) = &sel.where_clause {
        let flat = flatten_subqueries(where_clause, subq, &scope)?;
        let conjuncts = split_conjuncts(&flat);
        let mut residual: Vec<Expr> = Vec::new();
        for c in conjuncts {
            if !push_conjunct(&mut node, &scope, &c, params)? {
                residual.push(c);
            }
        }
        if let Some(pred) = conjoin(residual) {
            let bound = bind(&pred, &scope, params)?;
            node = PlanNode::Filter { input: Box::new(node), pred: bound };
        }
    }

    // 2b. convert cross joins with usable equi-conditions into hash joins is
    // handled inside push_conjunct via join-condition placement.

    // 3. aggregate extraction
    let has_agg = sel.projection.iter().any(|p| match p {
        SelectItem::Expr { expr, .. } => contains_agg(expr),
        _ => false,
    }) || sel.having.as_ref().is_some_and(contains_agg)
        || !sel.group_by.is_empty();

    // resolve GROUP BY ordinals
    let mut group_exprs: Vec<Expr> = Vec::new();
    for g in &sel.group_by {
        match g {
            Expr::Literal(Literal::Int(n)) => {
                let idx = (*n as usize).checked_sub(1).ok_or_else(|| {
                    PgError::new(ErrorCode::Syntax, "GROUP BY position must be >= 1")
                })?;
                match sel.projection.get(idx) {
                    Some(SelectItem::Expr { expr, .. }) => group_exprs.push(expr.clone()),
                    _ => {
                        return Err(PgError::new(
                            ErrorCode::Syntax,
                            format!("GROUP BY position {n} is not in the select list"),
                        ))
                    }
                }
            }
            other => group_exprs.push(other.clone()),
        }
    }

    // 4. build projection + names (and order-by hidden columns)
    let mut out_exprs: Vec<Expr> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in scope.cols.iter().enumerate() {
                    out_exprs.push(Expr::Column {
                        table: c.qualifier.clone(),
                        name: c.name.clone(),
                    });
                    let _ = i;
                    names.push(c.name.clone());
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut found = false;
                for c in &scope.cols {
                    if c.qualifier.as_deref() == Some(q.as_str()) {
                        out_exprs.push(Expr::Column {
                            table: c.qualifier.clone(),
                            name: c.name.clone(),
                        });
                        names.push(c.name.clone());
                        found = true;
                    }
                }
                if !found {
                    return Err(PgError::undefined_table(q));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let flat = flatten_subqueries(expr, subq, &scope)?;
                names.push(alias.clone().unwrap_or_else(|| default_name(&flat)));
                out_exprs.push(flat);
            }
        }
    }
    let visible = out_exprs.len();

    // ORDER BY: resolve ordinals/aliases, add hidden projection columns
    let mut order_by: Vec<(usize, bool)> = Vec::new();
    for ob in &sel.order_by {
        let idx = match &ob.expr {
            Expr::Literal(Literal::Int(n)) => {
                let i = (*n as usize).checked_sub(1).filter(|i| *i < visible).ok_or_else(
                    || {
                        PgError::new(
                            ErrorCode::Syntax,
                            format!("ORDER BY position {n} is not in the select list"),
                        )
                    },
                )?;
                i
            }
            Expr::Column { table: None, name } if names.contains(name) => {
                names.iter().position(|n| n == name).expect("contains checked")
            }
            other => {
                let flat = flatten_subqueries(other, subq, &scope)?;
                // reuse an identical projection expression when present
                if let Some(i) = out_exprs.iter().position(|e| exprs_equal(e, &flat)) {
                    i
                } else {
                    out_exprs.push(flat);
                    names.push("?order?".to_string());
                    out_exprs.len() - 1
                }
            }
        };
        order_by.push((idx, ob.desc));
    }

    // 5. bind projection/having, splitting around aggregation
    let (agg, projection, having) = if has_agg {
        let mut calls: Vec<AggCall> = Vec::new();
        let mut call_keys: Vec<String> = Vec::new();
        // rewrite each output expr: aggs → __agg.N, group exprs → __grp.N
        let group_keys: Vec<String> = group_exprs.iter().map(normal_key).collect();
        let rewritten: Vec<Expr> = out_exprs
            .iter()
            .map(|e| rewrite_agg(e, &group_keys, &mut calls, &mut call_keys, &scope, params))
            .collect::<PgResult<_>>()?;
        let having_rewritten = match &sel.having {
            Some(h) => {
                let flat = flatten_subqueries(h, subq, &scope)?;
                Some(rewrite_agg(&flat, &group_keys, &mut calls, &mut call_keys, &scope, params)?)
            }
            None => None,
        };
        // post-agg scope: __grp.g0..  then __agg.a0..
        let mut post_cols: Vec<ColumnRef> = (0..group_exprs.len())
            .map(|i| ColumnRef::new(Some("__grp"), &format!("g{i}")))
            .collect();
        post_cols
            .extend((0..calls.len()).map(|i| ColumnRef::new(Some("__agg"), &format!("a{i}"))));
        let post_scope = RowScope { cols: post_cols };
        let projection: Vec<BExpr> = rewritten
            .iter()
            .map(|e| {
                bind(e, &post_scope, params).map_err(|err| {
                    if err.code == ErrorCode::UndefinedColumn {
                        PgError::new(
                            ErrorCode::Syntax,
                            format!(
                                "column must appear in the GROUP BY clause or be used in \
                                 an aggregate function ({})",
                                err.message
                            ),
                        )
                    } else {
                        err
                    }
                })
            })
            .collect::<PgResult<_>>()?;
        let having = having_rewritten.map(|h| bind(&h, &post_scope, params)).transpose()?;
        let group: Vec<BExpr> =
            group_exprs.iter().map(|g| bind(g, &scope, params)).collect::<PgResult<_>>()?;
        (Some(AggStage { group, calls }), projection, having)
    } else {
        if sel.having.is_some() {
            return Err(PgError::new(ErrorCode::Syntax, "HAVING requires aggregation"));
        }
        let projection: Vec<BExpr> =
            out_exprs.iter().map(|e| bind(e, &scope, params)).collect::<PgResult<_>>()?;
        (None, projection, None)
    };

    // 6. FOR UPDATE target
    let for_update = if sel.for_update {
        match &sel.from[..] {
            [TableRef::Table { name, .. }] => Some(cat.table_meta(name)?.id),
            _ => {
                return Err(PgError::unsupported(
                    "SELECT .. FOR UPDATE is supported on a single table only",
                ))
            }
        }
    } else {
        None
    };

    let limit = sel.limit.as_ref().map(|e| const_u64(e, params)).transpose()?;
    let offset = sel.offset.as_ref().map(|e| const_u64(e, params)).transpose()?;

    // 7. projection pushdown: record on each base-table scan the set of
    // columns the query references anywhere. The FOR UPDATE path re-reads
    // whole rows under locks, so it keeps full materialization.
    if for_update.is_none() {
        let mut top: Vec<&BExpr> = Vec::new();
        match &agg {
            Some(stage) => {
                top.extend(stage.group.iter());
                top.extend(stage.calls.iter().filter_map(|c| c.arg.as_ref()));
            }
            None => top.extend(projection.iter()),
        }
        assign_scan_columns(&mut node, &top, &arities);
    }

    // ORDER BY in aggregate queries must not leave group scope — the binding
    // above already errors in that case because hidden columns were rewritten.
    scope_rollup(&mut scope);
    Ok(SelectPlan {
        input: node,
        raw_scope: scope,
        agg,
        having,
        projection,
        names,
        visible,
        distinct: sel.distinct,
        order_by,
        limit,
        offset,
        for_update,
    })
}

/// no-op hook point kept for symmetry; scopes are already final.
fn scope_rollup(_scope: &mut RowScope) {}

/// Projection pushdown over a finished plan tree.
///
/// Collects every column the query can read — scan filters (bound
/// table-relative), join hash keys and ON conditions (bound over the join's
/// combined scope), residual Filter predicates (bound over the full scope),
/// plus the caller-supplied raw-scope expressions (group keys + aggregate
/// arguments, or the projection) — as absolute scope indices, then maps the
/// slice covering each base table back to table-relative indices and records
/// it in that scan's `cols`. Columnar scans materialize only these columns
/// and the cost model charges I/O for only their pages.
fn assign_scan_columns(
    node: &mut PlanNode,
    top_exprs: &[&BExpr],
    arities: &std::collections::HashMap<TableId, usize>,
) {
    let mut referenced: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for e in top_exprs {
        collect_cols_at(e, 0, &mut referenced);
    }
    collect_node_cols(node, 0, &mut referenced);
    mark_scan_cols(node, 0, &referenced, arities);
}

/// Add the columns `e` references to `acc` as absolute scope indices, given
/// that `e`'s `Col`s are bound relative to scope position `base`.
fn collect_cols_at(e: &BExpr, base: usize, acc: &mut std::collections::BTreeSet<usize>) {
    let mut local = std::collections::BTreeSet::new();
    crate::batch::collect_cols(e, &mut local);
    acc.extend(local.into_iter().map(|i| base + i));
}

/// Walk the tree collecting column references from node-attached expressions.
/// `offset` is the node's starting position in the full scope.
fn collect_node_cols(
    node: &PlanNode,
    offset: usize,
    acc: &mut std::collections::BTreeSet<usize>,
) {
    match node {
        PlanNode::SeqScan { filter, .. } => {
            if let Some(f) = filter {
                collect_cols_at(f, offset, acc);
            }
        }
        PlanNode::IndexScan { filter, .. } => {
            if let Some(f) = filter {
                collect_cols_at(f, offset, acc);
            }
        }
        PlanNode::Materialized { .. } => {}
        PlanNode::Join { left, right, hash_keys, on, left_arity, .. } => {
            collect_node_cols(left, offset, acc);
            collect_node_cols(right, offset + left_arity, acc);
            if let Some((ls, rs)) = hash_keys {
                for e in ls {
                    collect_cols_at(e, offset, acc);
                }
                for e in rs {
                    collect_cols_at(e, offset + left_arity, acc);
                }
            }
            if let Some(cond) = on {
                collect_cols_at(cond, offset, acc);
            }
        }
        PlanNode::Filter { input, pred } => {
            collect_cols_at(pred, offset, acc);
            collect_node_cols(input, offset, acc);
        }
    }
}

/// Second walk: record each base-table scan's referenced columns
/// (table-relative). Returns the node's arity so joins can offset their
/// right side; tables missing from `arities` keep `cols: None` (read all).
fn mark_scan_cols(
    node: &mut PlanNode,
    offset: usize,
    referenced: &std::collections::BTreeSet<usize>,
    arities: &std::collections::HashMap<TableId, usize>,
) -> usize {
    match node {
        PlanNode::SeqScan { table, cols, .. } => match arities.get(table) {
            Some(&a) => {
                *cols = Some(referenced.range(offset..offset + a).map(|i| i - offset).collect());
                a
            }
            None => 0,
        },
        PlanNode::IndexScan { table, .. } => arities.get(table).copied().unwrap_or(0),
        PlanNode::Materialized { arity, .. } => *arity,
        PlanNode::Join { left, right, left_arity, right_arity, .. } => {
            let (la, ra) = (*left_arity, *right_arity);
            mark_scan_cols(left, offset, referenced, arities);
            mark_scan_cols(right, offset + la, referenced, arities);
            la + ra
        }
        PlanNode::Filter { input, .. } => mark_scan_cols(input, offset, referenced, arities),
    }
}

fn const_u64(e: &Expr, params: &[Datum]) -> PgResult<u64> {
    let b = bind(e, &RowScope::default(), params)?;
    let v = crate::expr::eval(&b, &vec![], &crate::expr::EvalCtx::default())?;
    Ok(v.as_i64()?.max(0) as u64)
}

fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Func(f) => f.name.clone(),
        Expr::Cast { expr, .. } => default_name(expr),
        _ => "?column?".to_string(),
    }
}

/// Structural equality via normalised deparse text.
fn exprs_equal(a: &Expr, b: &Expr) -> bool {
    a == b || normal_key(a) == normal_key(b)
}

/// Normalised key for matching group-by expressions (ignores qualifiers so
/// `t.a` and `a` match when unambiguous).
fn normal_key(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => format!("col:{name}"),
        other => deparse_expr(other),
    }
}

fn contains_agg(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if let Expr::Func(f) = x {
            if AggKind::resolve(&f.name, f.star).is_some() {
                found = true;
            }
        }
    });
    found
}

/// Replace aggregate calls and group-key subtrees with references into the
/// post-aggregation scope, collecting the aggregate calls.
fn rewrite_agg(
    e: &Expr,
    group_keys: &[String],
    calls: &mut Vec<AggCall>,
    call_keys: &mut Vec<String>,
    raw_scope: &RowScope,
    params: &[Datum],
) -> PgResult<Expr> {
    // whole expression is a group key?
    if let Some(i) = group_keys.iter().position(|k| k == &normal_key(e)) {
        return Ok(Expr::Column { table: Some("__grp".into()), name: format!("g{i}") });
    }
    if let Expr::Func(f) = e {
        if let Some(kind) = AggKind::resolve(&f.name, f.star) {
            let key = deparse_expr(e);
            let idx = if let Some(i) = call_keys.iter().position(|k| k == &key) {
                i
            } else {
                let arg = match kind {
                    AggKind::CountStar => None,
                    _ => {
                        let a = f.args.first().ok_or_else(|| {
                            PgError::new(ErrorCode::Syntax, "aggregate needs an argument")
                        })?;
                        Some(bind(a, raw_scope, params)?)
                    }
                };
                calls.push(AggCall { kind, arg, distinct: f.distinct });
                call_keys.push(key);
                calls.len() - 1
            };
            return Ok(Expr::Column { table: Some("__agg".into()), name: format!("a{idx}") });
        }
    }
    // otherwise recurse structurally
    Ok(match e {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_agg(expr, group_keys, calls, call_keys, raw_scope, params)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_agg(left, group_keys, calls, call_keys, raw_scope, params)?),
            op: *op,
            right: Box::new(rewrite_agg(right, group_keys, calls, call_keys, raw_scope, params)?),
        },
        Expr::Cast { expr, ty } => Expr::Cast {
            expr: Box::new(rewrite_agg(expr, group_keys, calls, call_keys, raw_scope, params)?),
            ty: *ty,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_agg(expr, group_keys, calls, call_keys, raw_scope, params)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated, case_insensitive } => Expr::Like {
            expr: Box::new(rewrite_agg(expr, group_keys, calls, call_keys, raw_scope, params)?),
            pattern: Box::new(rewrite_agg(
                pattern, group_keys, calls, call_keys, raw_scope, params,
            )?),
            negated: *negated,
            case_insensitive: *case_insensitive,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_agg(expr, group_keys, calls, call_keys, raw_scope, params)?),
            low: Box::new(rewrite_agg(low, group_keys, calls, call_keys, raw_scope, params)?),
            high: Box::new(rewrite_agg(high, group_keys, calls, call_keys, raw_scope, params)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_agg(expr, group_keys, calls, call_keys, raw_scope, params)?),
            list: list
                .iter()
                .map(|x| rewrite_agg(x, group_keys, calls, call_keys, raw_scope, params))
                .collect::<PgResult<_>>()?,
            negated: *negated,
        },
        Expr::Case { operand, branches, else_result } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| {
                    rewrite_agg(o, group_keys, calls, call_keys, raw_scope, params).map(Box::new)
                })
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        rewrite_agg(w, group_keys, calls, call_keys, raw_scope, params)?,
                        rewrite_agg(t, group_keys, calls, call_keys, raw_scope, params)?,
                    ))
                })
                .collect::<PgResult<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|x| {
                    rewrite_agg(x, group_keys, calls, call_keys, raw_scope, params).map(Box::new)
                })
                .transpose()?,
        },
        Expr::Func(f) => Expr::Func(FuncCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| rewrite_agg(a, group_keys, calls, call_keys, raw_scope, params))
                .collect::<PgResult<_>>()?,
            distinct: f.distinct,
            star: f.star,
        }),
        // leaves
        other => other.clone(),
    })
}

/// Execute and inline uncorrelated subqueries inside an expression.
fn flatten_subqueries(
    e: &Expr,
    subq: &mut dyn SubqueryExecutor,
    _outer_scope: &RowScope,
) -> PgResult<Expr> {
    Ok(match e {
        Expr::ScalarSubquery(sel) => {
            let rows = run_uncorrelated(sel, subq)?;
            match rows.len() {
                0 => Expr::Literal(Literal::Null),
                1 => {
                    let row = &rows[0];
                    if row.len() != 1 {
                        return Err(PgError::new(
                            ErrorCode::Syntax,
                            "subquery must return a single column",
                        ));
                    }
                    datum_to_literal_expr(&row[0])
                }
                _ => {
                    return Err(PgError::new(
                        ErrorCode::Syntax,
                        "more than one row returned by a subquery used as an expression",
                    ))
                }
            }
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let rows = run_uncorrelated(subquery, subq)?;
            let list: Vec<Expr> = rows
                .iter()
                .map(|r| {
                    if r.len() != 1 {
                        return Err(PgError::new(
                            ErrorCode::Syntax,
                            "subquery in IN must return a single column",
                        ));
                    }
                    Ok(datum_to_literal_expr(&r[0]))
                })
                .collect::<PgResult<_>>()?;
            let inner = flatten_subqueries(expr, subq, _outer_scope)?;
            if list.is_empty() {
                // x IN () is false; x NOT IN () is true (no NULL involved)
                Expr::Literal(Literal::Bool(*negated))
            } else {
                Expr::InList { expr: Box::new(inner), list, negated: *negated }
            }
        }
        Expr::Exists { subquery, negated } => {
            let rows = run_uncorrelated(subquery, subq)?;
            Expr::Literal(Literal::Bool((!rows.is_empty()) != *negated))
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(flatten_subqueries(expr, subq, _outer_scope)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(flatten_subqueries(left, subq, _outer_scope)?),
            op: *op,
            right: Box::new(flatten_subqueries(right, subq, _outer_scope)?),
        },
        Expr::Cast { expr, ty } => {
            Expr::Cast { expr: Box::new(flatten_subqueries(expr, subq, _outer_scope)?), ty: *ty }
        }
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(flatten_subqueries(expr, subq, _outer_scope)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated, case_insensitive } => Expr::Like {
            expr: Box::new(flatten_subqueries(expr, subq, _outer_scope)?),
            pattern: Box::new(flatten_subqueries(pattern, subq, _outer_scope)?),
            negated: *negated,
            case_insensitive: *case_insensitive,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(flatten_subqueries(expr, subq, _outer_scope)?),
            low: Box::new(flatten_subqueries(low, subq, _outer_scope)?),
            high: Box::new(flatten_subqueries(high, subq, _outer_scope)?),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(flatten_subqueries(expr, subq, _outer_scope)?),
            list: list
                .iter()
                .map(|x| flatten_subqueries(x, subq, _outer_scope))
                .collect::<PgResult<_>>()?,
            negated: *negated,
        },
        Expr::Case { operand, branches, else_result } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| flatten_subqueries(o, subq, _outer_scope).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        flatten_subqueries(w, subq, _outer_scope)?,
                        flatten_subqueries(t, subq, _outer_scope)?,
                    ))
                })
                .collect::<PgResult<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|x| flatten_subqueries(x, subq, _outer_scope).map(Box::new))
                .transpose()?,
        },
        Expr::Func(f) => Expr::Func(FuncCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| flatten_subqueries(a, subq, _outer_scope))
                .collect::<PgResult<_>>()?,
            distinct: f.distinct,
            star: f.star,
        }),
        leaf => leaf.clone(),
    })
}

/// Public wrapper used by DML: flatten subqueries in a WHERE clause.
pub fn flatten_for_dml(e: &Expr, subq: &mut dyn SubqueryExecutor) -> PgResult<Expr> {
    flatten_subqueries(e, subq, &RowScope::default())
}

fn run_uncorrelated(
    sel: &Select,
    subq: &mut dyn SubqueryExecutor,
) -> PgResult<Vec<crate::types::Row>> {
    subq.run_subquery(sel).map_err(|e| {
        if e.code == ErrorCode::UndefinedColumn {
            PgError::unsupported(format!(
                "correlated subqueries are not supported ({})",
                e.message
            ))
        } else {
            e
        }
    })
}

fn datum_to_literal_expr(d: &Datum) -> Expr {
    match d {
        Datum::Null => Expr::Literal(Literal::Null),
        Datum::Bool(b) => Expr::Literal(Literal::Bool(*b)),
        Datum::Int(v) => Expr::Literal(Literal::Int(*v)),
        Datum::Float(v) => Expr::Literal(Literal::Float(*v)),
        Datum::Text(s) => Expr::Literal(Literal::String(s.clone())),
        Datum::Timestamp(_) | Datum::Json(_) => Expr::Cast {
            expr: Box::new(Expr::Literal(Literal::String(d.to_text()))),
            ty: match d {
                Datum::Timestamp(_) => sqlparse::ast::TypeName::Timestamp,
                _ => sqlparse::ast::TypeName::Json,
            },
        },
    }
}

/// Split an expression into top-level AND conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut v = split_conjuncts(left);
            v.extend(split_conjuncts(right));
            v
        }
        other => vec![other.clone()],
    }
}

/// AND a list of conjuncts back together.
pub fn conjoin(mut v: Vec<Expr>) -> Option<Expr> {
    let first = if v.is_empty() { return None } else { v.remove(0) };
    Some(v.into_iter().fold(first, |acc, e| Expr::bin(acc, BinaryOp::And, e)))
}

/// The set of table qualifiers an expression references.
fn referenced_qualifiers(e: &Expr, scope: &RowScope) -> PgResult<Vec<String>> {
    let mut quals: Vec<String> = Vec::new();
    let mut err: Option<PgError> = None;
    e.walk(&mut |x| {
        if let Expr::Column { table, name } = x {
            match scope.resolve(table.as_deref(), name) {
                Ok(i) => {
                    if let Some(q) = &scope.cols[i].qualifier {
                        if !quals.contains(q) {
                            quals.push(q.clone());
                        }
                    }
                }
                Err(e2) => {
                    if err.is_none() {
                        err = Some(e2);
                    }
                }
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(quals),
    }
}

/// Try to push one WHERE conjunct down into the plan tree: onto a scan that
/// covers all its referenced tables, or as a hash-join condition at the join
/// whose two sides split its references. Returns false when it must stay as
/// a residual filter.
fn push_conjunct(
    node: &mut PlanNode,
    scope: &RowScope,
    conjunct: &Expr,
    params: &[Datum],
) -> PgResult<bool> {
    let quals = referenced_qualifiers(conjunct, scope)?;
    push_conjunct_inner(node, scope, conjunct, &quals, params, 0).map(|r| r.is_some())
}

/// Returns Some(()) if pushed. `offset` is this node's starting column in the
/// overall scope.
fn push_conjunct_inner(
    node: &mut PlanNode,
    scope: &RowScope,
    conjunct: &Expr,
    quals: &[String],
    params: &[Datum],
    offset: usize,
) -> PgResult<Option<()>> {
    match node {
        PlanNode::Join { left, right, kind, hash_keys, on, left_arity, right_arity } => {
            let left_quals = node_qualifiers(scope, offset, *left_arity);
            let right_quals = node_qualifiers(scope, offset + *left_arity, *right_arity);
            let in_left = quals.iter().all(|q| left_quals.contains(q));
            let in_right = quals.iter().all(|q| right_quals.contains(q));
            // outer joins: pushing filters below the null-producing side
            // changes semantics; keep it simple and only push into inner/cross
            if in_left && !matches!(kind, JoinKind::Right | JoinKind::Full) {
                if let Some(()) =
                    push_conjunct_inner(left, scope, conjunct, quals, params, offset)?
                {
                    return Ok(Some(()));
                }
            }
            if in_right && !matches!(kind, JoinKind::Left | JoinKind::Full) {
                if let Some(()) = push_conjunct_inner(
                    right,
                    scope,
                    conjunct,
                    quals,
                    params,
                    offset + *left_arity,
                )? {
                    return Ok(Some(()));
                }
            }
            // join condition? only for inner/cross joins
            if matches!(kind, JoinKind::Inner | JoinKind::Cross)
                && quals.iter().any(|q| left_quals.contains(q))
                && quals.iter().any(|q| right_quals.contains(q))
            {
                let sub_scope = RowScope {
                    cols: scope.cols[offset..offset + *left_arity + *right_arity].to_vec(),
                };
                let bound = bind_with_offset(conjunct, &sub_scope, params)?;
                *kind = JoinKind::Inner;
                // equi-condition? extract hash keys
                if let Expr::Binary { left: cl, op: BinaryOp::Eq, right: cr } = conjunct {
                    let lq = referenced_qualifiers(cl, scope)?;
                    let rq = referenced_qualifiers(cr, scope)?;
                    let (lkey, rkey) = if lq.iter().all(|q| left_quals.contains(q))
                        && rq.iter().all(|q| right_quals.contains(q))
                    {
                        (cl.as_ref(), cr.as_ref())
                    } else if rq.iter().all(|q| left_quals.contains(q))
                        && lq.iter().all(|q| right_quals.contains(q))
                    {
                        (cr.as_ref(), cl.as_ref())
                    } else {
                        // mixed-side expressions: plain condition
                        append_on(on, bound);
                        return Ok(Some(()));
                    };
                    let lscope =
                        RowScope { cols: scope.cols[offset..offset + *left_arity].to_vec() };
                    let rscope = RowScope {
                        cols: scope.cols
                            [offset + *left_arity..offset + *left_arity + *right_arity]
                            .to_vec(),
                    };
                    let lb = bind(lkey, &lscope, params)?;
                    let rb = bind(rkey, &rscope, params)?;
                    match hash_keys {
                        Some((ls, rs)) => {
                            ls.push(lb);
                            rs.push(rb);
                        }
                        None => *hash_keys = Some((vec![lb], vec![rb])),
                    }
                    return Ok(Some(()));
                }
                append_on(on, bound);
                return Ok(Some(()));
            }
            Ok(None)
        }
        PlanNode::SeqScan { filter, .. } | PlanNode::IndexScan { filter, .. } => {
            // does this conjunct reference only this node's columns?
            let my_quals = node_qualifiers(scope, offset, node_arity_at(scope, offset));
            if !quals.iter().all(|q| my_quals.contains(q)) {
                return Ok(None);
            }
            let sub_scope =
                RowScope { cols: scope.cols[offset..].to_vec() };
            // restrict to just this table's columns: for leaf nodes the
            // remaining scope *starts* with this table; binding may still see
            // later tables' columns, so re-check quals first (done above).
            let bound = bind(conjunct, &sub_scope, params)?;
            match filter {
                Some(f) => {
                    *filter = Some(BExpr::Binary {
                        op: BinaryOp::And,
                        left: Box::new(f.clone()),
                        right: Box::new(bound),
                    })
                }
                None => *filter = Some(bound),
            }
            Ok(Some(()))
        }
        PlanNode::Materialized { .. } => Ok(None),
        PlanNode::Filter { input, .. } => {
            push_conjunct_inner(input, scope, conjunct, quals, params, offset)
        }
    }
}

fn append_on(on: &mut Option<BExpr>, extra: BExpr) {
    match on {
        Some(existing) => {
            *on = Some(BExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(existing.clone()),
                right: Box::new(extra),
            })
        }
        None => *on = Some(extra),
    }
}

fn bind_with_offset(e: &Expr, scope: &RowScope, params: &[Datum]) -> PgResult<BExpr> {
    bind(e, scope, params)
}

/// Qualifiers covering `arity` columns starting at `offset` in the scope.
fn node_qualifiers(scope: &RowScope, offset: usize, arity: usize) -> Vec<String> {
    let mut out = Vec::new();
    for c in scope.cols.iter().skip(offset).take(arity) {
        if let Some(q) = &c.qualifier {
            if !out.contains(q) {
                out.push(q.clone());
            }
        }
    }
    out
}

/// Arity of the leaf at `offset`: columns sharing the qualifier of the first.
fn node_arity_at(scope: &RowScope, offset: usize) -> usize {
    let Some(first) = scope.cols.get(offset) else { return 0 };
    scope.cols[offset..]
        .iter()
        .take_while(|c| c.qualifier == first.qualifier)
        .count()
}

/// Plan one FROM item (recursing into joins and derived tables).
/// Records each base table's arity in `arities` for the projection-pushdown
/// pass that runs once the full tree is assembled.
fn plan_table_ref(
    item: &TableRef,
    cat: &dyn PlannerCatalog,
    subq: &mut dyn SubqueryExecutor,
    params: &[Datum],
    arities: &mut std::collections::HashMap<TableId, usize>,
) -> PgResult<(PlanNode, RowScope)> {
    match item {
        TableRef::Table { name, alias } => {
            let meta = cat.table_meta(name)?;
            let qualifier = alias.as_deref().unwrap_or(name);
            let scope = RowScope::of_table(qualifier, &meta.column_names());
            arities.insert(meta.id, scope.len());
            Ok((PlanNode::SeqScan { table: meta.id, filter: None, cols: None }, scope))
        }
        TableRef::Subquery { query, alias } => {
            let rows = subq.run_subquery(query)?;
            let names = derive_output_names(query);
            let scope = RowScope::of_table(alias, &names);
            let arity = scope.len();
            Ok((PlanNode::Materialized { rows, arity }, scope))
        }
        TableRef::Join { left, right, kind, on } => {
            let (lnode, lscope) = plan_table_ref(left, cat, subq, params, arities)?;
            let (rnode, rscope) = plan_table_ref(right, cat, subq, params, arities)?;
            let scope = lscope.join(&rscope);
            let mut node = PlanNode::Join {
                left_arity: lscope.len(),
                right_arity: rscope.len(),
                left: Box::new(lnode),
                right: Box::new(rnode),
                kind: *kind,
                hash_keys: None,
                on: None,
            };
            if let Some(cond) = on {
                let flat = flatten_subqueries(cond, subq, &scope)?;
                // try to split the ON condition into hash keys + residual
                let conjuncts = split_conjuncts(&flat);
                let mut residual = Vec::new();
                for c in conjuncts {
                    let pushed = if matches!(kind, JoinKind::Inner) {
                        push_conjunct(&mut node, &scope, &c, params)?
                    } else {
                        try_outer_join_keys(&mut node, &scope, &c, params)?
                    };
                    if !pushed {
                        residual.push(c);
                    }
                }
                if let Some(resid) = conjoin(residual) {
                    let bound = bind(&resid, &scope, params)?;
                    if let PlanNode::Join { on, .. } = &mut node {
                        append_on(on, bound);
                    }
                }
            }
            Ok((node, scope))
        }
    }
}

/// For outer joins the ON condition must stay at the join (it controls null
/// extension), but equi-conditions can still drive a hash join.
fn try_outer_join_keys(
    node: &mut PlanNode,
    scope: &RowScope,
    conjunct: &Expr,
    params: &[Datum],
) -> PgResult<bool> {
    let PlanNode::Join { kind, hash_keys, on, left_arity, right_arity, .. } = node else {
        return Ok(false);
    };
    if !matches!(kind, JoinKind::Left | JoinKind::Right | JoinKind::Full) {
        return Ok(false);
    }
    if let Expr::Binary { left: cl, op: BinaryOp::Eq, right: cr } = conjunct {
        let left_quals = node_qualifiers(scope, 0, *left_arity);
        let right_quals = node_qualifiers(scope, *left_arity, *right_arity);
        let lq = referenced_qualifiers(cl, scope)?;
        let rq = referenced_qualifiers(cr, scope)?;
        let (lkey, rkey) = if lq.iter().all(|q| left_quals.contains(q))
            && rq.iter().all(|q| right_quals.contains(q))
        {
            (cl.as_ref(), cr.as_ref())
        } else if rq.iter().all(|q| left_quals.contains(q))
            && lq.iter().all(|q| right_quals.contains(q))
        {
            (cr.as_ref(), cl.as_ref())
        } else {
            return Ok(false);
        };
        let lscope = RowScope { cols: scope.cols[..*left_arity].to_vec() };
        let rscope = RowScope { cols: scope.cols[*left_arity..].to_vec() };
        let lb = bind(lkey, &lscope, params)?;
        let rb = bind(rkey, &rscope, params)?;
        match hash_keys {
            Some((ls, rs)) => {
                ls.push(lb);
                rs.push(rb);
            }
            None => *hash_keys = Some((vec![lb], vec![rb])),
        }
        return Ok(true);
    }
    let bound = bind(conjunct, scope, params)?;
    append_on(on, bound);
    Ok(true)
}

/// Output column names of a subquery (for derived-table scopes).
pub fn derive_output_names(sel: &Select) -> Vec<String> {
    let mut names = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                // wildcard inside a derived table: names resolved at execution;
                // use positional placeholders (callers reference by alias.col
                // rarely in that case)
                names.push(format!("?col{}?", names.len()));
            }
            SelectItem::Expr { expr, alias } => {
                names.push(alias.clone().unwrap_or_else(|| default_name(expr)));
            }
        }
    }
    names
}

/// After WHERE pushdown, upgrade eligible seq scans to index scans using the
/// table's indexes. Called by the executor with catalog access.
pub fn choose_access_paths(
    node: &mut PlanNode,
    cat: &dyn PlannerCatalog,
    catalog_tables: &dyn Fn(TableId) -> PgResult<TableMeta>,
) -> PgResult<()> {
    match node {
        PlanNode::SeqScan { table, filter, .. } => {
            let Some(f) = filter.clone() else { return Ok(()) };
            let meta = catalog_tables(*table)?;
            if let Some((index, probe)) = pick_index(&meta, &f, cat)? {
                *node = PlanNode::IndexScan { table: *table, index, probe, filter: Some(f) };
            }
            Ok(())
        }
        PlanNode::Join { left, right, .. } => {
            choose_access_paths(left, cat, catalog_tables)?;
            choose_access_paths(right, cat, catalog_tables)
        }
        PlanNode::Filter { input, .. } => choose_access_paths(input, cat, catalog_tables),
        _ => Ok(()),
    }
}

/// Extract (col_position → const BExpr) equality pairs and range/LIKE atoms
/// from a bound filter's conjuncts.
fn bound_conjuncts(f: &BExpr) -> Vec<&BExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a BExpr, out: &mut Vec<&'a BExpr>) {
        if let BExpr::Binary { op: BinaryOp::And, left, right } = e {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(f, &mut out);
    out
}

fn pick_index(
    meta: &TableMeta,
    filter: &BExpr,
    cat: &dyn PlannerCatalog,
) -> PgResult<Option<(IndexId, IndexProbe)>> {
    let conjuncts = bound_conjuncts(filter);
    // equality atoms: Col(i) = const
    let mut eq: Vec<(usize, BExpr)> = Vec::new();
    // range atoms on a column: (col, low, high)
    let mut ranges: Vec<(usize, Option<(BExpr, bool)>, Option<(BExpr, bool)>)> = Vec::new();
    // LIKE atoms: textual index-expression key → pattern
    let mut likes: Vec<(String, BExpr, bool)> = Vec::new();
    for c in &conjuncts {
        match c {
            BExpr::Binary { op, left, right } if op.is_comparison() => {
                let (col, konst, flipped) = match (left.as_ref(), right.as_ref()) {
                    (BExpr::Col(i), k) if k.is_const() => (*i, k.clone(), false),
                    (k, BExpr::Col(i)) if k.is_const() => (*i, k.clone(), true),
                    _ => continue,
                };
                let op = if flipped { flip_op(*op) } else { *op };
                match op {
                    BinaryOp::Eq => eq.push((col, konst)),
                    BinaryOp::Gt => ranges.push((col, Some((konst, false)), None)),
                    BinaryOp::Ge => ranges.push((col, Some((konst, true)), None)),
                    BinaryOp::Lt => ranges.push((col, None, Some((konst, false)))),
                    BinaryOp::Le => ranges.push((col, None, Some((konst, true)))),
                    _ => {}
                }
            }
            BExpr::Between { expr, low, high, negated: false } => {
                if let BExpr::Col(i) = expr.as_ref() {
                    if low.is_const() && high.is_const() {
                        ranges.push((
                            *i,
                            Some(((**low).clone(), true)),
                            Some(((**high).clone(), true)),
                        ));
                    }
                }
            }
            BExpr::Like { expr, pattern, negated: false, case_insensitive } => {
                if pattern.is_const() {
                    likes.push((
                        bexpr_key(expr),
                        (**pattern).clone(),
                        *case_insensitive,
                    ));
                }
            }
            _ => {}
        }
    }

    let mut best: Option<(IndexId, IndexProbe, usize)> = None; // score = prefix len
    for &iid in &meta.indexes {
        let imeta = cat.index_meta(iid)?;
        match imeta.method {
            IndexMethod::BTree => {
                // map index expressions to column positions (plain columns only)
                let mut cols = Vec::new();
                let mut plain = true;
                for e in &imeta.exprs {
                    match e {
                        Expr::Column { name, .. } => match meta.column_index(name) {
                            Some(i) => cols.push(i),
                            None => {
                                plain = false;
                                break;
                            }
                        },
                        _ => {
                            plain = false;
                            break;
                        }
                    }
                }
                if !plain || cols.is_empty() {
                    continue;
                }
                // longest equality prefix
                let mut probe_vals = Vec::new();
                for &c in &cols {
                    match eq.iter().find(|(ec, _)| *ec == c) {
                        Some((_, k)) => probe_vals.push(k.clone()),
                        None => break,
                    }
                }
                if !probe_vals.is_empty() {
                    let score = probe_vals.len() * 2 + 1;
                    if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                        best = Some((iid, IndexProbe::EqPrefix(probe_vals), score));
                    }
                    continue;
                }
                // range on first column
                if let Some((_, lo, hi)) =
                    ranges.iter().find(|(rc, _, _)| *rc == cols[0])
                {
                    let score = 1;
                    if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                        best = Some((
                            iid,
                            IndexProbe::Range { low: lo.clone(), high: hi.clone() },
                            score,
                        ));
                    }
                }
            }
            IndexMethod::Gin => {
                // match a LIKE whose argument equals the indexed expression
                let Some(iexpr) = imeta.exprs.first() else { continue };
                let ikey = expr_key_for_index(iexpr, meta);
                if let Some((_, pattern, ci)) = likes.iter().find(|(k, _, _)| *k == ikey) {
                    let score = 2;
                    if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                        best = Some((
                            iid,
                            IndexProbe::LikePattern {
                                pattern: pattern.clone(),
                                case_insensitive: *ci,
                            },
                            score,
                        ));
                    }
                }
            }
        }
    }
    Ok(best.map(|(i, p, _)| (i, p)))
}

fn flip_op(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Canonical key of a bound expression for matching GIN index expressions.
fn bexpr_key(e: &BExpr) -> String {
    format!("{e:?}")
}

/// Key of an index expression, bound over the table's own scope.
fn expr_key_for_index(e: &Expr, meta: &TableMeta) -> String {
    let scope = RowScope {
        cols: meta.columns.iter().map(|c| ColumnRef::new(None, &c.name)).collect(),
    };
    match bind(e, &scope, &[]) {
        Ok(b) => bexpr_key(&b),
        Err(_) => String::from("<unbindable>"),
    }
}

/// Compute the key of a bound scan-filter expression for GIN matching. The
/// executor uses the same binding scope (table columns in order), so keys
/// line up with `expr_key_for_index`.
pub fn gin_match_key(e: &BExpr) -> String {
    bexpr_key(e)
}
