//! Sessions: the connection + statement dispatch layer.
//!
//! A `Session` models one backend (connection) of the engine. It owns the
//! transaction state, routes statements through the extension hooks (the
//! interception points of §3.1), and accounts simulated cost per statement.

use crate::cost::SimCost;
use crate::dml;
use crate::engine::Engine;
use crate::error::{ErrorCode, PgError, PgResult};
use crate::exec::{self, ExecCtx};
use crate::expr::{bind, eval, RowScope};
use crate::lock::{CancelFlag, DistTxnId, LockKey, LockMode, CANCEL_NONE};
use crate::txn::{Xid, INVALID_XID};
use crate::types::{Datum, Row};
use crate::wal::WalRecord;
use sqlparse::ast::{Expr, SelectItem, Statement};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT output.
    Rows { columns: Vec<String>, rows: Vec<Row> },
    /// INSERT/UPDATE/DELETE/COPY row count.
    Affected(u64),
    /// DDL, SET, transaction control.
    Empty,
}

impl QueryResult {
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    pub fn into_rows(self) -> Vec<Row> {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => Vec::new(),
        }
    }

    pub fn columns(&self) -> &[String] {
        match self {
            QueryResult::Rows { columns, .. } => columns,
            _ => &[],
        }
    }

    pub fn affected(&self) -> u64 {
        match self {
            QueryResult::Affected(n) => *n,
            _ => 0,
        }
    }

    /// First column of the first row (convenience for scalar queries).
    pub fn scalar(&self) -> Option<&Datum> {
        self.rows().first().and_then(|r| r.first())
    }
}

/// One backend connection to an engine.
pub struct Session {
    engine: Arc<Engine>,
    id: u64,
    xid: Option<Xid>,
    /// Inside an explicit BEGIN..COMMIT block?
    explicit_txn: bool,
    /// A statement in the current explicit transaction failed; everything
    /// until ROLLBACK errors with "current transaction is aborted".
    txn_failed: bool,
    cancel: CancelFlag,
    dist_id: Option<DistTxnId>,
    settings: HashMap<String, Datum>,
    last_cost: SimCost,
    total_cost: SimCost,
    stmt_counter: u64,
    /// Distributed snapshot token: when set, statement snapshots evaluate
    /// visibility against the shared commit clock (`TxnManager::snapshot_at`)
    /// instead of this engine's latest local snapshot.
    snapshot_token: Option<u64>,
}

impl Session {
    pub(crate) fn new(engine: Arc<Engine>) -> Session {
        let id = engine.session_seq.fetch_add(1, Ordering::Relaxed);
        Session {
            engine,
            id,
            xid: None,
            explicit_txn: false,
            txn_failed: false,
            cancel: Arc::new(AtomicU8::new(CANCEL_NONE)),
            dist_id: None,
            settings: HashMap::new(),
            last_cost: SimCost::ZERO,
            total_cost: SimCost::ZERO,
            stmt_counter: 0,
            snapshot_token: None,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Simulated cost of the last statement.
    pub fn last_cost(&self) -> SimCost {
        self.last_cost
    }

    /// Simulated cost accumulated over the session; `take` resets it.
    pub fn take_total_cost(&mut self) -> SimCost {
        std::mem::replace(&mut self.total_cost, SimCost::ZERO)
    }

    /// Add externally-incurred cost (the distributed layer charges network
    /// time to the session this way).
    pub fn add_cost(&mut self, cost: &SimCost) {
        self.last_cost.add(cost);
        self.total_cost.add(cost);
    }

    pub fn in_transaction(&self) -> bool {
        self.xid.is_some()
    }

    pub fn in_explicit_transaction(&self) -> bool {
        self.explicit_txn
    }

    pub fn transaction_failed(&self) -> bool {
        self.txn_failed
    }

    pub fn current_xid(&self) -> Option<Xid> {
        self.xid
    }

    pub fn setting(&self, name: &str) -> Option<&Datum> {
        self.settings.get(name)
    }

    pub fn set_setting(&mut self, name: &str, value: Datum) {
        self.settings.insert(name.to_string(), value);
    }

    /// Attach a distributed transaction id (Citus's
    /// `assign_distributed_transaction_id`); lock-graph nodes on this engine
    /// are merged across the cluster through it.
    pub fn assign_dist_txn_id(&mut self, dist: DistTxnId) {
        self.dist_id = Some(dist);
        if let Some(xid) = self.xid {
            self.engine.locks.assign_dist_id(xid, dist);
        }
    }

    pub fn dist_txn_id(&self) -> Option<DistTxnId> {
        self.dist_id
    }

    /// Pin (or clear) the distributed snapshot token used by subsequent
    /// statements. The distributed layer sets this on worker connections
    /// right before forwarding a fan-out task.
    pub fn set_snapshot_token(&mut self, token: Option<u64>) {
        self.snapshot_token = token;
    }

    pub fn snapshot_token(&self) -> Option<u64> {
        self.snapshot_token
    }

    // ---------------- statement execution ----------------

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> PgResult<QueryResult> {
        let stmt = sqlparse::parse(sql)?;
        self.execute_stmt(&stmt)
    }

    /// Parse and execute a multi-statement script; returns the last result.
    pub fn execute_script(&mut self, sql: &str) -> PgResult<QueryResult> {
        let stmts = sqlparse::parse_many(sql)?;
        let mut last = QueryResult::Empty;
        for s in &stmts {
            last = self.execute_stmt(s)?;
        }
        Ok(last)
    }

    /// Execute with `$n` parameters.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Datum]) -> PgResult<QueryResult> {
        let stmt = sqlparse::parse(sql)?;
        self.dispatch(&stmt, params, true)
    }

    /// Execute a parsed statement (through hooks).
    pub fn execute_stmt(&mut self, stmt: &Statement) -> PgResult<QueryResult> {
        self.dispatch(stmt, &[], true)
    }

    /// Execute bypassing extension hooks (the extension's own "local
    /// execution" path; also prevents hook recursion).
    pub fn execute_local(&mut self, stmt: &Statement) -> PgResult<QueryResult> {
        self.dispatch(stmt, &[], false)
    }

    /// Convenience: run a query and return its rows.
    pub fn query(&mut self, sql: &str) -> PgResult<Vec<Row>> {
        Ok(self.execute(sql)?.into_rows())
    }

    /// Convenience: single-value query.
    pub fn query_scalar(&mut self, sql: &str) -> PgResult<Datum> {
        self.execute(sql)?
            .scalar()
            .cloned()
            .ok_or_else(|| PgError::internal("query returned no rows"))
    }

    fn dispatch(
        &mut self,
        stmt: &Statement,
        params: &[Datum],
        use_hooks: bool,
    ) -> PgResult<QueryResult> {
        // cancellation that arrived between statements: it dooms the current
        // transaction, but COMMIT/ROLLBACK must still run so the transaction
        // (here and on any node that shares its fate) can clean up — exactly
        // like PostgreSQL processing a pending cancel interrupt
        let pending_cancel = self.cancel.load(Ordering::SeqCst);
        if pending_cancel != CANCEL_NONE {
            self.cancel.store(CANCEL_NONE, Ordering::SeqCst);
            if pending_cancel == crate::lock::CANCEL_FENCE {
                // the transaction was force-aborted under us by a metadata
                // fence: engine-side state (txn status, locks) is already
                // gone, so drop the session half and surface the retryable
                // serialization failure. A plain ROLLBACK stays silent.
                self.rollback_current();
                if !matches!(stmt, Statement::Rollback) {
                    return Err(PgError::new(
                        ErrorCode::SerializationFailure,
                        "could not serialize access due to a concurrent metadata change \
                         (transaction fenced; retry)",
                    ));
                }
                return Ok(QueryResult::Empty);
            }
            if matches!(stmt, Statement::Commit | Statement::Rollback) {
                if self.explicit_txn && self.xid.is_some() {
                    self.txn_failed = true;
                }
            } else {
                self.fail_txn();
                return Err(PgError::new(
                    ErrorCode::QueryCanceled,
                    "canceling statement due to cancel request",
                ));
            }
        }
        // failed transaction block accepts only COMMIT/ROLLBACK
        if self.txn_failed
            && !matches!(stmt, Statement::Commit | Statement::Rollback)
        {
            return Err(PgError::new(
                ErrorCode::InvalidTransactionState,
                "current transaction is aborted, commands ignored until end of transaction block",
            ));
        }
        self.stmt_counter += 1;
        self.last_cost = SimCost::ZERO;
        let result = self.dispatch_inner(stmt, params, use_hooks);
        if result.is_err() && self.explicit_txn {
            self.fail_txn();
        }
        result
    }

    fn fail_txn(&mut self) {
        if self.explicit_txn && self.xid.is_some() {
            self.txn_failed = true;
        } else if let Some(_xid) = self.xid {
            // implicit transaction: roll it back immediately
            self.rollback_current();
        }
    }

    fn dispatch_inner(
        &mut self,
        stmt: &Statement,
        params: &[Datum],
        use_hooks: bool,
    ) -> PgResult<QueryResult> {
        match stmt {
            Statement::Begin => {
                if self.explicit_txn {
                    return Ok(QueryResult::Empty); // WARNING in PG; no-op here
                }
                self.ensure_xid()?;
                self.explicit_txn = true;
                Ok(QueryResult::Empty)
            }
            Statement::Commit => {
                if self.txn_failed {
                    self.rollback_current();
                    return Ok(QueryResult::Empty); // PG reports ROLLBACK
                }
                self.commit_current()?;
                Ok(QueryResult::Empty)
            }
            Statement::Rollback => {
                self.rollback_current();
                Ok(QueryResult::Empty)
            }
            Statement::PrepareTransaction(gid) => {
                self.prepare_transaction(gid)?;
                Ok(QueryResult::Empty)
            }
            Statement::CommitPrepared(gid) => {
                self.finish_prepared(gid, true)?;
                Ok(QueryResult::Empty)
            }
            Statement::RollbackPrepared(gid) => {
                self.finish_prepared(gid, false)?;
                Ok(QueryResult::Empty)
            }
            Statement::Set { name, value } => {
                if use_hooks {
                    if let Some(ext) = self.engine.hooks.installed() {
                        if let Some(r) = ext.utility_hook(self, stmt) {
                            return r;
                        }
                    }
                }
                self.settings.insert(name.clone(), crate::expr::literal_datum(value));
                Ok(QueryResult::Empty)
            }
            Statement::Vacuum { table } => {
                if use_hooks {
                    if let Some(ext) = self.engine.hooks.installed() {
                        if let Some(r) = ext.utility_hook(self, stmt) {
                            return r;
                        }
                    }
                }
                let n = match table {
                    Some(t) => self.engine.vacuum_table(t)?,
                    None => self.engine.vacuum_all()?,
                };
                Ok(QueryResult::Affected(n))
            }
            Statement::CreateTable(_)
            | Statement::CreateIndex(_)
            | Statement::CreateRollup(_)
            | Statement::DropRollup { .. }
            | Statement::DropTable { .. }
            | Statement::Truncate { .. }
            | Statement::Copy(_) => {
                if use_hooks {
                    if let Some(ext) = self.engine.hooks.installed() {
                        if let Some(r) = ext.utility_hook(self, stmt) {
                            return r;
                        }
                    }
                }
                self.run_utility(stmt)
            }
            Statement::Explain { inner, .. } => {
                if use_hooks {
                    if let Some(ext) = self.engine.hooks.installed() {
                        if let Some(r) = ext.utility_hook(self, stmt) {
                            return r;
                        }
                    }
                }
                self.run_explain(inner, params)
            }
            Statement::Select(sel) => {
                if use_hooks {
                    if let Some(ext) = self.engine.hooks.installed() {
                        if let Some(r) = ext.planner_hook(self, stmt) {
                            return r;
                        }
                    }
                }
                // UDF call path: FROM-less SELECT invoking registered UDFs
                if sel.from.is_empty() {
                    if let Some(r) = self.try_udf_select(sel, params)? {
                        return Ok(r);
                    }
                }
                self.run_select(sel, params)
            }
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                if use_hooks {
                    if let Some(ext) = self.engine.hooks.installed() {
                        if let Some(r) = ext.planner_hook(self, stmt) {
                            return r;
                        }
                    }
                }
                self.run_dml(stmt, params)
            }
        }
    }

    // ---------------- transaction control ----------------

    /// Allocate an xid for the current statement/transaction if none yet.
    pub fn ensure_xid(&mut self) -> PgResult<Xid> {
        if let Some(xid) = self.xid {
            return Ok(xid);
        }
        let xid = self.engine.txns.begin();
        self.engine.locks.register_txn(xid, self.cancel.clone(), self.dist_id);
        self.engine.wal.append(WalRecord::Begin { xid });
        self.xid = Some(xid);
        Ok(xid)
    }

    /// Commit the current transaction (runs extension callbacks).
    pub fn commit_current(&mut self) -> PgResult<()> {
        let Some(xid) = self.xid else {
            self.explicit_txn = false;
            return Ok(());
        };
        // a force-aborted (fenced) transaction must never commit: its writes
        // were already rolled back engine-side
        if self.engine.txns.status(xid) == crate::txn::TxStatus::Aborted {
            self.rollback_current();
            return Err(PgError::new(
                ErrorCode::SerializationFailure,
                "could not commit: transaction was aborted by a concurrent metadata \
                 change (retry)",
            ));
        }
        if let Some(ext) = self.engine.hooks.installed() {
            if let Err(e) = ext.pre_commit(self) {
                self.rollback_current();
                return Err(e);
            }
        }
        self.engine.txns.commit(xid);
        self.engine.wal.append(WalRecord::Commit { xid });
        self.engine.locks.release_all(xid);
        self.xid = None;
        self.explicit_txn = false;
        self.txn_failed = false;
        self.dist_id = None;
        if let Some(ext) = self.engine.hooks.installed() {
            ext.post_commit(self);
        }
        Ok(())
    }

    /// Abort the current transaction.
    pub fn rollback_current(&mut self) {
        // aborting consumes any pending cancellation
        self.cancel.store(CANCEL_NONE, Ordering::SeqCst);
        if let Some(xid) = self.xid.take() {
            self.engine.txns.abort(xid);
            self.engine.wal.append(WalRecord::Abort { xid });
            self.engine.locks.release_all(xid);
        }
        self.explicit_txn = false;
        self.txn_failed = false;
        self.dist_id = None;
        if let Some(ext) = self.engine.hooks.installed() {
            ext.post_abort(self);
        }
    }

    /// First phase of 2PC: make the transaction's fate externally decidable.
    pub fn prepare_transaction(&mut self, gid: &str) -> PgResult<()> {
        let Some(xid) = self.xid else {
            return Err(PgError::new(
                ErrorCode::InvalidTransactionState,
                "PREPARE TRANSACTION requires an active transaction",
            ));
        };
        self.engine.txns.prepare(xid, gid)?;
        self.engine.wal.append(WalRecord::Prepare { xid, gid: gid.to_string() });
        // locks stay held by the prepared xid; the session moves on
        self.engine.locks.detach_session(xid);
        self.xid = None;
        self.explicit_txn = false;
        self.txn_failed = false;
        self.dist_id = None;
        Ok(())
    }

    fn finish_prepared(&mut self, gid: &str, commit: bool) -> PgResult<()> {
        let xid = self.engine.txns.finish_prepared(gid, commit)?;
        self.engine.wal.append(if commit {
            WalRecord::CommitPrepared { gid: gid.to_string() }
        } else {
            WalRecord::AbortPrepared { gid: gid.to_string() }
        });
        self.engine.locks.release_all(xid);
        Ok(())
    }

    // ---------------- statement bodies ----------------

    fn make_ctx(&mut self) -> ExecCtx<'_> {
        let xid = self.xid.unwrap_or(INVALID_XID);
        let snap = match self.snapshot_token {
            Some(token) => self.engine.txns.snapshot_at(xid, token),
            None => self.engine.txns.snapshot(xid),
        };
        let seed = self.id.wrapping_mul(0x9E37_79B9).wrapping_add(self.stmt_counter);
        let mut ctx = ExecCtx::new(&self.engine, snap, xid, seed);
        ctx.cost.add_cpu(self.engine.config.cost.base_plan_ms);
        ctx
    }

    fn finish_ctx(&mut self, cost: SimCost) {
        self.last_cost.add(&cost);
        self.total_cost.add(&cost);
    }

    fn run_select(
        &mut self,
        sel: &sqlparse::ast::Select,
        params: &[Datum],
    ) -> PgResult<QueryResult> {
        let implicit = self.xid.is_none() && sel.for_update;
        if sel.for_update {
            self.ensure_xid()?;
        }
        let mut ctx = self.make_ctx();
        let result = exec::execute_select(&mut ctx, sel, params);
        let cost = ctx.cost;
        self.finish_ctx(cost);
        match result {
            Ok((columns, rows)) => {
                if implicit {
                    self.commit_current()?;
                }
                Ok(QueryResult::Rows { columns, rows })
            }
            Err(e) => {
                if implicit {
                    self.rollback_current();
                }
                Err(e)
            }
        }
    }

    fn run_dml(&mut self, stmt: &Statement, params: &[Datum]) -> PgResult<QueryResult> {
        let implicit = self.xid.is_none();
        self.ensure_xid()?;
        let mut ctx = self.make_ctx();
        let result = match stmt {
            Statement::Insert(ins) => dml::exec_insert(&mut ctx, ins, params),
            Statement::Update(upd) => dml::exec_update(&mut ctx, upd, params),
            Statement::Delete(del) => dml::exec_delete(&mut ctx, del, params),
            _ => Err(PgError::internal("run_dml on non-DML")),
        };
        let cost = ctx.cost;
        self.finish_ctx(cost);
        match result {
            Ok(n) => {
                if implicit {
                    self.commit_current()?;
                }
                Ok(QueryResult::Affected(n))
            }
            Err(e) => {
                if implicit {
                    self.rollback_current();
                }
                Err(e)
            }
        }
    }

    fn run_utility(&mut self, stmt: &Statement) -> PgResult<QueryResult> {
        match stmt {
            Statement::CreateTable(ct) => {
                self.engine.ddl_create_table(ct)?;
                Ok(QueryResult::Empty)
            }
            Statement::CreateIndex(ci) => {
                self.engine.ddl_create_index(ci)?;
                Ok(QueryResult::Empty)
            }
            Statement::CreateRollup(_) | Statement::DropRollup { .. } => Err(PgError::unsupported(
                "ROLLUP tables require the citrus extension",
            )),
            Statement::DropTable { names, if_exists } => {
                for n in names {
                    // exclusive lock: wait out readers/writers
                    if let Ok(meta) = self.engine.table_meta(n) {
                        let implicit = self.xid.is_none();
                        let xid = self.ensure_xid()?;
                        self.engine.locks.acquire(
                            xid,
                            LockKey::Table(meta.id),
                            LockMode::Exclusive,
                        )?;
                        self.engine.ddl_drop_table(n, *if_exists)?;
                        if implicit {
                            self.commit_current()?;
                        }
                    } else {
                        self.engine.ddl_drop_table(n, *if_exists)?;
                    }
                }
                Ok(QueryResult::Empty)
            }
            Statement::Truncate { tables } => {
                let implicit = self.xid.is_none();
                let xid = self.ensure_xid()?;
                for t in tables {
                    let meta = self.engine.table_meta(t)?;
                    self.engine.locks.acquire(xid, LockKey::Table(meta.id), LockMode::Exclusive)?;
                    self.engine.truncate_table(t)?;
                }
                if implicit {
                    self.commit_current()?;
                }
                Ok(QueryResult::Empty)
            }
            Statement::Copy(_) => Err(PgError::unsupported(
                "COPY FROM STDIN via execute(); use Session::copy_rows / copy_text",
            )),
            other => Err(PgError::internal(format!("unexpected utility statement {other:?}"))),
        }
    }

    fn run_explain(&mut self, inner: &Statement, params: &[Datum]) -> PgResult<QueryResult> {
        let Statement::Select(sel) = inner else {
            return Err(PgError::unsupported("EXPLAIN is supported for SELECT only"));
        };
        let mut ctx = self.make_ctx();
        let plan = exec::build_select_plan(&mut ctx, sel, params)?;
        let mut lines = Vec::new();
        {
            let cat = self.engine.catalog.read();
            plan.input.describe(&cat, &mut lines, 0);
        }
        if plan.agg.is_some() {
            lines.insert(0, "HashAggregate".to_string());
        }
        if !plan.order_by.is_empty() {
            lines.insert(0, "Sort".to_string());
        }
        Ok(QueryResult::Rows {
            columns: vec!["QUERY PLAN".to_string()],
            rows: lines.into_iter().map(|l| vec![Datum::Text(l)]).collect(),
        })
    }

    /// FROM-less SELECT whose projection calls registered UDFs.
    fn try_udf_select(
        &mut self,
        sel: &sqlparse::ast::Select,
        params: &[Datum],
    ) -> PgResult<Option<QueryResult>> {
        let has_udf = sel.projection.iter().any(|item| {
            matches!(item, SelectItem::Expr { expr: Expr::Func(f), .. }
                if self.engine.udf(&f.name).is_some())
        });
        if !has_udf {
            return Ok(None);
        }
        let mut columns = Vec::new();
        let mut row = Vec::new();
        let scope = RowScope::default();
        let ectx = crate::expr::EvalCtx::default();
        for item in &sel.projection {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(PgError::unsupported("wildcard in UDF select"));
            };
            match expr {
                Expr::Func(f) if self.engine.udf(&f.name).is_some() => {
                    let udf = self.engine.udf(&f.name).expect("checked");
                    let args: Vec<Datum> = f
                        .args
                        .iter()
                        .map(|a| {
                            let b = bind(a, &scope, params)?;
                            eval(&b, &vec![], &ectx)
                        })
                        .collect::<PgResult<_>>()?;
                    columns.push(alias.clone().unwrap_or_else(|| f.name.clone()));
                    row.push(udf(self, &args)?);
                }
                other => {
                    let b = bind(other, &scope, params)?;
                    columns.push(alias.clone().unwrap_or_else(|| "?column?".to_string()));
                    row.push(eval(&b, &vec![], &ectx)?);
                }
            }
        }
        Ok(Some(QueryResult::Rows { columns, rows: vec![row] }))
    }

    // ---------------- COPY API ----------------

    /// Bulk-load rows (the `COPY .. FROM STDIN` data path). Operates on this
    /// engine's tables directly; the distributed layer provides its own COPY
    /// entry point that fans rows out to shards before calling this.
    pub fn copy_rows(
        &mut self,
        table: &str,
        columns: &[String],
        rows: Vec<Row>,
    ) -> PgResult<u64> {
        self.copy_rows_local(table, columns, rows)
    }

    /// Bulk-load rows bypassing extension hooks (shard-level COPY).
    pub fn copy_rows_local(
        &mut self,
        table: &str,
        columns: &[String],
        rows: Vec<Row>,
    ) -> PgResult<u64> {
        let implicit = self.xid.is_none();
        self.ensure_xid()?;
        let mut ctx = self.make_ctx();
        let result = dml::exec_copy(&mut ctx, table, columns, rows);
        let cost = ctx.cost;
        self.finish_ctx(cost);
        match result {
            Ok(n) => {
                if implicit {
                    self.commit_current()?;
                }
                Ok(n)
            }
            Err(e) => {
                if implicit {
                    self.rollback_current();
                }
                Err(e)
            }
        }
    }

    /// Parse CSV text (comma-separated, `\N` = NULL) and bulk-load it.
    pub fn copy_text(&mut self, table: &str, columns: &[String], data: &str) -> PgResult<u64> {
        let meta = self.engine.table_meta(table)?;
        let target: Vec<usize> = if columns.is_empty() {
            (0..meta.columns.len()).collect()
        } else {
            columns
                .iter()
                .map(|n| meta.column_index(n).ok_or_else(|| PgError::undefined_column(n)))
                .collect::<PgResult<_>>()?
        };
        let mut rows = Vec::new();
        for line in data.lines() {
            if line.is_empty() {
                continue;
            }
            let fields = split_csv(line);
            if fields.len() != target.len() {
                return Err(PgError::new(
                    ErrorCode::InvalidText,
                    format!("COPY expected {} fields, found {}", target.len(), fields.len()),
                ));
            }
            let row: Row = fields
                .into_iter()
                .map(|f| match f {
                    None => Datum::Null,
                    Some(text) => Datum::Text(text),
                })
                .collect();
            rows.push(row);
        }
        self.copy_rows(table, columns, rows)
    }

    /// Cancel flag shared with the lock manager (tests & the distributed
    /// deadlock detector use this).
    pub fn cancel_flag(&self) -> CancelFlag {
        self.cancel.clone()
    }
}

/// Split one CSV line; `\N` is NULL, `""` quoting supported.
fn split_csv(line: &str) -> Vec<Option<String>> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    let mut quoted = false;
    loop {
        match chars.next() {
            None => {
                out.push(finish_field(field, quoted));
                break;
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
            }
            Some(',') if !in_quotes => {
                out.push(finish_field(std::mem::take(&mut field), quoted));
                quoted = false;
            }
            Some(c) => field.push(c),
        }
    }
    out
}

fn finish_field(field: String, quoted: bool) -> Option<String> {
    if !quoted && field == "\\N" {
        None
    } else {
        Some(field)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.xid.is_some() {
            self.rollback_current();
        }
        self.engine.connection_closed();
    }
}
