//! Table storage: the MVCC heap (PostgreSQL's default layout) and an
//! append-only columnar store (the "columnar storage" capability Table 2
//! requires for data-warehousing workloads).

use crate::error::{ErrorCode, PgError, PgResult};
use crate::txn::{tuple_visible, Snapshot, TxStatus, TxnManager, Xid, INVALID_XID};
use crate::types::Row;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// One heap tuple version. `data` is immutable once written; updates append
/// a new version sharing the same `row_id`.
#[derive(Debug)]
pub struct HeapTuple {
    /// Stable logical row identity, shared across MVCC versions.
    pub row_id: u64,
    pub xmin: Xid,
    xmax: AtomicU64,
    /// Tombstone set by vacuum; dead slots are invisible and may be reused.
    dead: std::sync::atomic::AtomicBool,
    pub data: Row,
}

impl HeapTuple {
    pub fn xmax(&self) -> Xid {
        self.xmax.load(Ordering::Acquire)
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }
}

/// Result of attempting to expire (delete/update) a tuple version.
#[derive(Debug, PartialEq, Eq)]
pub enum ExpireOutcome {
    /// xmax set; the caller's transaction now owns the deletion.
    Expired,
    /// Another in-progress/prepared transaction already set xmax. With row
    /// locks held this indicates a logic error upstream.
    BusyBy(Xid),
    /// A committed transaction already deleted it (the version is stale).
    AlreadyDeleted(Xid),
}

#[derive(Default)]
struct HeapInner {
    tuples: Vec<HeapTuple>,
    /// row_id → slot indexes of its versions (old → new).
    versions: HashMap<u64, Vec<u32>>,
}

/// MVCC heap for one table.
pub struct HeapStore {
    inner: RwLock<HeapInner>,
    next_row_id: AtomicU64,
    live_estimate: AtomicI64,
    dead_estimate: AtomicI64,
}

impl Default for HeapStore {
    fn default() -> Self {
        HeapStore {
            inner: RwLock::new(HeapInner::default()),
            next_row_id: AtomicU64::new(1),
            live_estimate: AtomicI64::new(0),
            dead_estimate: AtomicI64::new(0),
        }
    }
}

impl HeapStore {
    /// Insert a new logical row; returns its stable row id.
    pub fn insert(&self, xid: Xid, data: Row) -> u64 {
        let row_id = self.next_row_id.fetch_add(1, Ordering::Relaxed);
        self.insert_version(row_id, xid, data);
        self.live_estimate.fetch_add(1, Ordering::Relaxed);
        row_id
    }

    /// Insert a specific version (update chains, WAL replay, shard moves).
    pub fn insert_version(&self, row_id: u64, xid: Xid, data: Row) {
        let mut inner = self.inner.write();
        let slot = inner.tuples.len() as u32;
        inner.tuples.push(HeapTuple {
            row_id,
            xmin: xid,
            xmax: AtomicU64::new(INVALID_XID),
            dead: std::sync::atomic::AtomicBool::new(false),
            data,
        });
        inner.versions.entry(row_id).or_default().push(slot);
        // keep next_row_id ahead of replayed ids
        let next = self.next_row_id.load(Ordering::Relaxed);
        if row_id >= next {
            self.next_row_id.store(row_id + 1, Ordering::Relaxed);
        }
    }

    /// Run `f` over every visible tuple under `snap`.
    pub fn scan_visible<F: FnMut(&HeapTuple)>(
        &self,
        txns: &TxnManager,
        snap: &Snapshot,
        mut f: F,
    ) {
        let inner = self.inner.read();
        for t in &inner.tuples {
            if !t.is_dead() && tuple_visible(txns, snap, t.xmin, t.xmax()) {
                f(t);
            }
        }
    }

    /// All slots (visible or not); used by vacuum and replication.
    pub fn scan_all<F: FnMut(&HeapTuple)>(&self, mut f: F) {
        let inner = self.inner.read();
        for t in &inner.tuples {
            if !t.is_dead() {
                f(t);
            }
        }
    }

    /// The visible version of `row_id` under `snap`, if any.
    pub fn visible_version(
        &self,
        txns: &TxnManager,
        snap: &Snapshot,
        row_id: u64,
    ) -> Option<Row> {
        let inner = self.inner.read();
        let slots = inner.versions.get(&row_id)?;
        // newest first: at most one version is visible to a snapshot
        for &slot in slots.iter().rev() {
            let t = &inner.tuples[slot as usize];
            if !t.is_dead() && tuple_visible(txns, snap, t.xmin, t.xmax()) {
                return Some(t.data.clone());
            }
        }
        None
    }

    /// Expire the currently-visible version of `row_id` (the delete half of
    /// DELETE/UPDATE). Caller must hold the row lock.
    pub fn expire(
        &self,
        txns: &TxnManager,
        snap: &Snapshot,
        row_id: u64,
        xid: Xid,
    ) -> PgResult<ExpireOutcome> {
        let inner = self.inner.read();
        let slots = inner
            .versions
            .get(&row_id)
            .ok_or_else(|| PgError::internal("expire: unknown row id"))?;
        for &slot in slots.iter().rev() {
            let t = &inner.tuples[slot as usize];
            if t.is_dead() {
                continue;
            }
            if !tuple_visible(txns, snap, t.xmin, t.xmax()) {
                continue;
            }
            // try to claim the version
            let old = t.xmax.load(Ordering::Acquire);
            if old != INVALID_XID && old != xid {
                match txns.status(old) {
                    TxStatus::Committed => return Ok(ExpireOutcome::AlreadyDeleted(old)),
                    TxStatus::InProgress | TxStatus::Prepared => {
                        return Ok(ExpireOutcome::BusyBy(old))
                    }
                    TxStatus::Aborted => {}
                }
            }
            t.xmax.store(xid, Ordering::Release);
            return Ok(ExpireOutcome::Expired);
        }
        Ok(ExpireOutcome::AlreadyDeleted(INVALID_XID))
    }

    /// Versions that could still be (or become) live: insertion not aborted
    /// and not deleted by a committed transaction. Used by unique-constraint
    /// checks, which must also conflict with concurrent uncommitted inserts.
    pub fn live_or_pending_versions(&self, txns: &TxnManager, row_id: u64) -> Vec<Row> {
        let inner = self.inner.read();
        let Some(slots) = inner.versions.get(&row_id) else { return Vec::new() };
        let mut out = Vec::new();
        for &slot in slots {
            let t = &inner.tuples[slot as usize];
            if t.is_dead() || txns.status(t.xmin) == TxStatus::Aborted {
                continue;
            }
            let xmax = t.xmax();
            if xmax != INVALID_XID && txns.status(xmax) == TxStatus::Committed {
                continue;
            }
            out.push(t.data.clone());
        }
        out
    }

    /// Force-expire the newest non-dead version of a row (WAL replay path).
    pub fn force_expire_latest(&self, row_id: u64, xid: Xid) {
        let inner = self.inner.read();
        if let Some(slots) = inner.versions.get(&row_id) {
            if let Some(&slot) = slots.last() {
                inner.tuples[slot as usize].xmax.store(xid, Ordering::Release);
            }
        }
    }

    /// Approximate live row count (planner statistics).
    pub fn live_estimate(&self) -> u64 {
        self.live_estimate.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn dead_estimate(&self) -> u64 {
        self.dead_estimate.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn adjust_live(&self, delta: i64) {
        self.live_estimate.fetch_add(delta, Ordering::Relaxed);
        if delta < 0 {
            self.dead_estimate.fetch_add(-delta, Ordering::Relaxed);
        }
    }

    /// Total slots including dead versions (page math uses this: dead
    /// versions occupy space until vacuumed — the bloat the paper notes
    /// auto-vacuum must keep up with).
    pub fn slot_count(&self) -> u64 {
        self.inner.read().tuples.len() as u64
    }

    /// Vacuum: tombstone versions no snapshot can still see. Returns the
    /// reclaimed `(row_id, data)` pairs so the caller can clean indexes.
    pub fn vacuum(&self, txns: &TxnManager, horizon: Xid) -> Vec<(u64, Row)> {
        let mut inner = self.inner.write();
        let mut reclaimed = Vec::new();
        let HeapInner { tuples, versions } = &mut *inner;
        for t in tuples.iter() {
            if t.is_dead() {
                continue;
            }
            let xmax = t.xmax();
            let dead = if txns.status(t.xmin) == TxStatus::Aborted {
                true
            } else {
                xmax != INVALID_XID
                    && xmax < horizon
                    && txns.status(xmax) == TxStatus::Committed
            };
            if dead {
                t.dead.store(true, Ordering::Release);
                reclaimed.push((t.row_id, t.data.clone()));
            }
        }
        // drop dead slots from version chains
        for slots in versions.values_mut() {
            slots.retain(|&s| !tuples[s as usize].is_dead());
        }
        versions.retain(|_, v| !v.is_empty());
        self.dead_estimate
            .fetch_sub(reclaimed.len() as i64, Ordering::Relaxed);
        reclaimed
    }

    /// Non-transactional clear (TRUNCATE under an exclusive table lock).
    pub fn truncate(&self) {
        let mut inner = self.inner.write();
        inner.tuples.clear();
        inner.versions.clear();
        self.live_estimate.store(0, Ordering::Relaxed);
        self.dead_estimate.store(0, Ordering::Relaxed);
    }
}

/// Append-only column store. Updates and deletes are unsupported, matching
/// the paper's note that the columnar path is for analytical append-mostly
/// data.
pub struct ColumnarStore {
    stripes: RwLock<Vec<ColumnarStripe>>,
    live_estimate: AtomicI64,
    next_seq: AtomicU64,
}

struct ColumnarStripe {
    /// Stable stripe sequence number (per table). WAL records carry it so
    /// replay and shard-move catch-up can deduplicate stripes.
    seq: u64,
    xmin: Xid,
    rows: usize,
    /// columns[c][r] = value of column c in row r of this stripe.
    columns: Vec<Vec<crate::types::Datum>>,
}

impl Default for ColumnarStore {
    fn default() -> Self {
        ColumnarStore {
            stripes: RwLock::new(Vec::new()),
            live_estimate: AtomicI64::new(0),
            next_seq: AtomicU64::new(1),
        }
    }
}

fn stripe_visible(txns: &TxnManager, snap: &Snapshot, xmin: Xid) -> bool {
    if xmin == snap.my_xid && xmin != INVALID_XID {
        true
    } else if snap.considers_running(xmin) {
        false
    } else {
        txns.status(xmin) == TxStatus::Committed
    }
}

impl ColumnarStore {
    /// Append a batch of rows as one stripe; returns the stripe's sequence
    /// number (for WAL logging).
    pub fn append(&self, xid: Xid, rows: Vec<Row>, column_count: usize) -> PgResult<u64> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.append_with_seq(xid, seq, rows, column_count)?;
        Ok(seq)
    }

    /// Append a stripe under a caller-supplied sequence number (WAL replay
    /// and shard-move copy, which must preserve source stripe identity).
    pub fn append_with_seq(
        &self,
        xid: Xid,
        seq: u64,
        rows: Vec<Row>,
        column_count: usize,
    ) -> PgResult<()> {
        if rows.iter().any(|r| r.len() != column_count) {
            return Err(PgError::internal("columnar append: row arity mismatch"));
        }
        let n = rows.len();
        let mut columns: Vec<Vec<crate::types::Datum>> =
            (0..column_count).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        self.stripes.write().push(ColumnarStripe { seq, xmin: xid, rows: n, columns });
        self.live_estimate.fetch_add(n as i64, Ordering::Relaxed);
        // keep locally-generated seqs ahead of replayed ones
        let next = self.next_seq.load(Ordering::Relaxed);
        if seq >= next {
            self.next_seq.store(seq + 1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Scan visible rows, materialising only `projection` columns (others
    /// come back as NULL) — the columnar I/O advantage.
    pub fn scan_visible(
        &self,
        txns: &TxnManager,
        snap: &Snapshot,
        projection: Option<&[usize]>,
        mut f: impl FnMut(Row),
    ) {
        let stripes = self.stripes.read();
        for s in stripes.iter() {
            if !stripe_visible(txns, snap, s.xmin) {
                continue;
            }
            for r in 0..s.rows {
                let row: Row = match projection {
                    None => s.columns.iter().map(|col| col[r].clone()).collect(),
                    Some(cols) => {
                        let mut row =
                            vec![crate::types::Datum::Null; s.columns.len()];
                        for &c in cols {
                            row[c] = s.columns[c][r].clone();
                        }
                        row
                    }
                };
                f(row);
            }
        }
    }

    /// Walk visible stripes without materialising rows: `f(seq, rows,
    /// columns)` sees the raw column vectors. This is the batched-execution
    /// entry point — the executor slices these into `ColumnBatch`es, cloning
    /// only the columns it was asked for.
    pub fn for_each_visible_stripe(
        &self,
        txns: &TxnManager,
        snap: &Snapshot,
        mut f: impl FnMut(u64, usize, &[Vec<crate::types::Datum>]),
    ) {
        let stripes = self.stripes.read();
        for s in stripes.iter() {
            if stripe_visible(txns, snap, s.xmin) {
                f(s.seq, s.rows, &s.columns);
            }
        }
    }

    /// Visible stripes as `(seq, rows)` pairs — the stripe-wise copy used by
    /// shard moves, which must keep stripe identity for catch-up dedup.
    pub fn visible_stripe_rows(&self, txns: &TxnManager, snap: &Snapshot) -> Vec<(u64, Vec<Row>)> {
        let mut out = Vec::new();
        self.for_each_visible_stripe(txns, snap, |seq, rows, columns| {
            let materialized: Vec<Row> = (0..rows)
                .map(|r| columns.iter().map(|col| col[r].clone()).collect())
                .collect();
            out.push((seq, materialized));
        });
        out
    }

    pub fn live_estimate(&self) -> u64 {
        self.live_estimate.load(Ordering::Relaxed).max(0) as u64
    }

    pub fn truncate(&self) {
        self.stripes.write().clear();
        self.live_estimate.store(0, Ordering::Relaxed);
    }

    pub fn stripe_count(&self) -> usize {
        self.stripes.read().len()
    }
}

/// The storage for one table: heap or columnar.
pub enum TableStore {
    Heap(HeapStore),
    Columnar(ColumnarStore),
}

impl TableStore {
    pub fn heap(&self) -> PgResult<&HeapStore> {
        match self {
            TableStore::Heap(h) => Ok(h),
            TableStore::Columnar(_) => Err(PgError::new(
                ErrorCode::FeatureNotSupported,
                "operation requires heap storage (columnar tables are append-only)",
            )),
        }
    }

    pub fn columnar(&self) -> PgResult<&ColumnarStore> {
        match self {
            TableStore::Columnar(c) => Ok(c),
            TableStore::Heap(_) => {
                Err(PgError::internal("operation requires columnar storage"))
            }
        }
    }

    /// Visible rows regardless of storage layout (full materialisation).
    /// Shard moves and create_distributed_table row migration use this so
    /// columnar shell tables relocate like heap ones.
    pub fn scan_visible_rows(&self, txns: &TxnManager, snap: &Snapshot) -> Vec<Row> {
        let mut out = Vec::new();
        match self {
            TableStore::Heap(h) => {
                h.scan_visible(txns, snap, |t| out.push(t.data.clone()))
            }
            TableStore::Columnar(c) => c.scan_visible(txns, snap, None, |r| out.push(r)),
        }
        out
    }

    pub fn live_estimate(&self) -> u64 {
        match self {
            TableStore::Heap(h) => h.live_estimate(),
            TableStore::Columnar(c) => c.live_estimate(),
        }
    }

    pub fn truncate(&self) {
        match self {
            TableStore::Heap(h) => h.truncate(),
            TableStore::Columnar(c) => c.truncate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Datum;

    fn row(v: i64) -> Row {
        vec![Datum::Int(v)]
    }

    #[test]
    fn insert_scan_visibility() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        heap.insert(x1, row(1));
        // invisible to a concurrent snapshot
        let snap = tm.snapshot(INVALID_XID);
        let mut seen = 0;
        heap.scan_visible(&tm, &snap, |_| seen += 1);
        assert_eq!(seen, 0);
        tm.commit(x1);
        let snap = tm.snapshot(INVALID_XID);
        let mut seen = 0;
        heap.scan_visible(&tm, &snap, |_| seen += 1);
        assert_eq!(seen, 1);
    }

    #[test]
    fn update_creates_version_chain() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        let rid = heap.insert(x1, row(1));
        tm.commit(x1);

        let x2 = tm.begin();
        let snap2 = tm.snapshot(x2);
        assert_eq!(heap.expire(&tm, &snap2, rid, x2).unwrap(), ExpireOutcome::Expired);
        heap.insert_version(rid, x2, row(2));
        // old snapshot still sees v1
        let old_snap = tm.snapshot(INVALID_XID);
        assert_eq!(heap.visible_version(&tm, &old_snap, rid), Some(row(1)));
        // updater sees v2
        assert_eq!(heap.visible_version(&tm, &tm.snapshot(x2), rid), Some(row(2)));
        tm.commit(x2);
        assert_eq!(heap.visible_version(&tm, &tm.snapshot(INVALID_XID), rid), Some(row(2)));
    }

    #[test]
    fn expire_conflicts_reported() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        let rid = heap.insert(x1, row(1));
        tm.commit(x1);

        let x2 = tm.begin();
        heap.expire(&tm, &tm.snapshot(x2), rid, x2).unwrap();
        // concurrent deleter sees Busy
        let x3 = tm.begin();
        assert_eq!(
            heap.expire(&tm, &tm.snapshot(x3), rid, x3).unwrap(),
            ExpireOutcome::BusyBy(x2)
        );
        tm.commit(x2);
        // after commit, a fresh snapshot finds nothing to expire
        let snap3 = tm.snapshot(x3);
        assert_eq!(
            heap.expire(&tm, &snap3, rid, x3).unwrap(),
            ExpireOutcome::AlreadyDeleted(INVALID_XID)
        );
        tm.abort(x3);
    }

    #[test]
    fn aborted_expire_is_retaken() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        let rid = heap.insert(x1, row(1));
        tm.commit(x1);
        let x2 = tm.begin();
        heap.expire(&tm, &tm.snapshot(x2), rid, x2).unwrap();
        tm.abort(x2);
        // row is still visible; a new txn can expire it
        let x3 = tm.begin();
        let snap = tm.snapshot(x3);
        assert_eq!(heap.visible_version(&tm, &snap, rid), Some(row(1)));
        assert_eq!(heap.expire(&tm, &snap, rid, x3).unwrap(), ExpireOutcome::Expired);
    }

    #[test]
    fn vacuum_reclaims_dead_versions() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        let rid = heap.insert(x1, row(1));
        tm.commit(x1);
        let x2 = tm.begin();
        heap.expire(&tm, &tm.snapshot(x2), rid, x2).unwrap();
        heap.insert_version(rid, x2, row(2));
        tm.commit(x2);
        assert_eq!(heap.slot_count(), 2);
        let reclaimed = heap.vacuum(&tm, tm.oldest_active_xid());
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].1, row(1));
        // live version survives
        assert_eq!(heap.visible_version(&tm, &tm.snapshot(INVALID_XID), rid), Some(row(2)));
        // re-vacuum finds nothing
        assert!(heap.vacuum(&tm, tm.oldest_active_xid()).is_empty());
    }

    #[test]
    fn vacuum_respects_horizon() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        let rid = heap.insert(x1, row(1));
        tm.commit(x1);
        let old_reader = tm.begin(); // holds the horizon back
        let x2 = tm.begin();
        heap.expire(&tm, &tm.snapshot(x2), rid, x2).unwrap();
        tm.commit(x2);
        assert!(heap.vacuum(&tm, tm.oldest_active_xid()).is_empty());
        tm.commit(old_reader);
        assert_eq!(heap.vacuum(&tm, tm.oldest_active_xid()).len(), 1);
    }

    #[test]
    fn vacuum_reclaims_aborted_inserts() {
        let tm = TxnManager::default();
        let heap = HeapStore::default();
        let x1 = tm.begin();
        heap.insert(x1, row(1));
        tm.abort(x1);
        assert_eq!(heap.vacuum(&tm, tm.oldest_active_xid()).len(), 1);
    }

    #[test]
    fn columnar_append_and_projection() {
        let tm = TxnManager::default();
        let col = ColumnarStore::default();
        let x1 = tm.begin();
        col.append(x1, vec![vec![Datum::Int(1), Datum::from_text("a")]], 2).unwrap();
        tm.commit(x1);
        let snap = tm.snapshot(INVALID_XID);
        let mut rows = Vec::new();
        col.scan_visible(&tm, &snap, Some(&[0]), |r| rows.push(r));
        assert_eq!(rows, vec![vec![Datum::Int(1), Datum::Null]]);
        let mut full = Vec::new();
        col.scan_visible(&tm, &snap, None, |r| full.push(r));
        assert_eq!(full[0][1], Datum::from_text("a"));
    }

    #[test]
    fn columnar_uncommitted_invisible() {
        let tm = TxnManager::default();
        let col = ColumnarStore::default();
        let x1 = tm.begin();
        col.append(x1, vec![row(1)], 1).unwrap();
        let mut n = 0;
        col.scan_visible(&tm, &tm.snapshot(INVALID_XID), None, |_| n += 1);
        assert_eq!(n, 0);
        // own snapshot sees it
        let mut n = 0;
        col.scan_visible(&tm, &tm.snapshot(x1), None, |_| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn table_store_dispatch() {
        let heap = TableStore::Heap(HeapStore::default());
        assert!(heap.heap().is_ok());
        let col = TableStore::Columnar(ColumnarStore::default());
        assert!(col.heap().is_err());
        assert_eq!(col.live_estimate(), 0);
    }
}
