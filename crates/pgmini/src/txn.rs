//! Transaction manager: xid allocation, commit/abort status, MVCC snapshots,
//! and prepared transactions (`PREPARE TRANSACTION` / `COMMIT PREPARED`) —
//! the primitives the distributed layer's two-phase commit is built on.

use crate::error::{ErrorCode, PgError, PgResult};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Transaction id. 0 is "invalid" (no transaction), like PostgreSQL.
pub type Xid = u64;

pub const INVALID_XID: Xid = 0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    InProgress,
    Committed,
    Aborted,
    /// First phase of 2PC done: effects durable, locks held, outcome pending.
    Prepared,
}

/// An MVCC snapshot: which transactions' effects are visible.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Every xid < xmin is finished.
    pub xmin: Xid,
    /// Every xid >= xmax had not started.
    pub xmax: Xid,
    /// In-progress xids in `[xmin, xmax)` at snapshot time (sorted).
    pub active: Vec<Xid>,
    /// The observing transaction's own xid (0 when read-only/implicit).
    pub my_xid: Xid,
}

impl Snapshot {
    /// Would a change made by `xid` be visible, given it ultimately committed?
    /// Own-transaction changes are always visible.
    pub fn considers_running(&self, xid: Xid) -> bool {
        if xid >= self.xmax {
            return true;
        }
        if xid < self.xmin {
            return false;
        }
        self.active.binary_search(&xid).is_ok()
    }
}

#[derive(Debug, Default)]
struct TxnTable {
    status: HashMap<Xid, TxStatus>,
    active: BTreeSet<Xid>,
    /// gid → xid for prepared transactions.
    prepared: HashMap<String, Xid>,
}

/// Engine-wide transaction state.
#[derive(Debug)]
pub struct TxnManager {
    next_xid: AtomicU64,
    inner: Mutex<TxnTable>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager { next_xid: AtomicU64::new(1), inner: Mutex::new(TxnTable::default()) }
    }
}

impl TxnManager {
    /// Start a transaction: allocate an xid and mark it in progress.
    pub fn begin(&self) -> Xid {
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        let mut t = self.inner.lock();
        t.status.insert(xid, TxStatus::InProgress);
        t.active.insert(xid);
        xid
    }

    /// Take an MVCC snapshot for `my_xid` (pass [`INVALID_XID`] when outside a
    /// transaction).
    pub fn snapshot(&self, my_xid: Xid) -> Snapshot {
        let t = self.inner.lock();
        let xmax = self.next_xid.load(Ordering::Relaxed);
        let active: Vec<Xid> = t.active.iter().copied().filter(|&x| x != my_xid).collect();
        let xmin = active.first().copied().unwrap_or(xmax).min(if my_xid != INVALID_XID {
            my_xid
        } else {
            xmax
        });
        Snapshot { xmin, xmax, active, my_xid }
    }

    pub fn status(&self, xid: Xid) -> TxStatus {
        if xid == INVALID_XID {
            return TxStatus::Aborted;
        }
        self.inner
            .lock()
            .status
            .get(&xid)
            .copied()
            // unknown old xids were truncated away after commit
            .unwrap_or(TxStatus::Committed)
    }

    pub fn commit(&self, xid: Xid) {
        let mut t = self.inner.lock();
        t.status.insert(xid, TxStatus::Committed);
        t.active.remove(&xid);
    }

    pub fn abort(&self, xid: Xid) {
        let mut t = self.inner.lock();
        t.status.insert(xid, TxStatus::Aborted);
        t.active.remove(&xid);
    }

    /// Phase one of 2PC: transition `xid` to prepared under `gid`. The xid
    /// stays in the active set so concurrent snapshots keep treating it as
    /// running (its outcome is undecided).
    pub fn prepare(&self, xid: Xid, gid: &str) -> PgResult<()> {
        let mut t = self.inner.lock();
        if t.prepared.contains_key(gid) {
            return Err(PgError::new(
                ErrorCode::InvalidTransactionState,
                format!("transaction identifier \"{gid}\" is already in use"),
            ));
        }
        t.status.insert(xid, TxStatus::Prepared);
        t.prepared.insert(gid.to_string(), xid);
        Ok(())
    }

    /// Finish a prepared transaction. Returns its xid so the caller can
    /// release its locks.
    pub fn finish_prepared(&self, gid: &str, commit: bool) -> PgResult<Xid> {
        let mut t = self.inner.lock();
        let xid = t.prepared.remove(gid).ok_or_else(|| {
            PgError::new(
                ErrorCode::InvalidTransactionState,
                format!("prepared transaction with identifier \"{gid}\" does not exist"),
            )
        })?;
        t.status.insert(xid, if commit { TxStatus::Committed } else { TxStatus::Aborted });
        t.active.remove(&xid);
        Ok(xid)
    }

    /// Gids of all currently prepared transactions (the recovery daemon's
    /// `pg_prepared_xacts` view).
    pub fn prepared_gids(&self) -> Vec<String> {
        let t = self.inner.lock();
        let mut v: Vec<String> = t.prepared.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn prepared_xid(&self, gid: &str) -> Option<Xid> {
        self.inner.lock().prepared.get(gid).copied()
    }

    /// Oldest xid any active snapshot could still need (vacuum horizon).
    pub fn oldest_active_xid(&self) -> Xid {
        let t = self.inner.lock();
        t.active.iter().next().copied().unwrap_or_else(|| self.next_xid.load(Ordering::Relaxed))
    }

    /// Number of in-progress (incl. prepared) transactions.
    pub fn active_count(&self) -> usize {
        self.inner.lock().active.len()
    }
}

/// MVCC visibility: is a tuple with the given `xmin`/`xmax` visible to `snap`?
pub fn tuple_visible(txns: &TxnManager, snap: &Snapshot, xmin: Xid, xmax: Xid) -> bool {
    // Inserted by me? visible unless I also deleted it.
    let inserted_visible = if xmin == snap.my_xid && xmin != INVALID_XID {
        true
    } else if snap.considers_running(xmin) {
        false
    } else {
        txns.status(xmin) == TxStatus::Committed
    };
    if !inserted_visible {
        return false;
    }
    if xmax == INVALID_XID {
        return true;
    }
    // Deleted by me? gone.
    if xmax == snap.my_xid && xmax != INVALID_XID {
        return false;
    }
    // Deleter still running (or prepared) at snapshot time → still visible.
    if snap.considers_running(xmax) {
        return true;
    }
    match txns.status(xmax) {
        TxStatus::Committed => false,
        // prepared deleter: outcome unknown, row stays visible
        TxStatus::Prepared | TxStatus::InProgress => true,
        TxStatus::Aborted => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_isolation_basics() {
        let tm = TxnManager::default();
        let t1 = tm.begin();
        let snap_before = tm.snapshot(INVALID_XID);
        assert!(snap_before.considers_running(t1));
        tm.commit(t1);
        // old snapshot still treats t1 as running (repeatable within stmt)
        assert!(snap_before.considers_running(t1));
        let snap_after = tm.snapshot(INVALID_XID);
        assert!(!snap_after.considers_running(t1));
        assert_eq!(tm.status(t1), TxStatus::Committed);
    }

    #[test]
    fn visibility_rules() {
        let tm = TxnManager::default();
        let writer = tm.begin();
        let reader_snap = tm.snapshot(INVALID_XID);
        // uncommitted insert invisible to others
        assert!(!tuple_visible(&tm, &reader_snap, writer, INVALID_XID));
        // ...but visible to itself
        let own_snap = tm.snapshot(writer);
        assert!(tuple_visible(&tm, &own_snap, writer, INVALID_XID));
        tm.commit(writer);
        let fresh = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &fresh, writer, INVALID_XID));
    }

    #[test]
    fn delete_visibility() {
        let tm = TxnManager::default();
        let inserter = tm.begin();
        tm.commit(inserter);
        let deleter = tm.begin();
        let concurrent = tm.snapshot(INVALID_XID);
        // deleter in progress: row still visible to others
        assert!(tuple_visible(&tm, &concurrent, inserter, deleter));
        // deleter sees its own delete
        let own = tm.snapshot(deleter);
        assert!(!tuple_visible(&tm, &own, inserter, deleter));
        tm.commit(deleter);
        let after = tm.snapshot(INVALID_XID);
        assert!(!tuple_visible(&tm, &after, inserter, deleter));
        // old snapshot taken during delete still sees the row
        assert!(tuple_visible(&tm, &concurrent, inserter, deleter));
    }

    #[test]
    fn aborted_delete_leaves_row_visible() {
        let tm = TxnManager::default();
        let inserter = tm.begin();
        tm.commit(inserter);
        let deleter = tm.begin();
        tm.abort(deleter);
        let snap = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &snap, inserter, deleter));
    }

    #[test]
    fn prepared_transactions_lifecycle() {
        let tm = TxnManager::default();
        let xid = tm.begin();
        tm.prepare(xid, "gid_1").unwrap();
        assert_eq!(tm.status(xid), TxStatus::Prepared);
        assert_eq!(tm.prepared_gids(), vec!["gid_1".to_string()]);
        // prepared writer's rows are not yet visible
        let snap = tm.snapshot(INVALID_XID);
        assert!(!tuple_visible(&tm, &snap, xid, INVALID_XID));
        // duplicate gid rejected
        let other = tm.begin();
        assert!(tm.prepare(other, "gid_1").is_err());
        assert_eq!(tm.finish_prepared("gid_1", true).unwrap(), xid);
        assert_eq!(tm.status(xid), TxStatus::Committed);
        assert!(tm.finish_prepared("gid_1", true).is_err());
        let fresh = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &fresh, xid, INVALID_XID));
    }

    #[test]
    fn prepared_deleter_keeps_row_visible() {
        let tm = TxnManager::default();
        let ins = tm.begin();
        tm.commit(ins);
        let del = tm.begin();
        tm.prepare(del, "g").unwrap();
        let snap = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &snap, ins, del));
        tm.finish_prepared("g", true).unwrap();
        let snap2 = tm.snapshot(INVALID_XID);
        assert!(!tuple_visible(&tm, &snap2, ins, del));
    }

    #[test]
    fn vacuum_horizon() {
        let tm = TxnManager::default();
        let a = tm.begin();
        let b = tm.begin();
        assert_eq!(tm.oldest_active_xid(), a);
        tm.commit(a);
        assert_eq!(tm.oldest_active_xid(), b);
        tm.commit(b);
        assert!(tm.oldest_active_xid() > b);
    }
}
