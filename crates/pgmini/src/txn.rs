//! Transaction manager: xid allocation, commit/abort status, MVCC snapshots,
//! and prepared transactions (`PREPARE TRANSACTION` / `COMMIT PREPARED`) —
//! the primitives the distributed layer's two-phase commit is built on.

use crate::error::{ErrorCode, PgError, PgResult};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Transaction id. 0 is "invalid" (no transaction), like PostgreSQL.
pub type Xid = u64;

pub const INVALID_XID: Xid = 0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    InProgress,
    Committed,
    Aborted,
    /// First phase of 2PC done: effects durable, locks held, outcome pending.
    Prepared,
}

/// Cluster-wide commit ordering: a shared logical clock that stamps every
/// commit with a monotonically increasing timestamp, plus a registry of
/// decided-but-not-yet-applied prepared transactions (gid → commit ts).
///
/// The distributed layer installs one `CommitClock` across all node engines;
/// a coordinator-issued snapshot *token* is simply a clock reading. A commit
/// stamped `C` is visible to a token `T` iff `C <= T` — evaluated the same
/// way on every node — so a multi-node 2PC commit becomes visible atomically
/// the moment the coordinator publishes its decided timestamp for all
/// participant gids.
#[derive(Debug, Default)]
pub struct CommitClock {
    counter: AtomicU64,
    decided: Mutex<HashMap<String, u64>>,
}

impl CommitClock {
    /// Current reading (a snapshot token): every commit stamped `<= now()`
    /// is visible to it.
    pub fn now(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Draw the next commit timestamp (strictly greater than every token
    /// issued so far).
    pub fn next(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Record the decided commit timestamp for a set of prepared gids in one
    /// step (the 2PC coordinator publishes all participants atomically,
    /// before any `COMMIT PREPARED` is sent).
    pub fn publish_all<'a>(&self, gids: impl IntoIterator<Item = &'a str>, ts: u64) {
        let mut d = self.decided.lock();
        for g in gids {
            d.insert(g.to_string(), ts);
        }
    }

    /// Decided timestamp for a still-prepared gid, if any.
    pub fn decided(&self, gid: &str) -> Option<u64> {
        self.decided.lock().get(gid).copied()
    }

    /// Consume the decided timestamp when the prepared transaction finishes.
    fn take(&self, gid: &str) -> Option<u64> {
        self.decided.lock().remove(gid)
    }
}

/// An MVCC snapshot: which transactions' effects are visible.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Every xid < xmin is finished.
    pub xmin: Xid,
    /// Every xid >= xmax had not started.
    pub xmax: Xid,
    /// In-progress xids in `[xmin, xmax)` at snapshot time (sorted).
    pub active: Vec<Xid>,
    /// The observing transaction's own xid (0 when read-only/implicit).
    pub my_xid: Xid,
    /// Distributed snapshot token: when set, visibility ignores the local
    /// active set and evaluates against the shared commit clock instead.
    pub as_of: Option<u64>,
}

impl Snapshot {
    /// Would a change made by `xid` be visible, given it ultimately committed?
    /// Own-transaction changes are always visible.
    pub fn considers_running(&self, xid: Xid) -> bool {
        if xid >= self.xmax {
            return true;
        }
        if xid < self.xmin {
            return false;
        }
        self.active.binary_search(&xid).is_ok()
    }
}

#[derive(Debug, Default)]
struct TxnTable {
    status: HashMap<Xid, TxStatus>,
    active: BTreeSet<Xid>,
    /// gid → xid for prepared transactions.
    prepared: HashMap<String, Xid>,
    /// xid → commit-clock timestamp, recorded at commit.
    commit_ts: HashMap<Xid, u64>,
    /// Pre-assigned commit timestamps (the 2PC coordinator stamps its own
    /// local transaction half with the distributed decision's timestamp).
    staged: HashMap<Xid, u64>,
}

/// Engine-wide transaction state.
#[derive(Debug)]
pub struct TxnManager {
    next_xid: AtomicU64,
    inner: Mutex<TxnTable>,
    /// Commit clock; engine-local by default, swapped for one shared
    /// cluster-wide instance by the distributed layer.
    clock: Mutex<Arc<CommitClock>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager {
            next_xid: AtomicU64::new(1),
            inner: Mutex::new(TxnTable::default()),
            clock: Mutex::new(Arc::new(CommitClock::default())),
        }
    }
}

impl TxnManager {
    /// Start a transaction: allocate an xid and mark it in progress.
    pub fn begin(&self) -> Xid {
        let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
        let mut t = self.inner.lock();
        t.status.insert(xid, TxStatus::InProgress);
        t.active.insert(xid);
        xid
    }

    /// Take an MVCC snapshot for `my_xid` (pass [`INVALID_XID`] when outside a
    /// transaction).
    pub fn snapshot(&self, my_xid: Xid) -> Snapshot {
        let t = self.inner.lock();
        let xmax = self.next_xid.load(Ordering::Relaxed);
        let active: Vec<Xid> = t.active.iter().copied().filter(|&x| x != my_xid).collect();
        let xmin = active.first().copied().unwrap_or(xmax).min(if my_xid != INVALID_XID {
            my_xid
        } else {
            xmax
        });
        Snapshot { xmin, xmax, active, my_xid, as_of: None }
    }

    /// Take a snapshot pinned to a distributed snapshot token: visibility is
    /// evaluated against the shared commit clock instead of the local active
    /// set (see [`CommitClock`]).
    pub fn snapshot_at(&self, my_xid: Xid, token: u64) -> Snapshot {
        let mut snap = self.snapshot(my_xid);
        snap.as_of = Some(token);
        snap
    }

    /// Share a cluster-wide commit clock across engines (replaces the
    /// engine-local default).
    pub fn set_commit_clock(&self, clock: Arc<CommitClock>) {
        *self.clock.lock() = clock;
    }

    pub fn commit_clock(&self) -> Arc<CommitClock> {
        self.clock.lock().clone()
    }

    pub fn status(&self, xid: Xid) -> TxStatus {
        if xid == INVALID_XID {
            return TxStatus::Aborted;
        }
        self.inner
            .lock()
            .status
            .get(&xid)
            .copied()
            // unknown old xids were truncated away after commit
            .unwrap_or(TxStatus::Committed)
    }

    pub fn commit(&self, xid: Xid) {
        let clock = self.commit_clock();
        let mut t = self.inner.lock();
        // a force-aborted xid stays aborted (its effects were already undone)
        if t.status.get(&xid) == Some(&TxStatus::Aborted) {
            t.active.remove(&xid);
            t.staged.remove(&xid);
            return;
        }
        // Draw the timestamp while holding the table lock: a token reader
        // (who must take this lock to check status) can then never observe a
        // drawn-but-unrecorded commit, so any token issued before this
        // commit's timestamp stays strictly smaller than it.
        let ts = t.staged.remove(&xid).unwrap_or_else(|| clock.next());
        t.status.insert(xid, TxStatus::Committed);
        t.commit_ts.insert(xid, ts);
        t.active.remove(&xid);
    }

    pub fn abort(&self, xid: Xid) {
        let mut t = self.inner.lock();
        t.status.insert(xid, TxStatus::Aborted);
        t.active.remove(&xid);
        t.staged.remove(&xid);
    }

    /// Pre-assign the commit timestamp for a running transaction: the 2PC
    /// coordinator stamps its own local half with the distributed decision's
    /// timestamp so every node's half commits at the same clock instant.
    pub fn stage_commit_ts(&self, xid: Xid, ts: u64) {
        self.inner.lock().staged.insert(xid, ts);
    }

    /// Phase one of 2PC: transition `xid` to prepared under `gid`. The xid
    /// stays in the active set so concurrent snapshots keep treating it as
    /// running (its outcome is undecided).
    pub fn prepare(&self, xid: Xid, gid: &str) -> PgResult<()> {
        let mut t = self.inner.lock();
        if t.prepared.contains_key(gid) {
            return Err(PgError::new(
                ErrorCode::InvalidTransactionState,
                format!("transaction identifier \"{gid}\" is already in use"),
            ));
        }
        t.status.insert(xid, TxStatus::Prepared);
        t.prepared.insert(gid.to_string(), xid);
        Ok(())
    }

    /// Finish a prepared transaction. Returns its xid so the caller can
    /// release its locks.
    pub fn finish_prepared(&self, gid: &str, commit: bool) -> PgResult<Xid> {
        let clock = self.commit_clock();
        // Consume any coordinator-decided timestamp before taking the table
        // lock (lock order is table → registry, never the reverse).
        let decided = clock.take(gid);
        let mut t = self.inner.lock();
        let Some(xid) = t.prepared.remove(gid) else {
            drop(t);
            if let Some(ts) = decided {
                clock.publish_all([gid], ts);
            }
            return Err(PgError::new(
                ErrorCode::InvalidTransactionState,
                format!("prepared transaction with identifier \"{gid}\" does not exist"),
            ));
        };
        if commit {
            let ts = decided.unwrap_or_else(|| clock.next());
            t.status.insert(xid, TxStatus::Committed);
            t.commit_ts.insert(xid, ts);
        } else {
            t.status.insert(xid, TxStatus::Aborted);
        }
        t.active.remove(&xid);
        Ok(xid)
    }

    /// Token visibility: had `xid` committed with a timestamp `<= token`?
    ///
    /// Unknown xids (truncated after commit, or WAL-restored without their
    /// timestamps) count as infinitely old commits. A still-prepared xid is
    /// visible iff the 2PC coordinator already published its decided
    /// timestamp at or before the token — that is what makes a multi-node
    /// commit atomic under tokens: the registry entry and the applied
    /// `commit_ts` carry the same timestamp.
    pub fn committed_at(&self, xid: Xid, token: u64) -> bool {
        if xid == INVALID_XID {
            return false;
        }
        let clock = self.commit_clock();
        let t = self.inner.lock();
        match t.status.get(&xid).copied() {
            // truncated/restored commit: infinitely old
            None => true,
            Some(TxStatus::Committed) => t.commit_ts.get(&xid).copied().unwrap_or(0) <= token,
            Some(TxStatus::Prepared) => {
                // reverse lookup; the prepared map only holds in-flight 2PCs
                t.prepared
                    .iter()
                    .find(|(_, &x)| x == xid)
                    .and_then(|(gid, _)| clock.decided(gid))
                    .map_or(false, |c| c <= token)
            }
            Some(TxStatus::InProgress) | Some(TxStatus::Aborted) => false,
        }
    }

    /// Gids of all currently prepared transactions (the recovery daemon's
    /// `pg_prepared_xacts` view).
    pub fn prepared_gids(&self) -> Vec<String> {
        let t = self.inner.lock();
        let mut v: Vec<String> = t.prepared.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn prepared_xid(&self, gid: &str) -> Option<Xid> {
        self.inner.lock().prepared.get(gid).copied()
    }

    /// Oldest xid any active snapshot could still need (vacuum horizon).
    pub fn oldest_active_xid(&self) -> Xid {
        let t = self.inner.lock();
        t.active.iter().next().copied().unwrap_or_else(|| self.next_xid.load(Ordering::Relaxed))
    }

    /// Number of in-progress (incl. prepared) transactions.
    pub fn active_count(&self) -> usize {
        self.inner.lock().active.len()
    }
}

/// MVCC visibility: is a tuple with the given `xmin`/`xmax` visible to `snap`?
pub fn tuple_visible(txns: &TxnManager, snap: &Snapshot, xmin: Xid, xmax: Xid) -> bool {
    // Distributed snapshot token: ignore the local active set entirely and
    // ask "had this commit happened at the token's instant?" — the same
    // question on every node, so a multi-node commit is either visible
    // everywhere or nowhere.
    if let Some(token) = snap.as_of {
        let inserted_visible =
            (xmin == snap.my_xid && xmin != INVALID_XID) || txns.committed_at(xmin, token);
        if !inserted_visible {
            return false;
        }
        if xmax == INVALID_XID {
            return true;
        }
        if xmax == snap.my_xid {
            return false;
        }
        return !txns.committed_at(xmax, token);
    }
    // Inserted by me? visible unless I also deleted it.
    let inserted_visible = if xmin == snap.my_xid && xmin != INVALID_XID {
        true
    } else if snap.considers_running(xmin) {
        false
    } else {
        txns.status(xmin) == TxStatus::Committed
    };
    if !inserted_visible {
        return false;
    }
    if xmax == INVALID_XID {
        return true;
    }
    // Deleted by me? gone.
    if xmax == snap.my_xid && xmax != INVALID_XID {
        return false;
    }
    // Deleter still running (or prepared) at snapshot time → still visible.
    if snap.considers_running(xmax) {
        return true;
    }
    match txns.status(xmax) {
        TxStatus::Committed => false,
        // prepared deleter: outcome unknown, row stays visible
        TxStatus::Prepared | TxStatus::InProgress => true,
        TxStatus::Aborted => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_isolation_basics() {
        let tm = TxnManager::default();
        let t1 = tm.begin();
        let snap_before = tm.snapshot(INVALID_XID);
        assert!(snap_before.considers_running(t1));
        tm.commit(t1);
        // old snapshot still treats t1 as running (repeatable within stmt)
        assert!(snap_before.considers_running(t1));
        let snap_after = tm.snapshot(INVALID_XID);
        assert!(!snap_after.considers_running(t1));
        assert_eq!(tm.status(t1), TxStatus::Committed);
    }

    #[test]
    fn visibility_rules() {
        let tm = TxnManager::default();
        let writer = tm.begin();
        let reader_snap = tm.snapshot(INVALID_XID);
        // uncommitted insert invisible to others
        assert!(!tuple_visible(&tm, &reader_snap, writer, INVALID_XID));
        // ...but visible to itself
        let own_snap = tm.snapshot(writer);
        assert!(tuple_visible(&tm, &own_snap, writer, INVALID_XID));
        tm.commit(writer);
        let fresh = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &fresh, writer, INVALID_XID));
    }

    #[test]
    fn delete_visibility() {
        let tm = TxnManager::default();
        let inserter = tm.begin();
        tm.commit(inserter);
        let deleter = tm.begin();
        let concurrent = tm.snapshot(INVALID_XID);
        // deleter in progress: row still visible to others
        assert!(tuple_visible(&tm, &concurrent, inserter, deleter));
        // deleter sees its own delete
        let own = tm.snapshot(deleter);
        assert!(!tuple_visible(&tm, &own, inserter, deleter));
        tm.commit(deleter);
        let after = tm.snapshot(INVALID_XID);
        assert!(!tuple_visible(&tm, &after, inserter, deleter));
        // old snapshot taken during delete still sees the row
        assert!(tuple_visible(&tm, &concurrent, inserter, deleter));
    }

    #[test]
    fn aborted_delete_leaves_row_visible() {
        let tm = TxnManager::default();
        let inserter = tm.begin();
        tm.commit(inserter);
        let deleter = tm.begin();
        tm.abort(deleter);
        let snap = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &snap, inserter, deleter));
    }

    #[test]
    fn prepared_transactions_lifecycle() {
        let tm = TxnManager::default();
        let xid = tm.begin();
        tm.prepare(xid, "gid_1").unwrap();
        assert_eq!(tm.status(xid), TxStatus::Prepared);
        assert_eq!(tm.prepared_gids(), vec!["gid_1".to_string()]);
        // prepared writer's rows are not yet visible
        let snap = tm.snapshot(INVALID_XID);
        assert!(!tuple_visible(&tm, &snap, xid, INVALID_XID));
        // duplicate gid rejected
        let other = tm.begin();
        assert!(tm.prepare(other, "gid_1").is_err());
        assert_eq!(tm.finish_prepared("gid_1", true).unwrap(), xid);
        assert_eq!(tm.status(xid), TxStatus::Committed);
        assert!(tm.finish_prepared("gid_1", true).is_err());
        let fresh = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &fresh, xid, INVALID_XID));
    }

    #[test]
    fn prepared_deleter_keeps_row_visible() {
        let tm = TxnManager::default();
        let ins = tm.begin();
        tm.commit(ins);
        let del = tm.begin();
        tm.prepare(del, "g").unwrap();
        let snap = tm.snapshot(INVALID_XID);
        assert!(tuple_visible(&tm, &snap, ins, del));
        tm.finish_prepared("g", true).unwrap();
        let snap2 = tm.snapshot(INVALID_XID);
        assert!(!tuple_visible(&tm, &snap2, ins, del));
    }

    #[test]
    fn token_visibility_orders_commits() {
        let tm = TxnManager::default();
        let clock = tm.commit_clock();
        let a = tm.begin();
        let before = clock.now();
        tm.commit(a);
        let after = clock.now();
        // a token drawn before the commit never sees it; drawn after, always
        assert!(!tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, before), a, INVALID_XID));
        assert!(tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, after), a, INVALID_XID));
        // delete ordering follows the same rule
        let del = tm.begin();
        let mid = clock.now();
        tm.commit(del);
        let end = clock.now();
        assert!(tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, mid), a, del));
        assert!(!tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, end), a, del));
    }

    #[test]
    fn token_sees_decided_prepared_commits() {
        let tm = TxnManager::default();
        let clock = tm.commit_clock();
        let xid = tm.begin();
        tm.prepare(xid, "g1").unwrap();
        let t0 = clock.now();
        // undecided prepared txn: invisible at any token
        assert!(!tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, t0), xid, INVALID_XID));
        // coordinator decides and publishes; locally still prepared, yet a
        // token at/after the decision already sees the rows
        let c = clock.next();
        clock.publish_all(["g1"], c);
        assert!(tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, c), xid, INVALID_XID));
        assert!(!tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, t0), xid, INVALID_XID));
        // applying the prepared commit keeps the same timestamp
        tm.finish_prepared("g1", true).unwrap();
        assert!(tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, c), xid, INVALID_XID));
        assert!(!tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, t0), xid, INVALID_XID));
    }

    #[test]
    fn token_treats_unknown_xids_as_ancient() {
        // truncated/WAL-restored commits carry no timestamp: visible to all
        let tm = TxnManager::default();
        assert!(tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, 0), 12345, INVALID_XID));
    }

    #[test]
    fn shared_clock_orders_across_managers() {
        let clock = Arc::new(CommitClock::default());
        let a = TxnManager::default();
        let b = TxnManager::default();
        a.set_commit_clock(clock.clone());
        b.set_commit_clock(clock.clone());
        let xa = a.begin();
        let xb = b.begin();
        a.commit(xa);
        let mid = clock.now();
        b.commit(xb);
        // one token, evaluated on two engines, cuts the commit order cleanly
        assert!(tuple_visible(&a, &a.snapshot_at(INVALID_XID, mid), xa, INVALID_XID));
        assert!(!tuple_visible(&b, &b.snapshot_at(INVALID_XID, mid), xb, INVALID_XID));
    }

    #[test]
    fn staged_timestamp_stamps_local_half() {
        let tm = TxnManager::default();
        let clock = tm.commit_clock();
        let xid = tm.begin();
        let c = clock.next();
        tm.stage_commit_ts(xid, c);
        // the clock moves on before the local half commits
        let _ = clock.next();
        tm.commit(xid);
        assert!(tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, c), xid, INVALID_XID));
        assert!(!tuple_visible(&tm, &tm.snapshot_at(INVALID_XID, c - 1), xid, INVALID_XID));
    }

    #[test]
    fn vacuum_horizon() {
        let tm = TxnManager::default();
        let a = tm.begin();
        let b = tm.begin();
        assert_eq!(tm.oldest_active_xid(), a);
        tm.commit(a);
        assert_eq!(tm.oldest_active_xid(), b);
        tm.commit(b);
        assert!(tm.oldest_active_xid() > b);
    }
}
