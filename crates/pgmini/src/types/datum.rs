//! Runtime values (`Datum`), rows, and the hash function used for both hash
//! joins and — crucially — hash partitioning of distributed tables.

use super::json::Json;
use super::time;
use crate::error::{ErrorCode, PgError, PgResult};
use sqlparse::ast::TypeName;
use std::cmp::Ordering;

/// A runtime value. `Timestamp` is microseconds since the Unix epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Json(Json),
    Timestamp(i64),
}

/// A tuple of datums.
pub type Row = Vec<Datum>;

impl Datum {
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The normalised type of this value, or `None` for NULL.
    pub fn type_name(&self) -> Option<TypeName> {
        Some(match self {
            Datum::Null => return None,
            Datum::Bool(_) => TypeName::Bool,
            Datum::Int(_) => TypeName::Int,
            Datum::Float(_) => TypeName::Float,
            Datum::Text(_) => TypeName::Text,
            Datum::Json(_) => TypeName::Json,
            Datum::Timestamp(_) => TypeName::Timestamp,
        })
    }

    pub fn from_text(s: &str) -> Datum {
        Datum::Text(s.to_string())
    }

    /// SQL-style text rendering (no quotes), as `::text` would produce.
    pub fn to_text(&self) -> String {
        match self {
            Datum::Null => String::new(),
            Datum::Bool(true) => "t".to_string(),
            Datum::Bool(false) => "f".to_string(),
            Datum::Int(v) => v.to_string(),
            Datum::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v}")
                } else {
                    format!("{v}")
                }
            }
            Datum::Text(s) => s.clone(),
            Datum::Json(j) => j.to_string(),
            Datum::Timestamp(t) => time::format_timestamp(*t),
        }
    }

    /// Numeric view for arithmetic; errors on non-numeric types.
    pub fn as_f64(&self) -> PgResult<f64> {
        match self {
            Datum::Int(v) => Ok(*v as f64),
            Datum::Float(v) => Ok(*v),
            Datum::Bool(b) => Ok(*b as i64 as f64),
            other => Err(PgError::new(
                ErrorCode::InvalidText,
                format!("value is not numeric: {}", other.to_text()),
            )),
        }
    }

    pub fn as_i64(&self) -> PgResult<i64> {
        match self {
            Datum::Int(v) => Ok(*v),
            Datum::Float(v) => Ok(*v as i64),
            Datum::Bool(b) => Ok(*b as i64),
            other => Err(PgError::new(
                ErrorCode::InvalidText,
                format!("value is not an integer: {}", other.to_text()),
            )),
        }
    }

    pub fn as_bool(&self) -> PgResult<bool> {
        match self {
            Datum::Bool(b) => Ok(*b),
            other => Err(PgError::new(
                ErrorCode::InvalidText,
                format!("value is not boolean: {}", other.to_text()),
            )),
        }
    }

    pub fn as_str(&self) -> PgResult<&str> {
        match self {
            Datum::Text(s) => Ok(s),
            other => Err(PgError::new(
                ErrorCode::InvalidText,
                format!("value is not text: {}", other.to_text()),
            )),
        }
    }

    /// Cast to `ty` following PostgreSQL's conversion rules for the types we
    /// support. NULL casts to NULL of any type.
    pub fn cast_to(&self, ty: TypeName) -> PgResult<Datum> {
        if self.is_null() {
            return Ok(Datum::Null);
        }
        let bad = |from: &Datum| {
            PgError::new(
                ErrorCode::InvalidText,
                format!("cannot cast {} to {}", from.to_text(), ty.as_str()),
            )
        };
        Ok(match ty {
            TypeName::Int => match self {
                Datum::Int(v) => Datum::Int(*v),
                Datum::Float(v) => Datum::Int(v.round() as i64),
                Datum::Bool(b) => Datum::Int(*b as i64),
                Datum::Text(s) => Datum::Int(
                    s.trim().parse::<i64>().map_err(|_| bad(self))?,
                ),
                Datum::Json(Json::Number(n)) => Datum::Int(n.round() as i64),
                _ => return Err(bad(self)),
            },
            TypeName::Float => match self {
                Datum::Int(v) => Datum::Float(*v as f64),
                Datum::Float(v) => Datum::Float(*v),
                Datum::Text(s) => {
                    Datum::Float(s.trim().parse::<f64>().map_err(|_| bad(self))?)
                }
                Datum::Json(Json::Number(n)) => Datum::Float(*n),
                _ => return Err(bad(self)),
            },
            TypeName::Text => Datum::Text(self.to_text()),
            TypeName::Bool => match self {
                Datum::Bool(b) => Datum::Bool(*b),
                Datum::Int(v) => Datum::Bool(*v != 0),
                Datum::Text(s) => match s.trim() {
                    "t" | "true" | "on" | "1" => Datum::Bool(true),
                    "f" | "false" | "off" | "0" => Datum::Bool(false),
                    _ => return Err(bad(self)),
                },
                _ => return Err(bad(self)),
            },
            TypeName::Json => match self {
                Datum::Json(j) => Datum::Json(j.clone()),
                Datum::Text(s) => Datum::Json(Json::parse(s)?),
                Datum::Int(v) => Datum::Json(Json::Number(*v as f64)),
                Datum::Float(v) => Datum::Json(Json::Number(*v)),
                Datum::Bool(b) => Datum::Json(Json::Bool(*b)),
                _ => return Err(bad(self)),
            },
            TypeName::Timestamp => match self {
                Datum::Timestamp(t) => Datum::Timestamp(*t),
                Datum::Text(s) => {
                    Datum::Timestamp(time::parse_timestamp(s).ok_or_else(|| bad(self))?)
                }
                Datum::Int(v) => Datum::Timestamp(*v),
                _ => return Err(bad(self)),
            },
        })
    }

    /// SQL comparison: NULL compares as unknown (`None`); numerics compare
    /// across Int/Float.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).partial_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Datum::Float(a), Datum::Float(b)) => a.partial_cmp(b),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            (Datum::Timestamp(a), Datum::Timestamp(b)) => Some(a.cmp(b)),
            (Datum::Timestamp(a), Datum::Text(b)) => {
                time::parse_timestamp(b).map(|bt| a.cmp(&bt))
            }
            (Datum::Text(a), Datum::Timestamp(b)) => {
                time::parse_timestamp(a).map(|at| at.cmp(b))
            }
            (Datum::Json(a), Datum::Json(b)) => {
                if a == b {
                    Some(Ordering::Equal)
                } else {
                    Some(a.to_string().cmp(&b.to_string()))
                }
            }
            _ => None,
        }
    }

    /// Total order for sorting and B-tree keys: NULLs sort last (PostgreSQL's
    /// default for ascending order), cross-type falls back to type rank.
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        self.sql_cmp(other).unwrap_or_else(|| self.type_rank().cmp(&other.type_rank()))
    }

    fn type_rank(&self) -> u8 {
        match self {
            Datum::Null => 7,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 2,
            Datum::Float(_) => 3,
            Datum::Timestamp(_) => 4,
            Datum::Text(_) => 5,
            Datum::Json(_) => 6,
        }
    }

    /// 64-bit hash used for hash joins, DISTINCT, GROUP BY, and — most
    /// importantly — hash partitioning of distributed tables. Int and Float
    /// of equal value hash identically, mirroring how co-location requires
    /// hash compatibility within a distribution-column type class.
    pub fn hash64(&self) -> u64 {
        match self {
            Datum::Null => 0,
            Datum::Bool(b) => splitmix64(2 + *b as u64),
            Datum::Int(v) => splitmix64(*v as u64 ^ 0x9E37_79B9_7F4A_7C15),
            Datum::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 9.0e18 {
                    // hash like the equal integer
                    splitmix64((*v as i64) as u64 ^ 0x9E37_79B9_7F4A_7C15)
                } else {
                    splitmix64(v.to_bits())
                }
            }
            Datum::Text(s) => hash_bytes(s.as_bytes()),
            Datum::Timestamp(t) => splitmix64(*t as u64 ^ 0x2545_F491_4F6C_DD1D),
            Datum::Json(j) => {
                let mut repr = String::new();
                j.hash_repr(&mut repr);
                hash_bytes(repr.as_bytes())
            }
        }
    }
}

/// Finaliser from the splitmix64 generator; good avalanche, deterministic.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, finished with splitmix64 for avalanche.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(h)
}

/// Hash a multi-column key.
pub fn hash_row(values: &[Datum]) -> u64 {
    let mut h = 0xA076_1D64_78BD_642F_u64;
    for v in values {
        h = splitmix64(h ^ v.hash64());
    }
    h
}

/// Wrapper giving rows a total order for B-tree keys and sort operators.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey(pub Vec<Datum>);

impl Eq for SortKey {}

impl PartialOrd for SortKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SortKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.total_cmp(b) {
                Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Datum::Int(3).sql_cmp(&Datum::Float(3.0)), Some(Ordering::Equal));
        assert_eq!(Datum::Float(2.5).sql_cmp(&Datum::Int(3)), Some(Ordering::Less));
    }

    #[test]
    fn null_compares_unknown_but_sorts_last() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Null.total_cmp(&Datum::Int(1)), Ordering::Greater);
        assert_eq!(Datum::Null.total_cmp(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn int_float_hash_compat() {
        assert_eq!(Datum::Int(42).hash64(), Datum::Float(42.0).hash64());
        assert_ne!(Datum::Int(42).hash64(), Datum::Int(43).hash64());
    }

    #[test]
    fn hash_is_well_distributed_over_buckets() {
        let mut buckets = [0u32; 32];
        for i in 0..32_000 {
            let h = Datum::Int(i).hash64();
            buckets[(h % 32) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }

    #[test]
    fn text_and_json_hashing() {
        assert_eq!(Datum::from_text("abc").hash64(), Datum::from_text("abc").hash64());
        assert_ne!(Datum::from_text("abc").hash64(), Datum::from_text("abd").hash64());
        let j1 = Datum::Json(Json::parse(r#"{"a":1,"b":2}"#).unwrap());
        let j2 = Datum::Json(Json::parse(r#"{"b":2,"a":1}"#).unwrap());
        assert_eq!(j1.hash64(), j2.hash64());
    }

    #[test]
    fn casts() {
        assert_eq!(Datum::from_text("42").cast_to(TypeName::Int).unwrap(), Datum::Int(42));
        assert_eq!(Datum::Int(1).cast_to(TypeName::Bool).unwrap(), Datum::Bool(true));
        assert_eq!(
            Datum::from_text("2020-01-01").cast_to(TypeName::Timestamp).unwrap(),
            Datum::Timestamp(time::parse_timestamp("2020-01-01").unwrap())
        );
        assert_eq!(Datum::Null.cast_to(TypeName::Int).unwrap(), Datum::Null);
        assert!(Datum::from_text("xyz").cast_to(TypeName::Int).is_err());
        let j = Datum::from_text(r#"{"k": 1}"#).cast_to(TypeName::Json).unwrap();
        assert!(matches!(j, Datum::Json(_)));
    }

    #[test]
    fn timestamp_text_comparison() {
        let t = Datum::Timestamp(time::parse_timestamp("2020-06-01").unwrap());
        assert_eq!(t.sql_cmp(&Datum::from_text("2020-06-01")), Some(Ordering::Equal));
        assert_eq!(t.sql_cmp(&Datum::from_text("2021-01-01")), Some(Ordering::Less));
    }

    #[test]
    fn sort_key_ordering() {
        let a = SortKey(vec![Datum::Int(1), Datum::from_text("b")]);
        let b = SortKey(vec![Datum::Int(1), Datum::from_text("c")]);
        let c = SortKey(vec![Datum::Int(2)]);
        assert!(a < b);
        assert!(b < c);
        let with_null = SortKey(vec![Datum::Null]);
        assert!(a < with_null, "nulls sort last");
    }

    #[test]
    fn row_hash_order_sensitive() {
        let a = hash_row(&[Datum::Int(1), Datum::Int(2)]);
        let b = hash_row(&[Datum::Int(2), Datum::Int(1)]);
        assert_ne!(a, b);
    }
}
