//! Minimal JSONB value type: parser, serialiser, and the jsonpath subset the
//! real-time analytics benchmarks use (`$.payload.commits[*].message`).
//!
//! Implemented in-repo rather than via serde_json because the jsonb datatype
//! (with its operators and GIN-indexability) is part of the substrate the
//! paper's workloads depend on.

use crate::error::{ErrorCode, PgError, PgResult};
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order but compare key-wise.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse JSON text.
    pub fn parse(text: &str) -> PgResult<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(bad_json("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object member lookup (the `->` operator on objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup (the `->` operator on arrays).
    pub fn get_index(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// The `->>` operator: member as text (strings unquoted).
    pub fn get_text(&self, key: &str) -> Option<String> {
        self.get(key).map(Json::as_text)
    }

    /// Render as text the way `->>` and casts do: strings bare, rest as JSON.
    pub fn as_text(&self) -> String {
        match self {
            Json::String(s) => s.clone(),
            other => other.to_string(),
        }
    }

    pub fn array_len(&self) -> Option<usize> {
        match self {
            Json::Array(items) => Some(items.len()),
            _ => None,
        }
    }

    /// Evaluate a jsonpath like `$.payload.commits[*].message`, returning all
    /// matches (the behaviour of `jsonb_path_query_array`).
    pub fn path_query(&self, path: &str) -> PgResult<Vec<&Json>> {
        let steps = parse_path(path)?;
        let mut current = vec![self];
        for step in &steps {
            let mut next = Vec::new();
            for v in current {
                match step {
                    PathStep::Member(name) => {
                        if let Some(child) = v.get(name) {
                            next.push(child);
                        }
                    }
                    PathStep::AllElements => {
                        if let Json::Array(items) = v {
                            next.extend(items.iter());
                        }
                    }
                    PathStep::Element(i) => {
                        if let Some(child) = v.get_index(*i) {
                            next.push(child);
                        }
                    }
                }
            }
            current = next;
        }
        Ok(current)
    }

    /// Shorthand for building an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: &str) -> Json {
        Json::String(s.to_string())
    }

    /// Canonical bytes for hashing: stable across logically equal values.
    pub fn hash_repr(&self, out: &mut String) {
        match self {
            Json::Null => out.push('n'),
            Json::Bool(b) => out.push(if *b { 't' } else { 'f' }),
            Json::Number(n) => {
                let _ = write!(out, "N{n}");
            }
            Json::String(s) => {
                let _ = write!(out, "S{}:{s}", s.len());
            }
            Json::Array(items) => {
                out.push('[');
                for i in items {
                    i.hash_repr(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                // sort keys so field order does not affect the hash
                let mut sorted: Vec<&(String, Json)> = fields.iter().collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                out.push('{');
                for (k, v) in sorted {
                    let _ = write!(out, "K{}:{k}", k.len());
                    v.hash_repr(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_json_string(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ": {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn bad_json(msg: &str) -> PgError {
    PgError::new(ErrorCode::InvalidText, format!("invalid input syntax for type json: {msg}"))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(text: &str, b: &[u8], pos: &mut usize) -> PgResult<Json> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(bad_json("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(text, b, pos)? {
                    Json::String(s) => s,
                    _ => return Err(bad_json("object key must be a string")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(bad_json("expected ':' in object"));
                }
                *pos += 1;
                let value = parse_value(text, b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        break;
                    }
                    _ => return Err(bad_json("expected ',' or '}' in object")),
                }
            }
            Ok(Json::Object(fields))
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(text, b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        break;
                    }
                    _ => return Err(bad_json("expected ',' or ']' in array")),
                }
            }
            Ok(Json::Array(items))
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err(bad_json("unterminated string")),
                    Some(b'"') => {
                        *pos += 1;
                        break;
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = text
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or_else(|| bad_json("bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| bad_json("bad \\u escape"))?;
                                s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(bad_json("bad escape")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        let ch_start = *pos;
                        let mut end = ch_start + 1;
                        while end < b.len() && (b[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        s.push_str(&text[ch_start..end]);
                        *pos = end;
                    }
                }
            }
            Ok(Json::String(s))
        }
        Some(b't') if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && (b[*pos].is_ascii_digit()
                    || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *pos += 1;
            }
            text[start..*pos]
                .parse::<f64>()
                .map(Json::Number)
                .map_err(|_| bad_json("invalid number"))
        }
        Some(_) => Err(bad_json("unexpected character")),
    }
}

/// One step of the supported jsonpath subset.
#[derive(Debug, Clone, PartialEq)]
enum PathStep {
    Member(String),
    AllElements,
    Element(usize),
}

fn parse_path(path: &str) -> PgResult<Vec<PathStep>> {
    let bad = |m: &str| PgError::new(ErrorCode::InvalidParameter, format!("invalid jsonpath: {m}"));
    let rest = path.strip_prefix('$').ok_or_else(|| bad("must start with '$'"))?;
    let mut steps = Vec::new();
    let b = rest.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'.' => {
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if i == start {
                    return Err(bad("expected member name after '.'"));
                }
                steps.push(PathStep::Member(rest[start..i].to_string()));
            }
            b'[' => {
                i += 1;
                if b.get(i) == Some(&b'*') {
                    i += 1;
                    steps.push(PathStep::AllElements);
                } else {
                    let start = i;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let n: usize =
                        rest[start..i].parse().map_err(|_| bad("expected index or '*'"))?;
                    steps.push(PathStep::Element(n));
                }
                if b.get(i) != Some(&b']') {
                    return Err(bad("expected ']'"));
                }
                i += 1;
            }
            _ => return Err(bad("unexpected character")),
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(Json::parse("\"hi\\nthere\"").unwrap(), Json::String("hi\nthere".into()));
    }

    #[test]
    fn parses_nested() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().array_len(), Some(2));
        assert_eq!(
            v.get("a").unwrap().get_index(1).unwrap().get_text("b"),
            Some("x".to_string())
        );
    }

    #[test]
    fn display_roundtrips() {
        let src = r#"{"msg": "say \"hi\"", "n": 4.5, "xs": [1, 2], "e": {}}"#;
        let v = Json::parse(src).unwrap();
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é""#).unwrap();
        assert_eq!(v, Json::String("é".into()));
        let v = Json::parse("\"caf\u{00e9}\"").unwrap();
        assert_eq!(v, Json::String("café".into()));
    }

    #[test]
    fn path_query_commits_messages() {
        let v = Json::parse(
            r#"{"payload": {"commits": [{"message": "fix postgres bug"}, {"message": "docs"}]}}"#,
        )
        .unwrap();
        let out = v.path_query("$.payload.commits[*].message").unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], &Json::String("fix postgres bug".into()));
    }

    #[test]
    fn path_query_index_and_missing() {
        let v = Json::parse(r#"{"xs": [10, 20, 30]}"#).unwrap();
        let out = v.path_query("$.xs[1]").unwrap();
        assert_eq!(out, vec![&Json::Number(20.0)]);
        assert!(v.path_query("$.nope.deeper").unwrap().is_empty());
        assert!(v.path_query("bad").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn hash_repr_ignores_field_order() {
        let a = Json::parse(r#"{"x": 1, "y": 2}"#).unwrap();
        let b = Json::parse(r#"{"y": 2, "x": 1}"#).unwrap();
        let (mut ra, mut rb) = (String::new(), String::new());
        a.hash_repr(&mut ra);
        b.hash_repr(&mut rb);
        assert_eq!(ra, rb);
    }
}
