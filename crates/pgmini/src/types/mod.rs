//! Value types: datums, JSON, text operators, and civil time math.

pub mod datum;
pub mod json;
pub mod text_ops;
pub mod time;

pub use datum::{hash_bytes, hash_row, splitmix64, Datum, Row, SortKey};
pub use json::Json;
