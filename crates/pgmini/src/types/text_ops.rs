//! Text operators: SQL LIKE/ILIKE matching and trigram extraction for the
//! GIN index (the pg_trgm stand-in used by the real-time analytics benchmark).

/// Match `text` against a SQL LIKE pattern (`%` any run, `_` any one char).
pub fn like_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    if case_insensitive {
        let t = text.to_lowercase();
        let p = pattern.to_lowercase();
        like_inner(&t.chars().collect::<Vec<_>>(), &p.chars().collect::<Vec<_>>())
    } else {
        like_inner(&text.chars().collect::<Vec<_>>(), &pattern.chars().collect::<Vec<_>>())
    }
}

/// Iterative two-pointer LIKE matcher (linear for patterns with one `%` run,
/// no pathological backtracking).
fn like_inner(text: &[char], pat: &[char]) -> bool {
    let (mut t, mut p) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pat.len() && (pat[p] == '_' || (pat[p] != '%' && pat[p] == text[t])) {
            t += 1;
            p += 1;
        } else if p < pat.len() && pat[p] == '%' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if star_p != usize::MAX {
            // backtrack: let the last % absorb one more character
            p = star_p + 1;
            star_t += 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == '%' {
        p += 1;
    }
    p == pat.len()
}

/// Extract pg_trgm-style trigrams: the string is lowercased and padded with
/// two leading and one trailing space, then every 3-char window is emitted.
pub fn trigrams(text: &str) -> Vec<[char; 3]> {
    let mut out = Vec::new();
    let lower = text.to_lowercase();
    // pg_trgm splits on non-alphanumerics and pads each word
    for word in lower.split(|c: char| !c.is_alphanumeric()) {
        if word.is_empty() {
            continue;
        }
        let padded: Vec<char> =
            std::iter::repeat_n(' ', 2).chain(word.chars()).chain(std::iter::once(' ')).collect();
        for w in padded.windows(3) {
            out.push([w[0], w[1], w[2]]);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Trigrams that any string matching `%substr%` must contain. Only trigrams
/// fully inside the substring are required (boundary trigrams depend on the
/// surrounding text). Returns `None` when the pattern is too short to prune
/// with (fewer than 3 consecutive literal characters).
pub fn required_trigrams_for_like(pattern: &str) -> Option<Vec<[char; 3]>> {
    // extract the longest literal run (no % or _)
    let lower = pattern.to_lowercase();
    let mut best: &str = "";
    for run in lower.split(['%', '_']) {
        if run.len() > best.len() {
            best = run;
        }
    }
    let chars: Vec<char> = best.chars().filter(|c| c.is_alphanumeric()).collect();
    if chars.len() < 3 {
        return None;
    }
    let mut out: Vec<[char; 3]> =
        chars.windows(3).map(|w| [w[0], w[1], w[2]]).collect();
    out.sort_unstable();
    out.dedup();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_basics() {
        assert!(like_match("hello", "hello", false));
        assert!(like_match("hello", "h%", false));
        assert!(like_match("hello", "%llo", false));
        assert!(like_match("hello", "%ell%", false));
        assert!(like_match("hello", "h_llo", false));
        assert!(!like_match("hello", "h_lo", false));
        assert!(!like_match("hello", "hello!", false));
        assert!(like_match("", "%", false));
        assert!(!like_match("", "_", false));
    }

    #[test]
    fn like_multiple_wildcards() {
        assert!(like_match("abcXdefYghi", "abc%def%ghi", false));
        assert!(!like_match("abcXdefYghi", "abc%xyz%ghi", false));
        assert!(like_match("aaa", "%a%a%", false));
    }

    #[test]
    fn ilike_folds_case() {
        assert!(like_match("PostgreSQL", "%postgres%", true));
        assert!(!like_match("PostgreSQL", "%postgres%", false));
    }

    #[test]
    fn trigram_extraction() {
        let t = trigrams("cat");
        // "  cat " → "  c", " ca", "cat", "at "
        assert_eq!(t.len(), 4);
        assert!(t.contains(&[' ', ' ', 'c']));
        assert!(t.contains(&['c', 'a', 't']));
        assert!(t.contains(&['a', 't', ' ']));
    }

    #[test]
    fn trigrams_split_words_and_dedup() {
        let t = trigrams("cat cat!dog");
        let just_cat = trigrams("cat");
        let just_dog = trigrams("dog");
        for g in &just_cat {
            assert!(t.contains(g));
        }
        for g in &just_dog {
            assert!(t.contains(g));
        }
        assert_eq!(t.len(), just_cat.len() + just_dog.len());
    }

    #[test]
    fn required_trigrams_prune_correctly() {
        let req = required_trigrams_for_like("%postgres%").unwrap();
        // every required trigram must occur in a matching document's trigrams
        let doc = trigrams("I love postgres databases");
        for g in &req {
            assert!(doc.contains(g), "missing {g:?}");
        }
        assert!(required_trigrams_for_like("%ab%").is_none());
        assert!(required_trigrams_for_like("%").is_none());
    }

    #[test]
    fn required_trigrams_pick_longest_run() {
        let req = required_trigrams_for_like("%ab%longer%").unwrap();
        assert!(req.contains(&['l', 'o', 'n']));
    }
}
