//! Civil date/time math on timestamps stored as microseconds since the Unix
//! epoch. Uses Howard Hinnant's `days_from_civil` algorithm, the same one
//! modern date libraries build on.

pub const MICROS_PER_SEC: i64 = 1_000_000;
pub const MICROS_PER_DAY: i64 = 86_400 * MICROS_PER_SEC;

/// Days since 1970-01-01 for a civil (proleptic Gregorian) date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date (year, month, day) from days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse `YYYY-MM-DD[ HH:MM:SS]` into epoch microseconds.
pub fn parse_timestamp(text: &str) -> Option<i64> {
    let text = text.trim();
    let (date_part, time_part) = match text.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (text, None),
    };
    let mut it = date_part.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut micros = days_from_civil(y, m, d) * MICROS_PER_DAY;
    if let Some(t) = time_part {
        let t = t.trim_end_matches(|c: char| c == 'Z' || c == 'z');
        let (hms, frac) = match t.split_once('.') {
            Some((a, b)) => (a, Some(b)),
            None => (t, None),
        };
        let mut it = hms.split(':');
        let h: i64 = it.next()?.parse().ok()?;
        let mi: i64 = it.next().unwrap_or("0").parse().ok()?;
        let s: i64 = it.next().unwrap_or("0").parse().ok()?;
        if h > 23 || mi > 59 || s > 60 {
            return None;
        }
        micros += ((h * 60 + mi) * 60 + s) * MICROS_PER_SEC;
        if let Some(fr) = frac {
            let digits: String = fr.chars().take(6).collect();
            let n: i64 = digits.parse().ok()?;
            micros += n * 10_i64.pow(6 - digits.len() as u32);
        }
    }
    Some(micros)
}

/// Format epoch microseconds as `YYYY-MM-DD HH:MM:SS` (date-only when midnight).
pub fn format_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(MICROS_PER_DAY);
    let tod = micros.rem_euclid(MICROS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    if tod == 0 {
        format!("{y:04}-{m:02}-{d:02}")
    } else {
        let secs = tod / MICROS_PER_SEC;
        let (h, rem) = (secs / 3600, secs % 3600);
        format!("{y:04}-{m:02}-{d:02} {h:02}:{:02}:{:02}", rem / 60, rem % 60)
    }
}

/// Truncate to the start of `field` ("day", "month", "year", "hour", "minute").
pub fn date_trunc(field: &str, micros: i64) -> Option<i64> {
    let days = micros.div_euclid(MICROS_PER_DAY);
    let tod = micros.rem_euclid(MICROS_PER_DAY);
    Some(match field {
        "day" => days * MICROS_PER_DAY,
        "hour" => days * MICROS_PER_DAY + tod / (3600 * MICROS_PER_SEC) * 3600 * MICROS_PER_SEC,
        "minute" => days * MICROS_PER_DAY + tod / (60 * MICROS_PER_SEC) * 60 * MICROS_PER_SEC,
        "month" => {
            let (y, m, _) = civil_from_days(days);
            days_from_civil(y, m, 1) * MICROS_PER_DAY
        }
        "year" => {
            let (y, _, _) = civil_from_days(days);
            days_from_civil(y, 1, 1) * MICROS_PER_DAY
        }
        _ => return None,
    })
}

/// `extract(field from ts)` for year/month/day/hour/dow/epoch.
pub fn extract(field: &str, micros: i64) -> Option<f64> {
    let days = micros.div_euclid(MICROS_PER_DAY);
    let tod = micros.rem_euclid(MICROS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    Some(match field {
        "year" => y as f64,
        "month" => m as f64,
        "day" => d as f64,
        "hour" => (tod / (3600 * MICROS_PER_SEC)) as f64,
        "minute" => (tod / (60 * MICROS_PER_SEC) % 60) as f64,
        "dow" => (days + 4).rem_euclid(7) as f64, // 1970-01-01 was a Thursday
        "epoch" => micros as f64 / MICROS_PER_SEC as f64,
        _ => return None,
    })
}

/// Add whole months, clamping the day (Jan 31 + 1 month = Feb 28/29).
pub fn add_months(micros: i64, months: i64) -> i64 {
    let days = micros.div_euclid(MICROS_PER_DAY);
    let tod = micros.rem_euclid(MICROS_PER_DAY);
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i64 - 1) + months;
    let (ny, nm) = (total.div_euclid(12), total.rem_euclid(12) as u32 + 1);
    let nd = d.min(days_in_month(ny, nm));
    days_from_civil(ny, nm, nd) * MICROS_PER_DAY + tod
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        _ => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip() {
        for &(y, m, d) in
            &[(1970, 1, 1), (2000, 2, 29), (2020, 1, 31), (1969, 12, 31), (2400, 2, 29)]
        {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
    }

    #[test]
    fn parse_and_format() {
        let t = parse_timestamp("2020-01-15 12:30:45").unwrap();
        assert_eq!(format_timestamp(t), "2020-01-15 12:30:45");
        let d = parse_timestamp("1994-06-01").unwrap();
        assert_eq!(format_timestamp(d), "1994-06-01");
        assert_eq!(parse_timestamp("2020-01-15T08:00:00Z").map(format_timestamp).unwrap(), "2020-01-15 08:00:00");
        assert!(parse_timestamp("not a date").is_none());
        assert!(parse_timestamp("2020-13-01").is_none());
    }

    #[test]
    fn fractional_seconds() {
        let a = parse_timestamp("2020-01-01 00:00:00.5").unwrap();
        let b = parse_timestamp("2020-01-01 00:00:00").unwrap();
        assert_eq!(a - b, 500_000);
    }

    #[test]
    fn trunc_and_extract() {
        let t = parse_timestamp("2020-03-15 13:45:12").unwrap();
        assert_eq!(format_timestamp(date_trunc("day", t).unwrap()), "2020-03-15");
        assert_eq!(format_timestamp(date_trunc("month", t).unwrap()), "2020-03-01");
        assert_eq!(format_timestamp(date_trunc("year", t).unwrap()), "2020-01-01");
        assert_eq!(extract("year", t), Some(2020.0));
        assert_eq!(extract("month", t), Some(3.0));
        assert_eq!(extract("day", t), Some(15.0));
        assert_eq!(extract("hour", t), Some(13.0));
    }

    #[test]
    fn month_arithmetic_clamps() {
        let jan31 = parse_timestamp("2021-01-31").unwrap();
        assert_eq!(format_timestamp(add_months(jan31, 1)), "2021-02-28");
        assert_eq!(format_timestamp(add_months(jan31, -2)), "2020-11-30");
        let d = parse_timestamp("1994-01-01").unwrap();
        assert_eq!(format_timestamp(add_months(d, 12)), "1995-01-01");
    }

    #[test]
    fn negative_micros_before_epoch() {
        let t = parse_timestamp("1969-12-31 23:00:00").unwrap();
        assert!(t < 0);
        assert_eq!(format_timestamp(t), "1969-12-31 23:00:00");
    }
}
