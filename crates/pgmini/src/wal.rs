//! Write-ahead log.
//!
//! Records every data change with its transaction, supports named *restore
//! points* (the primitive behind the paper's consistent cluster backups,
//! §3.9), byte-level encoding (what a standby would receive over the
//! replication stream), and replay into a fresh engine.

use crate::catalog::TableId;
use crate::error::{ErrorCode, PgError, PgResult};
use crate::types::{Datum, Json, Row};
use crate::txn::Xid;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

/// Log sequence number: index into the record stream.
pub type Lsn = u64;

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Begin { xid: Xid },
    Insert { xid: Xid, table: TableId, row_id: u64, row: Row },
    /// MVCC update: expire `row_id`'s old version, append the new one. The
    /// expired image rides along so logical consumers (change-data capture,
    /// rollup maintenance) can retract the old row without a heap lookup —
    /// the WAL analog of `REPLICA IDENTITY FULL`.
    Update { xid: Xid, table: TableId, row_id: u64, old_row: Row, new_row: Row },
    /// Delete, carrying the deleted image (see [`WalRecord::Update`]).
    Delete { xid: Xid, table: TableId, row_id: u64, row: Row },
    /// Append-only columnar stripe write. `seq` is the stripe's stable
    /// sequence number, which shard-move catch-up uses to deduplicate
    /// stripes present in both the copy snapshot and the WAL delta.
    ColumnarAppend { xid: Xid, table: TableId, seq: u64, rows: Vec<Row> },
    Commit { xid: Xid },
    Abort { xid: Xid },
    /// First phase of 2PC: the transaction's fate is now externally decided.
    Prepare { xid: Xid, gid: String },
    CommitPrepared { gid: String },
    AbortPrepared { gid: String },
    /// Named restore point for consistent cluster-wide backups.
    RestorePoint { name: String },
    /// Schema change, logged as SQL text so standbys can replay it.
    Ddl { sql: String },
}

impl WalRecord {
    /// The xid this record belongs to, when any.
    pub fn xid(&self) -> Option<Xid> {
        match self {
            WalRecord::Begin { xid }
            | WalRecord::Insert { xid, .. }
            | WalRecord::Update { xid, .. }
            | WalRecord::Delete { xid, .. }
            | WalRecord::ColumnarAppend { xid, .. }
            | WalRecord::Commit { xid }
            | WalRecord::Abort { xid }
            | WalRecord::Prepare { xid, .. } => Some(*xid),
            _ => None,
        }
    }
}

/// In-memory write-ahead log for one engine.
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<WalRecord>>,
}

impl Wal {
    /// Append a record, returning its LSN.
    pub fn append(&self, rec: WalRecord) -> Lsn {
        let mut r = self.records.lock();
        r.push(rec);
        r.len() as Lsn
    }

    /// Current end-of-log LSN.
    pub fn lsn(&self) -> Lsn {
        self.records.lock().len() as Lsn
    }

    /// Records in `(from, to]` — what a standby pulls to catch up.
    pub fn range(&self, from: Lsn, to: Lsn) -> Vec<WalRecord> {
        let r = self.records.lock();
        let to = (to as usize).min(r.len());
        r[(from as usize).min(to)..to].to_vec()
    }

    /// Full copy of the log (for backup archiving).
    pub fn all(&self) -> Vec<WalRecord> {
        self.records.lock().clone()
    }

    /// LSN of the restore point `name`, if present.
    pub fn restore_point(&self, name: &str) -> Option<Lsn> {
        let r = self.records.lock();
        r.iter()
            .position(|rec| matches!(rec, WalRecord::RestorePoint { name: n } if n == name))
            .map(|i| (i + 1) as Lsn)
    }
}

// ---------------- logical decode (change-data capture) ----------------

/// One committed logical change of a single table, decoded from the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    Insert(Row),
    Update { old: Row, new: Row },
    Delete(Row),
}

/// A decoded per-table change-stream prefix: every *committed* change of one
/// table in WAL order, up to the decode horizon.
#[derive(Debug, Clone, Default)]
pub struct TableChanges {
    pub changes: Vec<Change>,
    /// Absolute LSN decoding stopped at: either the first record of the table
    /// belonging to a transaction whose fate is still undecided (in flight,
    /// or prepared and not yet resolved), or the end of the slice. Decoding
    /// can resume from here once the fate lands — everything before the
    /// horizon is final.
    pub horizon: Lsn,
}

/// Transaction fates derivable from a WAL slice alone. Every fate-deciding
/// event (`COMMIT`, `ABORT`, `PREPARE TRANSACTION`, `COMMIT/ROLLBACK
/// PREPARED`) is WAL-logged, and always *after* the data records it decides,
/// so a slice starting at a previous decode horizon is self-contained.
#[derive(Clone, Copy, PartialEq)]
enum TxnFate {
    Committed,
    Aborted,
    Prepared,
}

/// Decode the committed change stream of `table` from `records` (a WAL slice
/// whose first record sits at absolute LSN `base_lsn`).
///
/// The horizon rule makes the stream *prefix-stable*: no later decode of the
/// same (or a longer) log can ever reorder or insert changes before a
/// previously returned horizon. A still-undecided transaction stalls the
/// stream at its first record for the table rather than being skipped,
/// because once it commits its changes must appear exactly there. Aborted
/// transactions' records are dropped — symmetric with
/// [`crate::engine::Engine::restore_from_wal`], which re-logs committed and
/// prepared records in original order and drops aborted ones, so a
/// consumer's change *ordinal* (count of committed changes consumed) stays
/// valid across crash-restore even though raw LSNs do not.
///
/// `ColumnarAppend` stripes decode to one [`Change::Insert`] per row —
/// columnar tables are append-only, so old images never arise.
pub fn decode_table_changes(records: &[WalRecord], base_lsn: Lsn, table: TableId) -> TableChanges {
    let mut fate: std::collections::HashMap<Xid, TxnFate> = std::collections::HashMap::new();
    let mut gid_to_xid: std::collections::HashMap<&str, Xid> = std::collections::HashMap::new();
    for rec in records {
        match rec {
            WalRecord::Commit { xid } => {
                fate.insert(*xid, TxnFate::Committed);
            }
            WalRecord::Abort { xid } => {
                fate.insert(*xid, TxnFate::Aborted);
            }
            WalRecord::Prepare { xid, gid } => {
                fate.insert(*xid, TxnFate::Prepared);
                gid_to_xid.insert(gid, *xid);
            }
            WalRecord::CommitPrepared { gid } => {
                if let Some(x) = gid_to_xid.get(gid.as_str()) {
                    fate.insert(*x, TxnFate::Committed);
                }
            }
            WalRecord::AbortPrepared { gid } => {
                if let Some(x) = gid_to_xid.get(gid.as_str()) {
                    fate.insert(*x, TxnFate::Aborted);
                }
            }
            _ => {}
        }
    }
    let mut out = TableChanges::default();
    for (i, rec) in records.iter().enumerate() {
        let (xid, rec_table) = match rec {
            WalRecord::Insert { xid, table, .. }
            | WalRecord::Update { xid, table, .. }
            | WalRecord::Delete { xid, table, .. }
            | WalRecord::ColumnarAppend { xid, table, .. } => (*xid, *table),
            _ => continue,
        };
        if rec_table != table {
            continue;
        }
        match fate.get(&xid) {
            Some(TxnFate::Committed) => match rec {
                WalRecord::Insert { row, .. } => out.changes.push(Change::Insert(row.clone())),
                WalRecord::Update { old_row, new_row, .. } => out
                    .changes
                    .push(Change::Update { old: old_row.clone(), new: new_row.clone() }),
                WalRecord::Delete { row, .. } => out.changes.push(Change::Delete(row.clone())),
                WalRecord::ColumnarAppend { rows, .. } => {
                    out.changes.extend(rows.iter().cloned().map(Change::Insert))
                }
                _ => unreachable!(),
            },
            Some(TxnFate::Aborted) => {}
            // in flight or prepared-undecided: the horizon
            None | Some(TxnFate::Prepared) => {
                out.horizon = base_lsn + i as Lsn;
                return out;
            }
        }
    }
    out.horizon = base_lsn + records.len() as Lsn;
    out
}

// ---------------- byte encoding ----------------

fn put_datum(buf: &mut BytesMut, d: &Datum) {
    match d {
        Datum::Null => buf.put_u8(0),
        Datum::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Datum::Int(v) => {
            buf.put_u8(2);
            buf.put_i64(*v);
        }
        Datum::Float(v) => {
            buf.put_u8(3);
            buf.put_f64(*v);
        }
        Datum::Text(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Datum::Json(j) => {
            buf.put_u8(5);
            put_str(buf, &j.to_string());
        }
        Datum::Timestamp(t) => {
            buf.put_u8(6);
            buf.put_i64(*t);
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> PgResult<String> {
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt());
    }
    let b = buf.copy_to_bytes(len);
    String::from_utf8(b.to_vec()).map_err(|_| corrupt())
}

fn get_datum(buf: &mut Bytes) -> PgResult<Datum> {
    if buf.remaining() < 1 {
        return Err(corrupt());
    }
    Ok(match buf.get_u8() {
        0 => Datum::Null,
        1 => Datum::Bool(buf.get_u8() != 0),
        2 => Datum::Int(buf.get_i64()),
        3 => Datum::Float(buf.get_f64()),
        4 => Datum::Text(get_str(buf)?),
        5 => Datum::Json(Json::parse(&get_str(buf)?)?),
        6 => Datum::Timestamp(buf.get_i64()),
        _ => return Err(corrupt()),
    })
}

fn put_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32(row.len() as u32);
    for d in row {
        put_datum(buf, d);
    }
}

fn get_row(buf: &mut Bytes) -> PgResult<Row> {
    let n = buf.get_u32() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_datum(buf)?);
    }
    Ok(row)
}

fn corrupt() -> PgError {
    PgError::new(ErrorCode::Internal, "corrupt WAL record")
}

/// Encode a record to bytes (the replication wire format).
pub fn encode_record(rec: &WalRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match rec {
        WalRecord::Begin { xid } => {
            buf.put_u8(1);
            buf.put_u64(*xid);
        }
        WalRecord::Insert { xid, table, row_id, row } => {
            buf.put_u8(2);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*row_id);
            put_row(&mut buf, row);
        }
        WalRecord::Update { xid, table, row_id, old_row, new_row } => {
            buf.put_u8(3);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*row_id);
            put_row(&mut buf, old_row);
            put_row(&mut buf, new_row);
        }
        WalRecord::Delete { xid, table, row_id, row } => {
            buf.put_u8(4);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*row_id);
            put_row(&mut buf, row);
        }
        WalRecord::Commit { xid } => {
            buf.put_u8(5);
            buf.put_u64(*xid);
        }
        WalRecord::Abort { xid } => {
            buf.put_u8(6);
            buf.put_u64(*xid);
        }
        WalRecord::Prepare { xid, gid } => {
            buf.put_u8(7);
            buf.put_u64(*xid);
            put_str(&mut buf, gid);
        }
        WalRecord::CommitPrepared { gid } => {
            buf.put_u8(8);
            put_str(&mut buf, gid);
        }
        WalRecord::AbortPrepared { gid } => {
            buf.put_u8(9);
            put_str(&mut buf, gid);
        }
        WalRecord::RestorePoint { name } => {
            buf.put_u8(10);
            put_str(&mut buf, name);
        }
        WalRecord::Ddl { sql } => {
            buf.put_u8(11);
            put_str(&mut buf, sql);
        }
        WalRecord::ColumnarAppend { xid, table, seq, rows } => {
            buf.put_u8(12);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*seq);
            buf.put_u32(rows.len() as u32);
            for row in rows {
                put_row(&mut buf, row);
            }
        }
    }
    buf.freeze()
}

/// Decode a record from bytes.
pub fn decode_record(mut buf: Bytes) -> PgResult<WalRecord> {
    if buf.remaining() < 1 {
        return Err(corrupt());
    }
    Ok(match buf.get_u8() {
        1 => WalRecord::Begin { xid: buf.get_u64() },
        2 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let row_id = buf.get_u64();
            WalRecord::Insert { xid, table, row_id, row: get_row(&mut buf)? }
        }
        3 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let row_id = buf.get_u64();
            let old_row = get_row(&mut buf)?;
            WalRecord::Update { xid, table, row_id, old_row, new_row: get_row(&mut buf)? }
        }
        4 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let row_id = buf.get_u64();
            WalRecord::Delete { xid, table, row_id, row: get_row(&mut buf)? }
        }
        5 => WalRecord::Commit { xid: buf.get_u64() },
        6 => WalRecord::Abort { xid: buf.get_u64() },
        7 => {
            let xid = buf.get_u64();
            WalRecord::Prepare { xid, gid: get_str(&mut buf)? }
        }
        8 => WalRecord::CommitPrepared { gid: get_str(&mut buf)? },
        9 => WalRecord::AbortPrepared { gid: get_str(&mut buf)? },
        10 => WalRecord::RestorePoint { name: get_str(&mut buf)? },
        11 => WalRecord::Ddl { sql: get_str(&mut buf)? },
        12 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let seq = buf.get_u64();
            let n = buf.get_u32() as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(get_row(&mut buf)?);
            }
            WalRecord::ColumnarAppend { xid, table, seq, rows }
        }
        _ => return Err(corrupt()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { xid: 7 },
            WalRecord::Insert {
                xid: 7,
                table: TableId(3),
                row_id: 99,
                row: vec![
                    Datum::Int(5),
                    Datum::Null,
                    Datum::from_text("héllo"),
                    Datum::Float(2.5),
                    Datum::Bool(true),
                    Datum::Timestamp(123_456),
                    Datum::Json(Json::parse(r#"{"a": [1, 2]}"#).unwrap()),
                ],
            },
            WalRecord::Update {
                xid: 7,
                table: TableId(3),
                row_id: 99,
                old_row: vec![Datum::Int(5)],
                new_row: vec![Datum::Int(6)],
            },
            WalRecord::Delete { xid: 7, table: TableId(3), row_id: 99, row: vec![Datum::Int(6)] },
            WalRecord::Prepare { xid: 7, gid: "citrus_1_7".into() },
            WalRecord::CommitPrepared { gid: "citrus_1_7".into() },
            WalRecord::AbortPrepared { gid: "other".into() },
            WalRecord::Commit { xid: 8 },
            WalRecord::Abort { xid: 9 },
            WalRecord::RestorePoint { name: "backup-2020".into() },
            WalRecord::Ddl { sql: "CREATE TABLE t (a bigint)".into() },
            WalRecord::ColumnarAppend {
                xid: 7,
                table: TableId(4),
                seq: 2,
                rows: vec![vec![Datum::Int(1), Datum::from_text("x")], vec![Datum::Int(2), Datum::Null]],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rec in sample_records() {
            let bytes = encode_record(&rec);
            let back = decode_record(bytes).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn append_and_range() {
        let wal = Wal::default();
        for rec in sample_records() {
            wal.append(rec);
        }
        assert_eq!(wal.lsn(), 12);
        assert_eq!(wal.range(0, 3).len(), 3);
        assert_eq!(wal.range(8, 100).len(), 4);
        assert_eq!(wal.range(5, 3).len(), 0);
    }

    #[test]
    fn restore_point_lookup() {
        let wal = Wal::default();
        wal.append(WalRecord::Begin { xid: 1 });
        wal.append(WalRecord::RestorePoint { name: "rp1".into() });
        wal.append(WalRecord::Commit { xid: 1 });
        assert_eq!(wal.restore_point("rp1"), Some(2));
        assert_eq!(wal.restore_point("nope"), None);
        // replaying up to the restore point excludes the commit
        assert_eq!(wal.range(0, wal.restore_point("rp1").unwrap()).len(), 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(Bytes::from_static(&[])).is_err());
        assert!(decode_record(Bytes::from_static(&[200])).is_err());
    }

    fn ins(xid: Xid, table: u32, v: i64) -> WalRecord {
        WalRecord::Insert { xid, table: TableId(table), row_id: v as u64, row: vec![Datum::Int(v)] }
    }

    #[test]
    fn decode_emits_only_committed_changes_in_order() {
        let recs = vec![
            WalRecord::Begin { xid: 1 },
            ins(1, 3, 10),
            WalRecord::Begin { xid: 2 },
            ins(2, 3, 20), // aborted: dropped
            WalRecord::Update {
                xid: 1,
                table: TableId(3),
                row_id: 10,
                old_row: vec![Datum::Int(10)],
                new_row: vec![Datum::Int(11)],
            },
            ins(1, 4, 99), // other table: ignored
            WalRecord::Abort { xid: 2 },
            WalRecord::Commit { xid: 1 },
        ];
        let s = decode_table_changes(&recs, 0, TableId(3));
        assert_eq!(
            s.changes,
            vec![
                Change::Insert(vec![Datum::Int(10)]),
                Change::Update { old: vec![Datum::Int(10)], new: vec![Datum::Int(11)] },
            ]
        );
        assert_eq!(s.horizon, recs.len() as Lsn);
    }

    #[test]
    fn decode_horizon_stalls_on_undecided_txn() {
        // xid 1 is prepared but unresolved: its first record for the table is
        // the horizon, and a *later* committed change must not jump the queue
        let recs = vec![
            ins(2, 3, 1),
            WalRecord::Commit { xid: 2 },
            ins(1, 3, 2),
            WalRecord::Prepare { xid: 1, gid: "g1".into() },
            ins(3, 3, 3),
            WalRecord::Commit { xid: 3 },
        ];
        let s = decode_table_changes(&recs, 0, TableId(3));
        assert_eq!(s.changes, vec![Change::Insert(vec![Datum::Int(1)])]);
        assert_eq!(s.horizon, 2);
        // resuming from the horizon after the fate lands is self-contained:
        // the prepare + commit-prepared records sit after the data record
        let mut recs2 = recs[s.horizon as usize..].to_vec();
        recs2.push(WalRecord::CommitPrepared { gid: "g1".into() });
        let s2 = decode_table_changes(&recs2, s.horizon, TableId(3));
        assert_eq!(
            s2.changes,
            vec![Change::Insert(vec![Datum::Int(2)]), Change::Insert(vec![Datum::Int(3)])]
        );
        assert_eq!(s2.horizon, s.horizon + recs2.len() as Lsn);
    }

    #[test]
    fn decode_in_flight_txn_stalls_only_its_table() {
        let recs = vec![
            ins(1, 7, 1), // xid 1 never decided, but only touches table 7
            ins(2, 3, 2),
            WalRecord::Commit { xid: 2 },
        ];
        let s = decode_table_changes(&recs, 0, TableId(3));
        assert_eq!(s.changes, vec![Change::Insert(vec![Datum::Int(2)])]);
        assert_eq!(s.horizon, 3);
        let stalled = decode_table_changes(&recs, 0, TableId(7));
        assert!(stalled.changes.is_empty());
        assert_eq!(stalled.horizon, 0);
    }

    #[test]
    fn decode_columnar_append_fans_out_to_inserts() {
        let recs = vec![
            WalRecord::ColumnarAppend {
                xid: 5,
                table: TableId(4),
                seq: 0,
                rows: vec![vec![Datum::Int(1)], vec![Datum::Int(2)]],
            },
            WalRecord::Commit { xid: 5 },
        ];
        let s = decode_table_changes(&recs, 0, TableId(4));
        assert_eq!(
            s.changes,
            vec![Change::Insert(vec![Datum::Int(1)]), Change::Insert(vec![Datum::Int(2)])]
        );
    }
}
