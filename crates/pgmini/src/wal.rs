//! Write-ahead log.
//!
//! Records every data change with its transaction, supports named *restore
//! points* (the primitive behind the paper's consistent cluster backups,
//! §3.9), byte-level encoding (what a standby would receive over the
//! replication stream), and replay into a fresh engine.

use crate::catalog::TableId;
use crate::error::{ErrorCode, PgError, PgResult};
use crate::types::{Datum, Json, Row};
use crate::txn::Xid;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

/// Log sequence number: index into the record stream.
pub type Lsn = u64;

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Begin { xid: Xid },
    Insert { xid: Xid, table: TableId, row_id: u64, row: Row },
    /// MVCC update: expire `row_id`'s old version, append the new one.
    Update { xid: Xid, table: TableId, row_id: u64, new_row: Row },
    Delete { xid: Xid, table: TableId, row_id: u64 },
    /// Append-only columnar stripe write. `seq` is the stripe's stable
    /// sequence number, which shard-move catch-up uses to deduplicate
    /// stripes present in both the copy snapshot and the WAL delta.
    ColumnarAppend { xid: Xid, table: TableId, seq: u64, rows: Vec<Row> },
    Commit { xid: Xid },
    Abort { xid: Xid },
    /// First phase of 2PC: the transaction's fate is now externally decided.
    Prepare { xid: Xid, gid: String },
    CommitPrepared { gid: String },
    AbortPrepared { gid: String },
    /// Named restore point for consistent cluster-wide backups.
    RestorePoint { name: String },
    /// Schema change, logged as SQL text so standbys can replay it.
    Ddl { sql: String },
}

impl WalRecord {
    /// The xid this record belongs to, when any.
    pub fn xid(&self) -> Option<Xid> {
        match self {
            WalRecord::Begin { xid }
            | WalRecord::Insert { xid, .. }
            | WalRecord::Update { xid, .. }
            | WalRecord::Delete { xid, .. }
            | WalRecord::ColumnarAppend { xid, .. }
            | WalRecord::Commit { xid }
            | WalRecord::Abort { xid }
            | WalRecord::Prepare { xid, .. } => Some(*xid),
            _ => None,
        }
    }
}

/// In-memory write-ahead log for one engine.
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<WalRecord>>,
}

impl Wal {
    /// Append a record, returning its LSN.
    pub fn append(&self, rec: WalRecord) -> Lsn {
        let mut r = self.records.lock();
        r.push(rec);
        r.len() as Lsn
    }

    /// Current end-of-log LSN.
    pub fn lsn(&self) -> Lsn {
        self.records.lock().len() as Lsn
    }

    /// Records in `(from, to]` — what a standby pulls to catch up.
    pub fn range(&self, from: Lsn, to: Lsn) -> Vec<WalRecord> {
        let r = self.records.lock();
        let to = (to as usize).min(r.len());
        r[(from as usize).min(to)..to].to_vec()
    }

    /// Full copy of the log (for backup archiving).
    pub fn all(&self) -> Vec<WalRecord> {
        self.records.lock().clone()
    }

    /// LSN of the restore point `name`, if present.
    pub fn restore_point(&self, name: &str) -> Option<Lsn> {
        let r = self.records.lock();
        r.iter()
            .position(|rec| matches!(rec, WalRecord::RestorePoint { name: n } if n == name))
            .map(|i| (i + 1) as Lsn)
    }
}

// ---------------- byte encoding ----------------

fn put_datum(buf: &mut BytesMut, d: &Datum) {
    match d {
        Datum::Null => buf.put_u8(0),
        Datum::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Datum::Int(v) => {
            buf.put_u8(2);
            buf.put_i64(*v);
        }
        Datum::Float(v) => {
            buf.put_u8(3);
            buf.put_f64(*v);
        }
        Datum::Text(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Datum::Json(j) => {
            buf.put_u8(5);
            put_str(buf, &j.to_string());
        }
        Datum::Timestamp(t) => {
            buf.put_u8(6);
            buf.put_i64(*t);
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> PgResult<String> {
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(corrupt());
    }
    let b = buf.copy_to_bytes(len);
    String::from_utf8(b.to_vec()).map_err(|_| corrupt())
}

fn get_datum(buf: &mut Bytes) -> PgResult<Datum> {
    if buf.remaining() < 1 {
        return Err(corrupt());
    }
    Ok(match buf.get_u8() {
        0 => Datum::Null,
        1 => Datum::Bool(buf.get_u8() != 0),
        2 => Datum::Int(buf.get_i64()),
        3 => Datum::Float(buf.get_f64()),
        4 => Datum::Text(get_str(buf)?),
        5 => Datum::Json(Json::parse(&get_str(buf)?)?),
        6 => Datum::Timestamp(buf.get_i64()),
        _ => return Err(corrupt()),
    })
}

fn put_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32(row.len() as u32);
    for d in row {
        put_datum(buf, d);
    }
}

fn get_row(buf: &mut Bytes) -> PgResult<Row> {
    let n = buf.get_u32() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_datum(buf)?);
    }
    Ok(row)
}

fn corrupt() -> PgError {
    PgError::new(ErrorCode::Internal, "corrupt WAL record")
}

/// Encode a record to bytes (the replication wire format).
pub fn encode_record(rec: &WalRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match rec {
        WalRecord::Begin { xid } => {
            buf.put_u8(1);
            buf.put_u64(*xid);
        }
        WalRecord::Insert { xid, table, row_id, row } => {
            buf.put_u8(2);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*row_id);
            put_row(&mut buf, row);
        }
        WalRecord::Update { xid, table, row_id, new_row } => {
            buf.put_u8(3);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*row_id);
            put_row(&mut buf, new_row);
        }
        WalRecord::Delete { xid, table, row_id } => {
            buf.put_u8(4);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*row_id);
        }
        WalRecord::Commit { xid } => {
            buf.put_u8(5);
            buf.put_u64(*xid);
        }
        WalRecord::Abort { xid } => {
            buf.put_u8(6);
            buf.put_u64(*xid);
        }
        WalRecord::Prepare { xid, gid } => {
            buf.put_u8(7);
            buf.put_u64(*xid);
            put_str(&mut buf, gid);
        }
        WalRecord::CommitPrepared { gid } => {
            buf.put_u8(8);
            put_str(&mut buf, gid);
        }
        WalRecord::AbortPrepared { gid } => {
            buf.put_u8(9);
            put_str(&mut buf, gid);
        }
        WalRecord::RestorePoint { name } => {
            buf.put_u8(10);
            put_str(&mut buf, name);
        }
        WalRecord::Ddl { sql } => {
            buf.put_u8(11);
            put_str(&mut buf, sql);
        }
        WalRecord::ColumnarAppend { xid, table, seq, rows } => {
            buf.put_u8(12);
            buf.put_u64(*xid);
            buf.put_u32(table.0);
            buf.put_u64(*seq);
            buf.put_u32(rows.len() as u32);
            for row in rows {
                put_row(&mut buf, row);
            }
        }
    }
    buf.freeze()
}

/// Decode a record from bytes.
pub fn decode_record(mut buf: Bytes) -> PgResult<WalRecord> {
    if buf.remaining() < 1 {
        return Err(corrupt());
    }
    Ok(match buf.get_u8() {
        1 => WalRecord::Begin { xid: buf.get_u64() },
        2 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let row_id = buf.get_u64();
            WalRecord::Insert { xid, table, row_id, row: get_row(&mut buf)? }
        }
        3 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let row_id = buf.get_u64();
            WalRecord::Update { xid, table, row_id, new_row: get_row(&mut buf)? }
        }
        4 => WalRecord::Delete {
            xid: buf.get_u64(),
            table: TableId(buf.get_u32()),
            row_id: buf.get_u64(),
        },
        5 => WalRecord::Commit { xid: buf.get_u64() },
        6 => WalRecord::Abort { xid: buf.get_u64() },
        7 => {
            let xid = buf.get_u64();
            WalRecord::Prepare { xid, gid: get_str(&mut buf)? }
        }
        8 => WalRecord::CommitPrepared { gid: get_str(&mut buf)? },
        9 => WalRecord::AbortPrepared { gid: get_str(&mut buf)? },
        10 => WalRecord::RestorePoint { name: get_str(&mut buf)? },
        11 => WalRecord::Ddl { sql: get_str(&mut buf)? },
        12 => {
            let xid = buf.get_u64();
            let table = TableId(buf.get_u32());
            let seq = buf.get_u64();
            let n = buf.get_u32() as usize;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(get_row(&mut buf)?);
            }
            WalRecord::ColumnarAppend { xid, table, seq, rows }
        }
        _ => return Err(corrupt()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { xid: 7 },
            WalRecord::Insert {
                xid: 7,
                table: TableId(3),
                row_id: 99,
                row: vec![
                    Datum::Int(5),
                    Datum::Null,
                    Datum::from_text("héllo"),
                    Datum::Float(2.5),
                    Datum::Bool(true),
                    Datum::Timestamp(123_456),
                    Datum::Json(Json::parse(r#"{"a": [1, 2]}"#).unwrap()),
                ],
            },
            WalRecord::Update { xid: 7, table: TableId(3), row_id: 99, new_row: vec![Datum::Int(6)] },
            WalRecord::Delete { xid: 7, table: TableId(3), row_id: 99 },
            WalRecord::Prepare { xid: 7, gid: "citrus_1_7".into() },
            WalRecord::CommitPrepared { gid: "citrus_1_7".into() },
            WalRecord::AbortPrepared { gid: "other".into() },
            WalRecord::Commit { xid: 8 },
            WalRecord::Abort { xid: 9 },
            WalRecord::RestorePoint { name: "backup-2020".into() },
            WalRecord::Ddl { sql: "CREATE TABLE t (a bigint)".into() },
            WalRecord::ColumnarAppend {
                xid: 7,
                table: TableId(4),
                seq: 2,
                rows: vec![vec![Datum::Int(1), Datum::from_text("x")], vec![Datum::Int(2), Datum::Null]],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rec in sample_records() {
            let bytes = encode_record(&rec);
            let back = decode_record(bytes).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn append_and_range() {
        let wal = Wal::default();
        for rec in sample_records() {
            wal.append(rec);
        }
        assert_eq!(wal.lsn(), 12);
        assert_eq!(wal.range(0, 3).len(), 3);
        assert_eq!(wal.range(8, 100).len(), 4);
        assert_eq!(wal.range(5, 3).len(), 0);
    }

    #[test]
    fn restore_point_lookup() {
        let wal = Wal::default();
        wal.append(WalRecord::Begin { xid: 1 });
        wal.append(WalRecord::RestorePoint { name: "rp1".into() });
        wal.append(WalRecord::Commit { xid: 1 });
        assert_eq!(wal.restore_point("rp1"), Some(2));
        assert_eq!(wal.restore_point("nope"), None);
        // replaying up to the restore point excludes the commit
        assert_eq!(wal.range(0, wal.restore_point("rp1").unwrap()).len(), 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_record(Bytes::from_static(&[])).is_err());
        assert!(decode_record(Bytes::from_static(&[200])).is_err());
    }
}
