//! Property tests on the engine's core data structures and invariants.

use pgmini::types::{datum::hash_row, text_ops, Datum, Json, SortKey};
use proptest::prelude::*;

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        any::<i64>().prop_map(Datum::Int),
        (-1e12..1e12f64).prop_map(Datum::Float),
        "[a-zA-Z0-9 _-]{0,16}".prop_map(Datum::Text),
        (-4_000_000_000_000i64..4_000_000_000_000i64).prop_map(Datum::Timestamp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `total_cmp` is a total order: antisymmetric and transitive (checked
    /// through sort stability), with NULLs last.
    #[test]
    fn datum_total_order(mut v in prop::collection::vec(arb_datum(), 0..20)) {
        v.sort_by(|a, b| a.total_cmp(b));
        for w in v.windows(2) {
            prop_assert_ne!(w[0].total_cmp(&w[1]), std::cmp::Ordering::Greater);
        }
        // nulls sort last
        if let Some(first_null) = v.iter().position(Datum::is_null) {
            prop_assert!(v[first_null..].iter().all(Datum::is_null));
        }
    }

    /// Equal datums hash equally (incl. Int/Float cross-type equality).
    #[test]
    fn hash_respects_equality(a in any::<i32>()) {
        let i = Datum::Int(a as i64);
        let f = Datum::Float(a as f64);
        prop_assert_eq!(i.sql_cmp(&f), Some(std::cmp::Ordering::Equal));
        prop_assert_eq!(i.hash64(), f.hash64());
    }

    /// Row hashing is deterministic and order-sensitive.
    #[test]
    fn row_hash_deterministic(v in prop::collection::vec(arb_datum(), 1..6)) {
        prop_assert_eq!(hash_row(&v), hash_row(&v));
    }

    /// SortKey ordering agrees with element-wise total_cmp.
    #[test]
    fn sortkey_agrees_with_elementwise(a in arb_datum(), b in arb_datum()) {
        let ka = SortKey(vec![a.clone()]);
        let kb = SortKey(vec![b.clone()]);
        prop_assert_eq!(ka.cmp(&kb), a.total_cmp(&b));
    }

    /// LIKE: every string matches '%', and a string always matches itself
    /// (when it contains no metacharacters).
    #[test]
    fn like_identities(s in "[a-z0-9 ]{0,20}") {
        prop_assert!(text_ops::like_match(&s, "%", false));
        prop_assert!(text_ops::like_match(&s, &s, false));
        prop_assert!(text_ops::like_match(&s.to_uppercase(), &s, true));
        // '%s%' matches any superstring
        let pattern = format!("%{s}%");
        let superstring = format!("xx{s}yy");
        prop_assert!(text_ops::like_match(&superstring, &pattern, false));
    }

    /// The GIN pruning invariant: every trigram required by a LIKE pattern
    /// occurs in any matching document's trigram set (no false negatives).
    #[test]
    fn gin_pruning_no_false_negatives(
        needle in "[a-z]{3,8}",
        prefix in "[a-z ]{0,8}",
        suffix in "[a-z ]{0,8}",
    ) {
        let doc = format!("{prefix}{needle}{suffix}");
        let pattern = format!("%{needle}%");
        prop_assert!(text_ops::like_match(&doc, &pattern, false));
        if let Some(required) = text_ops::required_trigrams_for_like(&pattern) {
            let doc_grams = text_ops::trigrams(&doc);
            for g in required {
                prop_assert!(doc_grams.contains(&g), "missing {g:?} for doc {doc:?}");
            }
        }
    }

    /// JSON display → parse is the identity.
    #[test]
    fn json_roundtrip(pairs in prop::collection::vec(("[a-z]{1,6}", -1000..1000i64), 0..6)) {
        let j = Json::Object(
            pairs.into_iter().map(|(k, v)| (k, Json::Number(v as f64))).collect(),
        );
        let text = j.to_string();
        prop_assert_eq!(Json::parse(&text).unwrap(), j);
    }

    /// Timestamp parse/format roundtrip over a wide date range.
    #[test]
    fn timestamp_roundtrip(days in -100_000..100_000i64, secs in 0..86_400i64) {
        use pgmini::types::time;
        let micros = days * time::MICROS_PER_DAY + secs * time::MICROS_PER_SEC;
        let text = time::format_timestamp(micros);
        prop_assert_eq!(time::parse_timestamp(&text), Some(micros));
    }

    /// WAL encode/decode is the identity on insert records.
    #[test]
    fn wal_record_roundtrip(row in prop::collection::vec(arb_datum(), 0..5), xid in 1..10_000u64) {
        use pgmini::wal::{decode_record, encode_record, WalRecord};
        let rec = WalRecord::Insert {
            xid,
            table: pgmini::catalog::TableId(7),
            row_id: xid * 3,
            row,
        };
        prop_assert_eq!(decode_record(encode_record(&rec)).unwrap(), rec);
    }

    /// Buffer pool never exceeds capacity and never reports more misses
    /// than pages requested.
    #[test]
    fn buffer_pool_invariants(
        cap in 1..500u64,
        scans in prop::collection::vec((0..20u32, 1..200u64), 1..30),
    ) {
        use pgmini::buffer::{BufferKey, BufferPool};
        let pool = BufferPool::new(cap);
        for (t, pages) in scans {
            let misses = pool.scan(BufferKey::Table(t), pages);
            prop_assert!(misses <= pages);
            prop_assert!(pool.total_resident() <= cap);
        }
    }
}
