//! End-to-end SQL tests against a single pgmini engine: the substrate must
//! behave like a small PostgreSQL before the distributed layer builds on it.

use pgmini::engine::Engine;
use pgmini::error::ErrorCode;
use pgmini::session::QueryResult;
use pgmini::types::Datum;

fn engine_with_orders() -> std::sync::Arc<Engine> {
    let e = Engine::new_default();
    let mut s = e.session().unwrap();
    s.execute_script(
        "CREATE TABLE customers (c_id bigint PRIMARY KEY, name text NOT NULL, region text);
         CREATE TABLE orders (o_id bigint PRIMARY KEY, c_id bigint REFERENCES customers,
                              amount float, placed timestamp);
         CREATE INDEX orders_cid ON orders (c_id);",
    )
    .unwrap();
    s.execute(
        "INSERT INTO customers VALUES (1, 'acme', 'eu'), (2, 'globex', 'us'), (3, 'umbrella', 'eu')",
    )
    .unwrap();
    s.execute(
        "INSERT INTO orders VALUES \
         (10, 1, 25.0, '2020-01-05'), (11, 1, 75.0, '2020-02-01'), \
         (12, 2, 100.0, '2020-01-20'), (13, 3, 10.0, '2020-03-01')",
    )
    .unwrap();
    drop(s);
    e
}

fn ints(result: &QueryResult) -> Vec<i64> {
    result.rows().iter().map(|r| r[0].as_i64().unwrap()).collect()
}

#[test]
fn basic_select_where_order_limit() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s.execute("SELECT o_id FROM orders WHERE amount > 20 ORDER BY amount DESC LIMIT 2").unwrap();
    assert_eq!(ints(&r), vec![12, 11]);
    let r = s.execute("SELECT o_id FROM orders ORDER BY 1 OFFSET 1 LIMIT 2").unwrap();
    assert_eq!(ints(&r), vec![11, 12]);
}

#[test]
fn point_lookup_uses_pk_index() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s.execute("EXPLAIN SELECT * FROM orders WHERE o_id = 11").unwrap();
    let plan = format!("{:?}", r.rows());
    assert!(plan.contains("Index Scan"), "expected index scan: {plan}");
    let r = s.execute("SELECT amount FROM orders WHERE o_id = 11").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(75.0));
}

#[test]
fn joins_inner_and_left() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s
        .execute(
            "SELECT c.name, o.amount FROM customers c JOIN orders o ON c.c_id = o.c_id \
             WHERE c.region = 'eu' ORDER BY o.amount",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 3);
    assert_eq!(r.rows()[0][0], Datum::from_text("umbrella"));
    // LEFT JOIN keeps customers without orders
    s.execute("INSERT INTO customers VALUES (4, 'initech', 'us')").unwrap();
    let r = s
        .execute(
            "SELECT c.name, o.o_id FROM customers c LEFT JOIN orders o ON c.c_id = o.c_id \
             WHERE c.c_id = 4",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 1);
    assert_eq!(r.rows()[0][1], Datum::Null);
}

#[test]
fn aggregates_group_by_having() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s
        .execute(
            "SELECT c.region, count(*), sum(o.amount), avg(o.amount) \
             FROM customers c JOIN orders o ON c.c_id = o.c_id \
             GROUP BY c.region HAVING sum(o.amount) > 50 ORDER BY 1",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(r.rows()[0][0], Datum::from_text("eu"));
    assert_eq!(r.rows()[0][1], Datum::Int(3));
    assert_eq!(r.rows()[0][2], Datum::Float(110.0));
    // global aggregate over empty input yields one row
    let r = s.execute("SELECT count(*), sum(amount) FROM orders WHERE amount > 1e9").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(0));
    assert_eq!(r.rows()[0][1], Datum::Null);
}

#[test]
fn group_by_ordinal_and_distinct() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s
        .execute("SELECT region, count(*) FROM customers GROUP BY 1 ORDER BY 2 DESC, 1")
        .unwrap();
    assert_eq!(r.rows()[0][0], Datum::from_text("eu"));
    let r = s.execute("SELECT DISTINCT region FROM customers ORDER BY region").unwrap();
    assert_eq!(r.rows().len(), 2);
}

#[test]
fn subqueries_in_from_and_where() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s
        .execute(
            "SELECT name FROM customers WHERE c_id IN (SELECT c_id FROM orders WHERE amount > 50) \
             ORDER BY name",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    let r = s
        .execute(
            "SELECT sum(total) FROM (SELECT c_id, sum(amount) AS total FROM orders GROUP BY c_id) t",
        )
        .unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(210.0));
    let r = s
        .execute("SELECT name FROM customers WHERE c_id = (SELECT c_id FROM orders WHERE o_id = 12)")
        .unwrap();
    assert_eq!(r.rows()[0][0], Datum::from_text("globex"));
}

#[test]
fn dml_update_delete_with_index() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s.execute("UPDATE orders SET amount = amount + 1 WHERE c_id = 1").unwrap();
    assert_eq!(r.affected(), 2);
    let r = s.execute("SELECT sum(amount) FROM orders").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(212.0));
    let r = s.execute("DELETE FROM orders WHERE o_id = 13").unwrap();
    assert_eq!(r.affected(), 1);
    let r = s.execute("SELECT count(*) FROM orders").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(3));
}

#[test]
fn constraint_violations() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    // unique (pk)
    let err = s.execute("INSERT INTO customers VALUES (1, 'dup', 'eu')").unwrap_err();
    assert_eq!(err.code, ErrorCode::UniqueViolation);
    // not null
    let err = s.execute("INSERT INTO customers (c_id, region) VALUES (9, 'eu')").unwrap_err();
    assert_eq!(err.code, ErrorCode::NotNullViolation);
    // fk: unknown customer
    let err = s.execute("INSERT INTO orders VALUES (99, 42, 1.0, '2020-01-01')").unwrap_err();
    assert_eq!(err.code, ErrorCode::ForeignKeyViolation);
    // fk: cannot delete referenced customer
    let err = s.execute("DELETE FROM customers WHERE c_id = 1").unwrap_err();
    assert_eq!(err.code, ErrorCode::ForeignKeyViolation);
}

#[test]
fn on_conflict_paths() {
    let e = Engine::new_default();
    let mut s = e.session().unwrap();
    s.execute("CREATE TABLE counters (key text PRIMARY KEY, n bigint)").unwrap();
    s.execute("INSERT INTO counters VALUES ('a', 1)").unwrap();
    let r = s.execute("INSERT INTO counters VALUES ('a', 1) ON CONFLICT (key) DO NOTHING").unwrap();
    assert_eq!(r.affected(), 0);
    s.execute(
        "INSERT INTO counters VALUES ('a', 1) ON CONFLICT (key) DO UPDATE SET n = counters.n + excluded.n",
    )
    .unwrap();
    let r = s.execute("SELECT n FROM counters WHERE key = 'a'").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(2));
}

#[test]
fn transaction_block_semantics() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE orders SET amount = 0 WHERE o_id = 10").unwrap();
    // another session doesn't see it yet
    let mut other = e.session().unwrap();
    let r = other.execute("SELECT amount FROM orders WHERE o_id = 10").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(25.0));
    s.execute("COMMIT").unwrap();
    let r = other.execute("SELECT amount FROM orders WHERE o_id = 10").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(0.0));
    // rollback undoes
    s.execute("BEGIN").unwrap();
    s.execute("DELETE FROM orders WHERE o_id = 11").unwrap();
    s.execute("ROLLBACK").unwrap();
    let r = other.execute("SELECT count(*) FROM orders WHERE o_id = 11").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(1));
}

#[test]
fn failed_transaction_blocks_until_rollback() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    s.execute("BEGIN").unwrap();
    let _ = s.execute("SELECT * FROM no_such_table").unwrap_err();
    let err = s.execute("SELECT 1").unwrap_err();
    assert_eq!(err.code, ErrorCode::InvalidTransactionState);
    s.execute("ROLLBACK").unwrap();
    s.execute("SELECT count(*) FROM orders").unwrap();
}

#[test]
fn prepared_transactions_two_phase() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE orders SET amount = 500 WHERE o_id = 10").unwrap();
    s.execute("PREPARE TRANSACTION 'tx1'").unwrap();
    // session has moved on; effect not yet visible anywhere
    let r = s.execute("SELECT amount FROM orders WHERE o_id = 10").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(25.0));
    assert_eq!(e.txns.prepared_gids(), vec!["tx1".to_string()]);
    // a different session can finish it (recovery does this)
    let mut other = e.session().unwrap();
    other.execute("COMMIT PREPARED 'tx1'").unwrap();
    let r = s.execute("SELECT amount FROM orders WHERE o_id = 10").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(500.0));
}

#[test]
fn prepared_transaction_holds_locks() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE orders SET amount = 1 WHERE o_id = 10").unwrap();
    s.execute("PREPARE TRANSACTION 'blocker'").unwrap();
    // lock survives: a concurrent update must block → use lock_timeout
    e.locks.cancel_dist_txn(pgmini::lock::DistTxnId { origin_node: 0, number: 0, timestamp: 0 });
    let mut other = e.session().unwrap();
    other.execute("BEGIN").unwrap();
    // cancel the waiter from another thread after a moment
    let flag = other.cancel_flag();
    let h = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(100));
        flag.store(pgmini::lock::CANCEL_QUERY, std::sync::atomic::Ordering::SeqCst);
    });
    let err = other.execute("UPDATE orders SET amount = 2 WHERE o_id = 10").unwrap_err();
    assert_eq!(err.code, ErrorCode::QueryCanceled);
    h.join().unwrap();
    other.execute("ROLLBACK").unwrap();
    let mut fin = e.session().unwrap();
    fin.execute("ROLLBACK PREPARED 'blocker'").unwrap();
}

#[test]
fn select_for_update_blocks_writer() {
    let e = engine_with_orders();
    let mut s1 = e.session().unwrap();
    s1.execute("BEGIN").unwrap();
    let r = s1.execute("SELECT * FROM orders WHERE o_id = 10 FOR UPDATE").unwrap();
    assert_eq!(r.rows().len(), 1);
    // concurrent update of the same row waits; of another row proceeds
    let e2 = e.clone();
    let h = std::thread::spawn(move || {
        let mut s2 = e2.session().unwrap();
        s2.execute("UPDATE orders SET amount = 7 WHERE o_id = 10").unwrap();
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert_eq!(e.locks.waiting_count(), 1);
    s1.execute("COMMIT").unwrap();
    h.join().unwrap();
    let mut s3 = e.session().unwrap();
    let r = s3.execute("SELECT amount FROM orders WHERE o_id = 10").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(7.0));
}

#[test]
fn copy_and_vacuum() {
    let e = Engine::new_default();
    let mut s = e.session().unwrap();
    s.execute("CREATE TABLE t (id bigint PRIMARY KEY, v text)").unwrap();
    let n = s.copy_text("t", &[], "1,hello\n2,\\N\n3,\"with,comma\"\n").unwrap();
    assert_eq!(n, 3);
    let r = s.execute("SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Null);
    let r = s.execute("SELECT v FROM t WHERE id = 3").unwrap();
    assert_eq!(r.rows()[0][0], Datum::from_text("with,comma"));
    // dead versions accumulate and vacuum reclaims them
    s.execute("UPDATE t SET v = 'x' WHERE id = 1").unwrap();
    let reclaimed = s.execute("VACUUM t").unwrap();
    assert_eq!(reclaimed.affected(), 1);
}

#[test]
fn json_and_gin_trigram_dashboard() {
    let e = Engine::new_default();
    let mut s = e.session().unwrap();
    s.execute("CREATE TABLE events (id bigint PRIMARY KEY, data jsonb)").unwrap();
    s.execute(
        "CREATE INDEX ev_msg ON events USING gin \
         ((jsonb_path_query_array(data, '$.payload.commits[*].message')::text))",
    )
    .unwrap();
    s.execute(concat!(
        "INSERT INTO events VALUES ",
        "(1, '{\"created_at\": \"2020-01-01\", \"payload\": {\"commits\": [{\"message\": \"fix postgres bug\"}]}}'),",
        "(2, '{\"created_at\": \"2020-01-01\", \"payload\": {\"commits\": [{\"message\": \"docs\"}]}}'),",
        "(3, '{\"created_at\": \"2020-01-02\", \"payload\": {\"commits\": [{\"message\": \"postgresql tuning\"}, {\"message\": \"ci\"}]}}')"
    ))
    .unwrap();
    // the paper's dashboard query shape (Figure 7b)
    let r = s
        .execute(
            "SELECT (data->>'created_at')::date, \
                    sum(jsonb_array_length(data->'payload'->'commits')) \
             FROM events \
             WHERE jsonb_path_query_array(data, '$.payload.commits[*].message')::text \
                   ILIKE '%postgres%' \
             GROUP BY 1 ORDER BY 1 ASC",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(r.rows()[0][1], Datum::Int(1));
    assert_eq!(r.rows()[1][1], Datum::Int(2));
    // the gin index is selected for the ILIKE filter
    let r = s
        .execute(
            "EXPLAIN SELECT count(*) FROM events \
             WHERE jsonb_path_query_array(data, '$.payload.commits[*].message')::text \
                   ILIKE '%postgres%'",
        )
        .unwrap();
    let plan = format!("{:?}", r.rows());
    assert!(plan.contains("trigram"), "expected gin trigram scan: {plan}");
}

#[test]
fn case_and_date_functions() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let r = s
        .execute(
            "SELECT o_id, CASE WHEN amount >= 75 THEN 'big' ELSE 'small' END \
             FROM orders ORDER BY o_id",
        )
        .unwrap();
    assert_eq!(r.rows()[0][1], Datum::from_text("small"));
    assert_eq!(r.rows()[1][1], Datum::from_text("big"));
    let r = s
        .execute("SELECT count(*) FROM orders WHERE extract(month FROM placed) = 1")
        .unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(2));
    let r = s
        .execute("SELECT count(*) FROM orders WHERE placed < date '2020-02-15'")
        .unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(3));
}

#[test]
fn correlated_subquery_is_rejected() {
    let e = engine_with_orders();
    let mut s = e.session().unwrap();
    let err = s
        .execute(
            "SELECT name FROM customers c WHERE c_id IN \
             (SELECT o.c_id FROM orders o WHERE o.c_id = c.c_id)",
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::FeatureNotSupported);
}

#[test]
fn columnar_table_scan_and_restrictions() {
    let e = Engine::new_default();
    let mut s = e.session().unwrap();
    s.execute("CREATE TABLE facts (k bigint, v float)").unwrap();
    e.set_columnar("facts").unwrap();
    s.execute("INSERT INTO facts VALUES (1, 1.5), (2, 2.5), (3, 3.5)").unwrap();
    let r = s.execute("SELECT sum(v) FROM facts WHERE k > 1").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(6.0));
    let err = s.execute("UPDATE facts SET v = 0 WHERE k = 1").unwrap_err();
    assert_eq!(err.code, ErrorCode::FeatureNotSupported);
}

#[test]
fn cost_model_tracks_io_when_table_exceeds_memory() {
    use pgmini::engine::EngineConfig;
    let cfg = EngineConfig {
        mem_bytes: 512 * 1024, // 64 pages
        ..EngineConfig::default()
    };
    let e = Engine::new(cfg);
    let mut s = e.session().unwrap();
    s.execute("CREATE TABLE big (id bigint PRIMARY KEY, pad text)").unwrap();
    e.set_sim_row_width("big", 8192).unwrap(); // one simulated page per row
    let rows: Vec<Vec<Datum>> =
        (0..500).map(|i| vec![Datum::Int(i), Datum::from_text("x")]).collect();
    s.copy_rows("big", &[], rows).unwrap();
    s.execute("SELECT count(*) FROM big").unwrap();
    let first = s.last_cost();
    s.execute("SELECT count(*) FROM big").unwrap();
    let second = s.last_cost();
    // table (500 pages) >> memory (64 pages): both scans are I/O bound
    assert!(second.io_ms > 0.0, "spilled scan must pay I/O: {second:?}");
    // with plenty of memory the second scan is cached
    let e2 = Engine::new_default();
    let mut s2 = e2.session().unwrap();
    s2.execute("CREATE TABLE big (id bigint PRIMARY KEY, pad text)").unwrap();
    e2.set_sim_row_width("big", 8192).unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..500).map(|i| vec![Datum::Int(i), Datum::from_text("x")]).collect();
    s2.copy_rows("big", &[], rows).unwrap();
    s2.execute("SELECT count(*) FROM big").unwrap();
    s2.execute("SELECT count(*) FROM big").unwrap();
    let cached = s2.last_cost();
    assert_eq!(cached.page_misses, 0, "in-memory scan must not miss: {cached:?}");
    let _ = first;
}

#[test]
fn udf_registration_and_call() {
    let e = Engine::new_default();
    e.register_udf("magic_number", |_s, args| {
        let base = args.first().map(|d| d.as_i64().unwrap_or(0)).unwrap_or(0);
        Ok(Datum::Int(base + 41))
    });
    let mut s = e.session().unwrap();
    let r = s.execute("SELECT magic_number(1)").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(42));
    let r = s.execute("SELECT magic_number(1) AS x, 7 AS y").unwrap();
    assert_eq!(r.columns(), &["x".to_string(), "y".to_string()]);
    assert_eq!(r.rows()[0][1], Datum::Int(7));
}

#[test]
fn concurrent_counter_updates_are_serialized_by_row_locks() {
    let e = Engine::new_default();
    let mut s = e.session().unwrap();
    s.execute("CREATE TABLE c (id bigint PRIMARY KEY, n bigint)").unwrap();
    s.execute("INSERT INTO c VALUES (1, 0)").unwrap();
    drop(s);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let e = e.clone();
            std::thread::spawn(move || {
                let mut s = e.session().unwrap();
                for _ in 0..25 {
                    s.execute("UPDATE c SET n = n + 1 WHERE id = 1").unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut s = e.session().unwrap();
    let r = s.execute("SELECT n FROM c WHERE id = 1").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(200), "all 200 increments must survive");
}
