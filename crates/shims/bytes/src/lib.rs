//! Offline stand-in for `bytes`.
//!
//! Implements the subset of the bytes crate used by pgmini's WAL encoding:
//! big-endian `put_*`/`get_*`, `BytesMut::freeze`, `Bytes::copy_to_bytes`,
//! and slice access. Backed by a plain `Vec<u8>` plus a read cursor — the
//! zero-copy refcounting of the real crate is irrelevant here.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer; `freeze` converts it into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read side: big-endian getters that advance an internal cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// `copy_to_bytes` is inherent (not on the trait) to keep the trait
/// object-safe without a default that allocates.
impl Bytes {
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "buffer underflow");
        let out = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + len,
        };
        self.start += len;
        out
    }
}

/// Write side: big-endian putters.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(7);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(42);
        m.put_i64(-5);
        m.put_f64(1.5);
        m.put_slice(b"abc");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -5);
        assert_eq!(b.get_f64(), 1.5);
        let s = b.copy_to_bytes(3);
        assert_eq!(s.to_vec(), b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn copy_to_bytes_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.copy_to_bytes(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4]);
    }
}
