//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the bench targets use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`) with a simple mean-of-samples
//! timer instead of criterion's statistical machinery. Output is one line
//! per benchmark: `name  mean_per_iter  (samples)`.

use std::time::{Duration, Instant};

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((mean, samples)) => {
                println!("{name:<50} {:>12}  ({samples} samples)", format_ns(mean));
            }
            None => println!("{name:<50} (no measurement)"),
        }
        self
    }
}

/// A named group of benchmarks; results print under `group/name`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the closure passed to `iter`.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// (mean ns per iteration, samples taken)
    report: Option<(f64, usize)>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // warm-up, and calibrate iterations per sample
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += iters_per_sample;
        }
        self.report = Some((total_ns / total_iters as f64, self.sample_size));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// `std::hint::black_box` re-export (criterion exposes its own).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }
}
