//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the parking_lot API the workspace uses — `Mutex`, `RwLock`
//! (including `read_recursive`), and `Condvar` — with the same
//! no-poisoning, guard-returning signatures. `RwLock` is implemented from
//! scratch (readers never block on waiting writers) so that recursive read
//! acquisition is safe, which `read_recursive` callers rely on.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---------------- Mutex ----------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait_for can temporarily take the std guard
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// ---------------- Condvar ----------------

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Mirrors parking_lot's result type; only `timed_out` is provided.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wait with a timeout, re-acquiring the lock into the same guard.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, timed_out) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(timed_out)
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// ---------------- RwLock ----------------

/// Reader–writer lock without writer preference: a read acquisition only
/// waits for an *active* writer, never for queued ones, so recursive reads
/// (`read_recursive`, or `read` while the same thread already holds a read
/// lock elsewhere in the call stack) cannot deadlock.
pub struct RwLock<T: ?Sized> {
    /// Number of active readers, or -1 while a writer holds the lock.
    state: std::sync::Mutex<i64>,
    cond: std::sync::Condvar,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            state: std::sync::Mutex::new(0),
            cond: std::sync::Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn state(&self) -> std::sync::MutexGuard<'_, i64> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let mut s = self.state();
        while *s < 0 {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        *s += 1;
        RwLockReadGuard { lock: self }
    }

    /// Identical to [`read`](Self::read): this lock has no writer
    /// preference, so every read acquisition is recursion-safe.
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.read()
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let mut s = self.state();
        if *s < 0 {
            return None;
        }
        *s += 1;
        Some(RwLockReadGuard { lock: self })
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let mut s = self.state();
        while *s != 0 {
            s = self.cond.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        *s = -1;
        RwLockWriteGuard { lock: self }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let mut s = self.state();
        if *s != 0 {
            return None;
        }
        *s = -1;
        Some(RwLockWriteGuard { lock: self })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<'a, T: ?Sized> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        let mut s = self.lock.state();
        *s -= 1;
        if *s == 0 {
            self.lock.cond.notify_all();
        }
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<'a, T: ?Sized> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        let mut s = self.lock.state();
        *s = 0;
        self.lock.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_recursive_read_with_waiting_writer() {
        let l = Arc::new(RwLock::new(0u32));
        let outer = l.read();
        let l2 = l.clone();
        let writer = std::thread::spawn(move || {
            let mut g = l2.write();
            *g += 1;
        });
        // give the writer time to queue up, then take a recursive read;
        // with writer preference this would deadlock
        std::thread::sleep(Duration::from_millis(20));
        let inner = l.read_recursive();
        assert_eq!(*inner, 0);
        drop(inner);
        drop(outer);
        writer.join().unwrap();
        assert_eq!(*l.read(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
