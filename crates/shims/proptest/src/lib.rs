//! Offline stand-in for `proptest`.
//!
//! Implements the macro-and-strategy surface this workspace's property tests
//! use — `proptest!`, `prop_oneof!`, `prop_assert*!`, `any::<T>()`, numeric
//! range strategies, regex-lite string strategies, tuples, and the
//! `prop::{collection, option, bool}` modules — over a deterministic seeded
//! RNG. Differences from the real crate: no shrinking (a failing case
//! reports its generated inputs verbatim) and string strategies support the
//! character-class subset of regex syntax (`[a-z0-9_]{1,8}`, `\PC`, literal
//! runs) rather than full regex.

pub mod strategy;
pub mod test_runner;

pub mod prop {
    pub use crate::strategy::collection;
    pub use crate::strategy::option;
    pub mod bool {
        /// Uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
    pub mod sample {
        pub use crate::strategy::select;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------- assertion macros ----------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    a,
                    b,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

// ---------------- strategy union macro ----------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

// ---------------- the proptest! macro ----------------

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// runs the body over `Config::cases` generated inputs, deterministically
/// seeded from the test's full path. As with real proptest, the `#[test]`
/// attribute is written by the caller and passed through verbatim — the
/// macro must not add its own, or the function is registered twice.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(
                cfg,
                concat!(module_path!(), "::", stringify!($name)),
            );
            while let Some(mut rng) = runner.next_case() {
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                runner.finish_case(result);
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    // no leading config: use the default
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(x in 1..100u32, v in prop::collection::vec(0..10i64, 0..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|e| (0..10).contains(e)));
        }

        #[test]
        fn strings_match_class(s in "[a-z]{2,4}", t in "x[0-9]y") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert_eq!(t.len(), 3);
            prop_assert!(t.starts_with('x') && t.ends_with('y'));
        }

        #[test]
        fn combinators(v in any::<i32>().prop_map(|x| x as i64),
                       o in prop::option::of(Just(7u8)),
                       b in prop::bool::ANY) {
            prop_assert!(v >= i32::MIN as i64 && v <= i32::MAX as i64);
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(b || !b);
        }

        #[test]
        fn oneof_and_filter(x in prop_oneof![Just(1u8), Just(2u8)],
                            y in (0..100u32).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(x == 1 || x == 2);
            prop_assert_eq!(y % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = crate::strategy::collection::vec(0..1000i64, 1..20);
        let mut r1 = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(5),
            "determinism",
        );
        let mut r2 = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(5),
            "determinism",
        );
        while let (Some(mut a), Some(mut b)) = (r1.next_case(), r2.next_case()) {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
            r1.finish_case(Ok(()));
            r2.finish_case(Ok(()));
        }
    }
}
