//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::RngExt;
use std::rc::Rc;

/// A generator of test values. Unlike the real proptest there is no value
/// tree: `generate` produces a final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` builds one composite level from an inner
    /// strategy; levels are stacked `depth` times with leaves mixed in at
    /// every level so generation always terminates.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let level = f(strat).boxed();
            strat = Union::new(vec![(1, leaf.clone()), (2, level)]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

// ---------------- combinators ----------------

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1024 candidates in a row", self.reason);
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting");
    }
}

// ---------------- leaf strategies ----------------

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform boolean (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random::<bool>()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // mix of ordinary magnitudes and a few special values
        match rng.random_range(0..16u32) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MAX,
            3 => f64::MIN,
            _ => {
                let m: f64 = rng.random::<f64>() * 2.0 - 1.0;
                let e = rng.random_range(-60..60i32);
                m * (2.0f64).powi(e)
            }
        }
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// numeric ranges are strategies themselves (`0..100i64`, `0.1f64..2.0`)
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---------------- regex-lite string strategies ----------------

/// One repeatable unit of a pattern.
enum Atom {
    Lit(char),
    Class(Vec<char>),
    /// `\PC`: any non-control character.
    Printable,
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the character-class subset of regex this workspace's tests use:
/// literal runs, `[a-z0-9_]` classes (ranges + literals, `-` literal when
/// first/last), `\PC`, `\\`-escapes, and `{n}` / `{m,n}` quantifiers.
fn parse_pattern(pat: &str) -> Vec<Piece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                let mut prev: Option<char> = None;
                while i < chars.len() && chars[i] != ']' {
                    let c = match chars[i] {
                        '\\' if i + 1 < chars.len() => {
                            i += 1;
                            chars[i]
                        }
                        c => c,
                    };
                    if c == '-'
                        && prev.is_some()
                        && i + 1 < chars.len()
                        && chars[i + 1] != ']'
                    {
                        // range: prev already pushed; add (prev, next]
                        let lo = prev.take().expect("range start");
                        i += 1;
                        let hi = chars[i];
                        let (lo, hi) = (lo as u32 + 1, hi as u32);
                        for cp in lo..=hi {
                            if let Some(ch) = char::from_u32(cp) {
                                set.push(ch);
                            }
                        }
                    } else {
                        set.push(c);
                        prev = Some(c);
                    }
                    i += 1;
                }
                assert!(i < chars.len(), "unterminated [ class in {pat:?}");
                assert!(!set.is_empty(), "empty character class in {pat:?}");
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') if chars.get(i + 1) == Some(&'C') => {
                        i += 1;
                        Atom::Printable
                    }
                    Some(&c) => Atom::Lit(c),
                    None => Atom::Lit('\\'),
                }
            }
            c => Atom::Lit(c),
        };
        i += 1;
        // quantifier
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pat:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Sample pool for `\PC`: printable ASCII plus a few multi-byte characters
/// so lexer robustness tests see non-ASCII input.
const PRINTABLE_EXTRA: &[char] = &['é', 'λ', '中', '😀', '\u{00A0}', 'ß'];

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(set) => set[rng.random_range(0..set.len())],
        Atom::Printable => {
            if rng.random_bool(0.1) {
                PRINTABLE_EXTRA[rng.random_range(0..PRINTABLE_EXTRA.len())]
            } else {
                char::from_u32(rng.random_range(0x20..0x7Fu32)).expect("printable ascii")
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.random_range(piece.min..=piece.max);
            for _ in 0..n {
                out.push(generate_atom(&piece.atom, rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------- tuples ----------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------- modules mirrored from prop::* ----------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_incl: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_incl: *r.end() }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.min..=self.size.max_incl);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool(0.8) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `prop::option::of(strategy)` — Some-biased like the real crate.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// `prop::sample::select` — uniform choice from a fixed list.
#[derive(Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.random_range(0..self.0.len())].clone()
    }
}

pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select from empty list");
    Select(items)
}
