//! Test runner: per-test deterministic seeding and case loop.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirrors `proptest::test_runner::Config` (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// RNG handed to strategies: deterministic per (test path, case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Stable 64-bit FNV-1a, so seeds survive across processes and runs.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives the case loop for one `proptest!` test function.
pub struct TestRunner {
    name: &'static str,
    base_seed: u64,
    cases: u32,
    next_case: u32,
    in_flight: bool,
}

impl TestRunner {
    pub fn new(config: Config, name: &'static str) -> Self {
        // PROPTEST_SEED offsets every test's seed stream for soak runs
        let offset = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRunner {
            name,
            base_seed: fnv1a(name) ^ offset,
            cases: config.cases,
            next_case: 0,
            in_flight: false,
        }
    }

    /// RNG for the next case, or `None` when all cases have run.
    pub fn next_case(&mut self) -> Option<TestRng> {
        assert!(!self.in_flight, "finish_case not called");
        if self.next_case >= self.cases {
            return None;
        }
        self.in_flight = true;
        let seed = self.base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(
            self.next_case as u64 + 1,
        ));
        Some(TestRng::from_seed(seed))
    }

    pub fn finish_case(&mut self, result: Result<(), TestCaseError>) {
        self.in_flight = false;
        let case = self.next_case;
        self.next_case += 1;
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest {} failed at case {case}/{} (base seed {:#x}): {msg}",
                self.name, self.cases, self.base_seed
            ),
        }
    }
}
