//! Offline stand-in for `rand`.
//!
//! Provides a deterministic, seedable RNG (`rngs::StdRng`, xoshiro256**
//! seeded via splitmix64) and the sampling surface the workloads use:
//! `RngExt::{random, random_range, random_bool}` over integer and float
//! ranges. Distributions are uniform; integer range sampling uses rejection
//! to avoid modulo bias so that workload generators stay well distributed.

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — deterministic, fast, and good enough for workload
    /// generation. State is seeded from splitmix64 like the reference
    /// implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by `RngExt::random` (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `RngExt::random_range`. Parameterized by the output
/// type (like the real crate) so the expected type at the call site drives
/// integer-literal inference.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in [0, n) by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

/// The sampling extension methods (rand 0.9+ naming: `random_*`).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Legacy alias used by some call sites (`rand::Rng`).
pub use crate::RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10..20i64);
            assert!((10..20).contains(&v));
            let v = r.random_range(1..=3u32);
            assert!((1..=3).contains(&v));
            let f = r.random_range(0.5..2.5f64);
            assert!((0.5..2.5).contains(&f));
            let n: i64 = r.random_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..200 {
            seen[uniform_below(&mut r, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
