//! Abstract syntax tree for the SQL dialect understood by the engine.
//!
//! The AST is deliberately close to PostgreSQL's surface syntax because the
//! distributed layer rewrites table names to shard names and *deparses the
//! tree back to SQL text* to send to worker nodes — exactly how Citus ships
//! queries over the regular PostgreSQL protocol.

/// Any top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(Box<Select>),
    Insert(Box<Insert>),
    Update(Box<Update>),
    Delete(Box<Delete>),
    CreateTable(Box<CreateTable>),
    CreateIndex(Box<CreateIndex>),
    /// `CREATE ROLLUP name AS SELECT ...` — an incrementally maintained
    /// aggregate table (a distributed-engine extension; plain engines reject
    /// it at execution time).
    CreateRollup(Box<CreateRollup>),
    DropTable { names: Vec<String>, if_exists: bool },
    /// `DROP ROLLUP [IF EXISTS] name`.
    DropRollup { name: String, if_exists: bool },
    Truncate { tables: Vec<String> },
    Copy(Box<CopyStmt>),
    Begin,
    Commit,
    Rollback,
    /// `PREPARE TRANSACTION 'gid'` — first phase of 2PC.
    PrepareTransaction(String),
    /// `COMMIT PREPARED 'gid'` — second phase of 2PC.
    CommitPrepared(String),
    /// `ROLLBACK PREPARED 'gid'`.
    RollbackPrepared(String),
    Vacuum { table: Option<String> },
    Set { name: String, value: Literal },
    Explain { options: ExplainOptions, inner: Box<Statement> },
}

/// Options accepted by `EXPLAIN`, either bare (`EXPLAIN ANALYZE`) or in the
/// parenthesised list form (`EXPLAIN (ANALYZE, DISTRIBUTED) ...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExplainOptions {
    /// Execute the statement and report what actually happened.
    pub analyze: bool,
    /// Render the distributed plan (tier, shard pruning, task list) instead
    /// of a single node's local plan.
    pub distributed: bool,
}

/// A `SELECT` query (also used for subqueries and `INSERT .. SELECT` sources).
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    /// Comma-separated FROM items; joins nest inside a single item.
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
    /// `FOR UPDATE` row locking.
    pub for_update: bool,
}

impl Select {
    /// An empty SELECT skeleton, convenient for programmatic plan rewriting.
    pub fn empty() -> Self {
        Select {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            for_update: false,
        }
    }
}

/// One projection item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table { name: String, alias: Option<String> },
    Subquery { query: Box<Select>, alias: String },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        /// `ON` condition; `None` only for CROSS joins.
        on: Option<Expr>,
    },
}

impl TableRef {
    /// Collect the base table names referenced anywhere under this item.
    pub fn base_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            TableRef::Table { name, .. } => out.push(name),
            TableRef::Subquery { query, .. } => {
                for f in &query.from {
                    f.base_tables(out);
                }
            }
            TableRef::Join { left, right, .. } => {
                left.base_tables(out);
                right.base_tables(out);
            }
        }
    }

    /// The name this item is visible as (alias, or the table name itself).
    pub fn visible_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    Param(usize),
    Column { table: Option<String>, name: String },
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool, case_insensitive: bool },
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    InSubquery { expr: Box<Expr>, subquery: Box<Select>, negated: bool },
    Exists { subquery: Box<Select>, negated: bool },
    ScalarSubquery(Box<Select>),
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_result: Option<Box<Expr>>,
    },
    Cast { expr: Box<Expr>, ty: TypeName },
    Func(FuncCall),
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column { table: Some(table.to_string()), name: name.to_string() }
    }

    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// Convenience constructor for a string literal.
    pub fn string(v: &str) -> Expr {
        Expr::Literal(Literal::String(v.to_string()))
    }

    /// `left op right` as a boxed binary expression.
    pub fn bin(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Walk the expression tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::IsNull { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Case { operand, branches, else_result } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_result {
                    e.walk(f);
                }
            }
            Expr::Func(fc) => {
                for a in &fc.args {
                    a.walk(f);
                }
            }
        }
    }

    /// True when the expression tree contains any subquery.
    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_)) {
                found = true;
            }
        });
        found
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct FuncCall {
    pub name: String,
    pub args: Vec<Expr>,
    /// `count(DISTINCT x)`
    pub distinct: bool,
    /// `count(*)`
    pub star: bool,
}

impl FuncCall {
    pub fn new(name: &str, args: Vec<Expr>) -> Self {
        FuncCall { name: name.to_string(), args, distinct: false, star: false }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Concat,
    /// `->` jsonb member access (returns json).
    JsonGet,
    /// `->>` jsonb member access (returns text).
    JsonGetText,
}

impl BinaryOp {
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
            BinaryOp::JsonGet => "->",
            BinaryOp::JsonGetText => "->>",
        }
    }

    /// Binding power for the deparser's parenthesisation (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Or => 1,
            BinaryOp::And => 2,
            BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 4,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Concat => 6,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => 7,
            BinaryOp::JsonGet | BinaryOp::JsonGetText => 9,
        }
    }

    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }
}

#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
}

/// Column type names, normalised from the many PostgreSQL spellings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeName {
    Int,
    Float,
    Text,
    Bool,
    Json,
    Timestamp,
}

impl TypeName {
    /// Map a PostgreSQL type spelling to the normalised type, if recognised.
    pub fn from_keyword(kw: &str) -> Option<TypeName> {
        Some(match kw {
            "int" | "integer" | "int4" | "int8" | "bigint" | "smallint" | "int2" | "serial"
            | "bigserial" => TypeName::Int,
            "float" | "float4" | "float8" | "real" | "double" | "numeric" | "decimal" => {
                TypeName::Float
            }
            "text" | "varchar" | "char" | "character" | "citext" => TypeName::Text,
            "bool" | "boolean" => TypeName::Bool,
            "json" | "jsonb" => TypeName::Json,
            "timestamp" | "timestamptz" | "date" | "time" => TypeName::Timestamp,
            _ => return None,
        })
    }

    pub fn as_str(self) -> &'static str {
        match self {
            TypeName::Int => "bigint",
            TypeName::Float => "double precision",
            TypeName::Text => "text",
            TypeName::Bool => "boolean",
            TypeName::Json => "jsonb",
            TypeName::Timestamp => "timestamp",
        }
    }
}

/// `CREATE ROLLUP name AS SELECT agg(..) .. GROUP BY ..`: the defining query
/// is kept verbatim; validation (single source table, supported aggregates)
/// happens in the executing engine, not the parser.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateRollup {
    pub name: String,
    pub if_not_exists: bool,
    pub query: Select,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub if_not_exists: bool,
    pub columns: Vec<ColumnDef>,
    pub constraints: Vec<TableConstraint>,
    /// `USING <method>` access-method clause (e.g. `USING columnar`).
    pub using: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: TypeName,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
    pub default: Option<Expr>,
    /// `REFERENCES table(col)` inline foreign key.
    pub references: Option<(String, String)>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    PrimaryKey(Vec<String>),
    Unique(Vec<String>),
    ForeignKey { columns: Vec<String>, ref_table: String, ref_columns: Vec<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    /// Index access method: `btree` (default) or `gin`.
    pub method: Option<String>,
    pub columns: Vec<Expr>,
    pub unique: bool,
    pub where_clause: Option<Expr>,
    pub if_not_exists: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CopyStmt {
    pub table: String,
    pub columns: Vec<String>,
    /// Only `COPY .. FROM STDIN` is supported; data arrives via the session API.
    pub from_stdin: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub columns: Vec<String>,
    pub source: InsertSource,
    pub on_conflict: Option<OnConflict>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Select>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct OnConflict {
    /// Conflict target column list (the unique key).
    pub target: Vec<String>,
    pub action: ConflictAction,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ConflictAction {
    Nothing,
    /// `DO UPDATE SET ..`; `excluded.col` refers to the proposed row.
    Update(Vec<Assignment>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    pub column: String,
    pub value: Expr,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub alias: Option<String>,
    pub assignments: Vec<Assignment>,
    pub where_clause: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub alias: Option<String>,
    pub where_clause: Option<Expr>,
}
