//! AST → SQL text.
//!
//! The distributed layer rewrites table names in a parsed statement to shard
//! names (`orders` → `orders_102008`) and then *deparses* the statement back
//! to SQL to send to a worker — the same mechanism Citus uses to stay on the
//! plain PostgreSQL wire protocol. Deparse output must therefore re-parse to
//! an equivalent tree (checked by property tests).

use crate::ast::*;
use std::fmt::Write;

/// Render a statement as SQL text.
pub fn deparse(stmt: &Statement) -> String {
    let mut s = String::with_capacity(128);
    write_statement(&mut s, stmt);
    s
}

/// Render an expression as SQL text.
pub fn deparse_expr(expr: &Expr) -> String {
    let mut s = String::with_capacity(32);
    write_expr(&mut s, expr, 0);
    s
}

/// Quote an identifier when it needs quoting (mixed case, reserved, symbols).
pub fn quote_ident(name: &str) -> String {
    let simple = !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
    if simple {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Quote a string literal with `''` escaping.
pub fn quote_literal(value: &str) -> String {
    format!("'{}'", value.replace('\'', "''"))
}

fn write_statement(s: &mut String, stmt: &Statement) {
    match stmt {
        Statement::Select(q) => write_select(s, q),
        Statement::Insert(ins) => write_insert(s, ins),
        Statement::Update(u) => {
            s.push_str("UPDATE ");
            s.push_str(&quote_ident(&u.table));
            if let Some(a) = &u.alias {
                s.push(' ');
                s.push_str(&quote_ident(a));
            }
            s.push_str(" SET ");
            write_assignments(s, &u.assignments);
            if let Some(w) = &u.where_clause {
                s.push_str(" WHERE ");
                write_expr(s, w, 0);
            }
        }
        Statement::Delete(d) => {
            s.push_str("DELETE FROM ");
            s.push_str(&quote_ident(&d.table));
            if let Some(a) = &d.alias {
                s.push(' ');
                s.push_str(&quote_ident(a));
            }
            if let Some(w) = &d.where_clause {
                s.push_str(" WHERE ");
                write_expr(s, w, 0);
            }
        }
        Statement::CreateTable(ct) => write_create_table(s, ct),
        Statement::CreateIndex(ci) => write_create_index(s, ci),
        Statement::CreateRollup(cr) => {
            s.push_str("CREATE ROLLUP ");
            if cr.if_not_exists {
                s.push_str("IF NOT EXISTS ");
            }
            s.push_str(&quote_ident(&cr.name));
            s.push_str(" AS ");
            write_select(s, &cr.query);
        }
        Statement::DropRollup { name, if_exists } => {
            s.push_str("DROP ROLLUP ");
            if *if_exists {
                s.push_str("IF EXISTS ");
            }
            s.push_str(&quote_ident(name));
        }
        Statement::DropTable { names, if_exists } => {
            s.push_str("DROP TABLE ");
            if *if_exists {
                s.push_str("IF EXISTS ");
            }
            join_names(s, names);
        }
        Statement::Truncate { tables } => {
            s.push_str("TRUNCATE ");
            join_names(s, tables);
        }
        Statement::Copy(c) => {
            s.push_str("COPY ");
            s.push_str(&quote_ident(&c.table));
            if !c.columns.is_empty() {
                s.push_str(" (");
                join_names(s, &c.columns);
                s.push(')');
            }
            s.push_str(" FROM STDIN");
        }
        Statement::Begin => s.push_str("BEGIN"),
        Statement::Commit => s.push_str("COMMIT"),
        Statement::Rollback => s.push_str("ROLLBACK"),
        Statement::PrepareTransaction(gid) => {
            s.push_str("PREPARE TRANSACTION ");
            s.push_str(&quote_literal(gid));
        }
        Statement::CommitPrepared(gid) => {
            s.push_str("COMMIT PREPARED ");
            s.push_str(&quote_literal(gid));
        }
        Statement::RollbackPrepared(gid) => {
            s.push_str("ROLLBACK PREPARED ");
            s.push_str(&quote_literal(gid));
        }
        Statement::Vacuum { table } => {
            s.push_str("VACUUM");
            if let Some(t) = table {
                s.push(' ');
                s.push_str(&quote_ident(t));
            }
        }
        Statement::Set { name, value } => {
            s.push_str("SET ");
            s.push_str(&quote_ident(name));
            s.push_str(" = ");
            write_literal(s, value);
        }
        Statement::Explain { options, inner } => {
            s.push_str("EXPLAIN ");
            match (options.analyze, options.distributed) {
                (true, true) => s.push_str("(ANALYZE, DISTRIBUTED) "),
                (true, false) => s.push_str("ANALYZE "),
                (false, true) => s.push_str("(DISTRIBUTED) "),
                (false, false) => {}
            }
            write_statement(s, inner);
        }
    }
}

fn join_names(s: &mut String, names: &[String]) {
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&quote_ident(n));
    }
}

fn write_assignments(s: &mut String, assignments: &[Assignment]) {
    for (i, a) in assignments.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&quote_ident(&a.column));
        s.push_str(" = ");
        write_expr(s, &a.value, 0);
    }
}

fn write_insert(s: &mut String, ins: &Insert) {
    s.push_str("INSERT INTO ");
    s.push_str(&quote_ident(&ins.table));
    if !ins.columns.is_empty() {
        s.push_str(" (");
        join_names(s, &ins.columns);
        s.push(')');
    }
    match &ins.source {
        InsertSource::Values(rows) => {
            s.push_str(" VALUES ");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('(');
                for (j, e) in row.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    write_expr(s, e, 0);
                }
                s.push(')');
            }
        }
        InsertSource::Query(q) => {
            s.push(' ');
            write_select(s, q);
        }
    }
    if let Some(oc) = &ins.on_conflict {
        s.push_str(" ON CONFLICT");
        if !oc.target.is_empty() {
            s.push_str(" (");
            join_names(s, &oc.target);
            s.push(')');
        }
        match &oc.action {
            ConflictAction::Nothing => s.push_str(" DO NOTHING"),
            ConflictAction::Update(assignments) => {
                s.push_str(" DO UPDATE SET ");
                write_assignments(s, assignments);
            }
        }
    }
}

fn write_create_table(s: &mut String, ct: &CreateTable) {
    s.push_str("CREATE TABLE ");
    if ct.if_not_exists {
        s.push_str("IF NOT EXISTS ");
    }
    s.push_str(&quote_ident(&ct.name));
    s.push_str(" (");
    let mut first = true;
    for c in &ct.columns {
        if !first {
            s.push_str(", ");
        }
        first = false;
        s.push_str(&quote_ident(&c.name));
        s.push(' ');
        s.push_str(c.ty.as_str());
        if c.primary_key {
            s.push_str(" PRIMARY KEY");
        } else if c.not_null {
            s.push_str(" NOT NULL");
        }
        if c.unique {
            s.push_str(" UNIQUE");
        }
        if let Some(d) = &c.default {
            s.push_str(" DEFAULT ");
            write_expr(s, d, 0);
        }
        if let Some((t, col)) = &c.references {
            s.push_str(" REFERENCES ");
            s.push_str(&quote_ident(t));
            if !col.is_empty() {
                let _ = write!(s, "({})", quote_ident(col));
            }
        }
    }
    for con in &ct.constraints {
        if !first {
            s.push_str(", ");
        }
        first = false;
        match con {
            TableConstraint::PrimaryKey(cols) => {
                s.push_str("PRIMARY KEY (");
                join_names(s, cols);
                s.push(')');
            }
            TableConstraint::Unique(cols) => {
                s.push_str("UNIQUE (");
                join_names(s, cols);
                s.push(')');
            }
            TableConstraint::ForeignKey { columns, ref_table, ref_columns } => {
                s.push_str("FOREIGN KEY (");
                join_names(s, columns);
                s.push_str(") REFERENCES ");
                s.push_str(&quote_ident(ref_table));
                if !ref_columns.is_empty() {
                    s.push_str(" (");
                    join_names(s, ref_columns);
                    s.push(')');
                }
            }
        }
    }
    s.push(')');
    if let Some(method) = &ct.using {
        s.push_str(" USING ");
        s.push_str(&quote_ident(method));
    }
}

fn write_create_index(s: &mut String, ci: &CreateIndex) {
    s.push_str("CREATE ");
    if ci.unique {
        s.push_str("UNIQUE ");
    }
    s.push_str("INDEX ");
    if ci.if_not_exists {
        s.push_str("IF NOT EXISTS ");
    }
    s.push_str(&quote_ident(&ci.name));
    s.push_str(" ON ");
    s.push_str(&quote_ident(&ci.table));
    if let Some(m) = &ci.method {
        s.push_str(" USING ");
        s.push_str(m);
    }
    s.push_str(" (");
    for (i, e) in ci.columns.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        // expression index entries need extra parens to re-parse
        if matches!(e, Expr::Column { .. }) {
            write_expr(s, e, 0);
        } else {
            s.push('(');
            write_expr(s, e, 0);
            s.push(')');
        }
    }
    s.push(')');
    if let Some(w) = &ci.where_clause {
        s.push_str(" WHERE ");
        write_expr(s, w, 0);
    }
}

fn write_select(s: &mut String, q: &Select) {
    s.push_str("SELECT ");
    if q.distinct {
        s.push_str("DISTINCT ");
    }
    for (i, item) in q.projection.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => s.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                s.push_str(&quote_ident(t));
                s.push_str(".*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(s, expr, 0);
                if let Some(a) = alias {
                    s.push_str(" AS ");
                    s.push_str(&quote_ident(a));
                }
            }
        }
    }
    if !q.from.is_empty() {
        s.push_str(" FROM ");
        for (i, f) in q.from.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write_table_ref(s, f);
        }
    }
    if let Some(w) = &q.where_clause {
        s.push_str(" WHERE ");
        write_expr(s, w, 0);
    }
    if !q.group_by.is_empty() {
        s.push_str(" GROUP BY ");
        for (i, e) in q.group_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write_expr(s, e, 0);
        }
    }
    if let Some(h) = &q.having {
        s.push_str(" HAVING ");
        write_expr(s, h, 0);
    }
    if !q.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        for (i, o) in q.order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write_expr(s, &o.expr, 0);
            if o.desc {
                s.push_str(" DESC");
            }
        }
    }
    if let Some(l) = &q.limit {
        s.push_str(" LIMIT ");
        write_expr(s, l, 0);
    }
    if let Some(o) = &q.offset {
        s.push_str(" OFFSET ");
        write_expr(s, o, 0);
    }
    if q.for_update {
        s.push_str(" FOR UPDATE");
    }
}

fn write_table_ref(s: &mut String, t: &TableRef) {
    match t {
        TableRef::Table { name, alias } => {
            s.push_str(&quote_ident(name));
            if let Some(a) = alias {
                s.push(' ');
                s.push_str(&quote_ident(a));
            }
        }
        TableRef::Subquery { query, alias } => {
            s.push('(');
            write_select(s, query);
            s.push_str(") AS ");
            s.push_str(&quote_ident(alias));
        }
        TableRef::Join { left, right, kind, on } => {
            write_table_ref(s, left);
            s.push_str(match kind {
                JoinKind::Inner => " JOIN ",
                JoinKind::Left => " LEFT JOIN ",
                JoinKind::Right => " RIGHT JOIN ",
                JoinKind::Full => " FULL JOIN ",
                JoinKind::Cross => " CROSS JOIN ",
            });
            // right side of a join must be parenthesised if itself a join
            if matches!(**right, TableRef::Join { .. }) {
                s.push('(');
                write_table_ref(s, right);
                s.push(')');
            } else {
                write_table_ref(s, right);
            }
            if let Some(cond) = on {
                s.push_str(" ON ");
                write_expr(s, cond, 0);
            }
        }
    }
}

fn write_literal(s: &mut String, lit: &Literal) {
    match lit {
        Literal::Null => s.push_str("NULL"),
        Literal::Bool(true) => s.push_str("TRUE"),
        Literal::Bool(false) => s.push_str("FALSE"),
        Literal::Int(v) => {
            let _ = write!(s, "{v}");
        }
        Literal::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(s, "{v:.1}");
            } else {
                let _ = write!(s, "{v}");
            }
        }
        Literal::String(v) => s.push_str(&quote_literal(v)),
    }
}

/// `parent_prec` is the precedence of the enclosing operator: we parenthesise
/// whenever this node binds less tightly.
fn write_expr(s: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Literal(l) => write_literal(s, l),
        Expr::Param(n) => {
            let _ = write!(s, "${n}");
        }
        Expr::Column { table, name } => {
            if let Some(t) = table {
                s.push_str(&quote_ident(t));
                s.push('.');
            }
            s.push_str(&quote_ident(name));
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => {
                s.push_str("(- ");
                write_expr(s, expr, 8);
                s.push(')');
            }
            UnaryOp::Not => {
                s.push_str("(NOT ");
                write_expr(s, expr, 3);
                s.push(')');
            }
        },
        Expr::Binary { left, op, right } => {
            let prec = op.precedence();
            let needs_parens = prec < parent_prec;
            if needs_parens {
                s.push('(');
            }
            // a negative numeric literal on the left of `->`/`->>` would
            // re-parse as negation of the whole access (arrows bind tighter
            // than unary minus), so force parentheses
            let neg_left_of_arrow = matches!(op, BinaryOp::JsonGet | BinaryOp::JsonGetText)
                && matches!(
                    **left,
                    Expr::Literal(Literal::Int(v)) if v < 0
                )
                || matches!(op, BinaryOp::JsonGet | BinaryOp::JsonGetText)
                    && matches!(
                        **left,
                        Expr::Literal(Literal::Float(v)) if v < 0.0
                    );
            if neg_left_of_arrow {
                s.push('(');
                write_expr(s, left, 0);
                s.push(')');
            } else {
                write_expr(s, left, prec);
            }
            if matches!(op, BinaryOp::JsonGet | BinaryOp::JsonGetText) {
                s.push_str(op.as_str());
            } else {
                s.push(' ');
                s.push_str(op.as_str());
                s.push(' ');
            }
            // +1 on the right side keeps left-associativity on re-parse
            write_expr(s, right, prec + 1);
            if needs_parens {
                s.push(')');
            }
        }
        Expr::Like { expr, pattern, negated, case_insensitive } => {
            s.push('(');
            write_expr(s, expr, 5);
            s.push_str(if *negated { " NOT " } else { " " });
            s.push_str(if *case_insensitive { "ILIKE " } else { "LIKE " });
            write_expr(s, pattern, 5);
            s.push(')');
        }
        Expr::Between { expr, low, high, negated } => {
            s.push('(');
            write_expr(s, expr, 5);
            if *negated {
                s.push_str(" NOT");
            }
            s.push_str(" BETWEEN ");
            write_expr(s, low, 5);
            s.push_str(" AND ");
            write_expr(s, high, 5);
            s.push(')');
        }
        Expr::InList { expr, list, negated } => {
            s.push('(');
            write_expr(s, expr, 5);
            s.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, item, 0);
            }
            s.push_str("))");
        }
        Expr::InSubquery { expr, subquery, negated } => {
            s.push('(');
            write_expr(s, expr, 5);
            s.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_select(s, subquery);
            s.push_str("))");
        }
        Expr::Exists { subquery, negated } => {
            if *negated {
                s.push_str("(NOT ");
            }
            s.push_str("EXISTS (");
            write_select(s, subquery);
            s.push(')');
            if *negated {
                s.push(')');
            }
        }
        Expr::ScalarSubquery(q) => {
            s.push('(');
            write_select(s, q);
            s.push(')');
        }
        Expr::Case { operand, branches, else_result } => {
            s.push_str("CASE");
            if let Some(o) = operand {
                s.push(' ');
                write_expr(s, o, 0);
            }
            for (w, t) in branches {
                s.push_str(" WHEN ");
                write_expr(s, w, 0);
                s.push_str(" THEN ");
                write_expr(s, t, 0);
            }
            if let Some(els) = else_result {
                s.push_str(" ELSE ");
                write_expr(s, els, 0);
            }
            s.push_str(" END");
        }
        Expr::Cast { expr, ty } => {
            s.push_str("CAST(");
            write_expr(s, expr, 0);
            s.push_str(" AS ");
            s.push_str(ty.as_str());
            s.push(')');
        }
        Expr::Func(fc) => {
            s.push_str(&fc.name);
            s.push('(');
            if fc.star {
                s.push('*');
            } else {
                if fc.distinct {
                    s.push_str("DISTINCT ");
                }
                for (i, a) in fc.args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    write_expr(s, a, 0);
                }
            }
            s.push(')');
        }
        Expr::IsNull { expr, negated } => {
            s.push('(');
            write_expr(s, expr, 5);
            s.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            s.push(')');
        }
    }
}
