//! Parse error type.

use std::fmt;

/// Error produced by the lexer or parser, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl ParseError {
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError { offset, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}
