//! SQL lexer.
//!
//! Produces a flat token stream for the recursive-descent parser. Keywords are
//! recognised case-insensitively and normalised to uppercase; identifiers keep
//! their (lowercased) spelling, matching PostgreSQL's case-folding rules.
//! Double-quoted identifiers preserve case.

use crate::error::ParseError;

/// A single lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token start in the source text.
    pub offset: usize,
}

/// The kinds of tokens the parser consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted keyword or identifier, lowercased (`select`, `my_table`).
    Ident(String),
    /// Double-quoted identifier, case preserved.
    QuotedIdent(String),
    /// Single-quoted string literal, with escapes resolved.
    String(String),
    /// Numeric literal, kept as text (the parser decides int vs float).
    Number(String),
    /// `$1`-style parameter placeholder (1-based index).
    Param(usize),
    /// Single- or multi-character operator or punctuation.
    Op(Op),
    /// End of input.
    Eof,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    Gt,
    Le,
    Ge,
    DoubleColon,
    Concat,
    /// `->` jsonb field access returning json.
    Arrow,
    /// `->>` jsonb field access returning text.
    LongArrow,
    LBracket,
    RBracket,
}

impl Op {
    /// The SQL spelling of the operator, used by error messages and deparse.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::LParen => "(",
            Op::RParen => ")",
            Op::Comma => ",",
            Op::Semicolon => ";",
            Op::Dot => ".",
            Op::Plus => "+",
            Op::Minus => "-",
            Op::Star => "*",
            Op::Slash => "/",
            Op::Percent => "%",
            Op::Eq => "=",
            Op::Neq => "<>",
            Op::Lt => "<",
            Op::Gt => ">",
            Op::Le => "<=",
            Op::Ge => ">=",
            Op::DoubleColon => "::",
            Op::Concat => "||",
            Op::Arrow => "->",
            Op::LongArrow => "->>",
            Op::LBracket => "[",
            Op::RBracket => "]",
        }
    }
}

/// Tokenise `sql` into a vector ending with [`TokenKind::Eof`].
pub fn lex(sql: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::with_capacity(sql.len() / 4 + 4);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(ParseError::at(start, "unterminated block comment"));
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::at(start, "unterminated string literal")),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // copy one UTF-8 char
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&sql[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::String(s), offset: start });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::at(start, "unterminated quoted identifier")),
                        Some(b'"') if bytes.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(&sql[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::QuotedIdent(s), offset: start });
            }
            b'$' => {
                let start = i;
                i += 1;
                let ds = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i == ds {
                    return Err(ParseError::at(start, "expected parameter number after '$'"));
                }
                let n: usize = sql[ds..i]
                    .parse()
                    .map_err(|_| ParseError::at(start, "parameter number out of range"))?;
                if n == 0 {
                    return Err(ParseError::at(start, "parameter numbers are 1-based"));
                }
                tokens.push(Token { kind: TokenKind::Param(n), offset: start });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(sql[start..i].to_string()),
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_ascii_lowercase()),
                    offset: start,
                });
            }
            _ => {
                let start = i;
                let two = if i + 1 < bytes.len() { &bytes[i..i + 2] } else { &bytes[i..i + 1] };
                let three =
                    if i + 2 < bytes.len() { &bytes[i..i + 3] } else { two };
                let (op, len) = if three == b"->>" {
                    (Op::LongArrow, 3)
                } else if two == b"->" {
                    (Op::Arrow, 2)
                } else if two == b"::" {
                    (Op::DoubleColon, 2)
                } else if two == b"||" {
                    (Op::Concat, 2)
                } else if two == b"<>" || two == b"!=" {
                    (Op::Neq, 2)
                } else if two == b"<=" {
                    (Op::Le, 2)
                } else if two == b">=" {
                    (Op::Ge, 2)
                } else {
                    let op = match c {
                        b'(' => Op::LParen,
                        b')' => Op::RParen,
                        b',' => Op::Comma,
                        b';' => Op::Semicolon,
                        b'.' => Op::Dot,
                        b'+' => Op::Plus,
                        b'-' => Op::Minus,
                        b'*' => Op::Star,
                        b'/' => Op::Slash,
                        b'%' => Op::Percent,
                        b'=' => Op::Eq,
                        b'<' => Op::Lt,
                        b'>' => Op::Gt,
                        b'[' => Op::LBracket,
                        b']' => Op::RBracket,
                        other => {
                            return Err(ParseError::at(
                                start,
                                format!("unexpected character {:?}", other as char),
                            ))
                        }
                    };
                    (op, 1)
                };
                i += len;
                tokens.push(Token { kind: TokenKind::Op(op), offset: start });
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: sql.len() });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >> 5 == 0b110 {
        2
    } else if first >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let k = kinds("SELECT a, 1 FROM t;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Op(Op::Comma),
                TokenKind::Number("1".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Op(Op::Semicolon),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes_double_quote_rule() {
        let k = kinds("'it''s'");
        assert_eq!(k[0], TokenKind::String("it's".into()));
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        let k = kinds("\"MiXeD\"");
        assert_eq!(k[0], TokenKind::QuotedIdent("MiXeD".into()));
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(kinds("42")[0], TokenKind::Number("42".into()));
        assert_eq!(kinds("4.25")[0], TokenKind::Number("4.25".into()));
        assert_eq!(kinds("1e6")[0], TokenKind::Number("1e6".into()));
        assert_eq!(kinds("2.5e-3")[0], TokenKind::Number("2.5e-3".into()));
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(kinds("->>")[0], TokenKind::Op(Op::LongArrow));
        assert_eq!(kinds("->")[0], TokenKind::Op(Op::Arrow));
        assert_eq!(kinds("::")[0], TokenKind::Op(Op::DoubleColon));
        assert_eq!(kinds("||")[0], TokenKind::Op(Op::Concat));
        assert_eq!(kinds("!=")[0], TokenKind::Op(Op::Neq));
        assert_eq!(kinds("<>")[0], TokenKind::Op(Op::Neq));
        assert_eq!(kinds("<=")[0], TokenKind::Op(Op::Le));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("select -- hi\n 1 /* multi\nline */ + /* nested /* ok */ */ 2");
        assert!(k.contains(&TokenKind::Number("1".into())));
        assert!(k.contains(&TokenKind::Number("2".into())));
        assert_eq!(k.iter().filter(|t| matches!(t, TokenKind::Ident(_))).count(), 1);
    }

    #[test]
    fn params_are_one_based() {
        assert_eq!(kinds("$3")[0], TokenKind::Param(3));
        assert!(lex("$0").is_err());
        assert!(lex("$").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'abc").is_err());
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn identifiers_fold_to_lowercase() {
        assert_eq!(kinds("MyTable")[0], TokenKind::Ident("mytable".into()));
    }

    #[test]
    fn dot_after_number_stays_number_then_dot() {
        // `1.` followed by identifier must not eat the dot as a float part
        let k = kinds("t1.col");
        assert_eq!(k[0], TokenKind::Ident("t1".into()));
        assert_eq!(k[1], TokenKind::Op(Op::Dot));
        assert_eq!(k[2], TokenKind::Ident("col".into()));
    }
}
