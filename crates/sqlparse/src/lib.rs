//! SQL front-end for the citrus distributed engine.
//!
//! This crate is the stand-in for PostgreSQL's parser. Notably, the paper
//! points out that the parser is the one module PostgreSQL does *not* make
//! extensible — so in this reproduction the parser is likewise shared by the
//! single-node engine (`pgmini`) and the distributed layer (`citrus`), which
//! both consume the same [`ast::Statement`] trees.
//!
//! The crate provides three things:
//!
//! * [`lexer`] / [`parser`] — SQL text → [`ast::Statement`];
//! * [`ast`] — the tree the planners rewrite (shard-name substitution);
//! * [`deparse`] — [`ast::Statement`] → SQL text, used to ship rewritten
//!   queries to worker nodes over the "wire".
//!
//! ```
//! use sqlparse::{parse, deparse};
//! let stmt = parse("SELECT key, count(*) FROM events GROUP BY key").unwrap();
//! let sql = deparse(&stmt);
//! assert_eq!(parse(&sql).unwrap(), stmt); // round-trips
//! ```

pub mod ast;
pub mod deparse;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{Expr, Select, Statement};
pub use deparse::{deparse, deparse_expr, quote_ident, quote_literal};
pub use error::ParseError;
pub use parser::{parse, parse_expr, parse_many};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn roundtrip(sql: &str) -> Statement {
        let stmt = parse(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
        let text = deparse(&stmt);
        let again = parse(&text).unwrap_or_else(|e| panic!("re-parse {text:?}: {e}"));
        assert_eq!(stmt, again, "deparse round-trip changed the tree for {sql:?} -> {text:?}");
        stmt
    }

    #[test]
    fn select_simple() {
        let s = roundtrip("SELECT a, b FROM t WHERE a = 1");
        let Statement::Select(q) = s else { panic!() };
        assert_eq!(q.projection.len(), 2);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn select_full_clauses() {
        let s = roundtrip(
            "SELECT DISTINCT a, sum(b) AS total FROM t WHERE a > 2 GROUP BY a \
             HAVING sum(b) > 10 ORDER BY total DESC LIMIT 5 OFFSET 2",
        );
        let Statement::Select(q) = s else { panic!() };
        assert!(q.distinct);
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(Expr::int(5)));
        assert_eq!(q.offset, Some(Expr::int(2)));
    }

    #[test]
    fn select_for_update() {
        let s = roundtrip("SELECT * FROM stock WHERE s_i_id = 7 FOR UPDATE");
        let Statement::Select(q) = s else { panic!() };
        assert!(q.for_update);
    }

    #[test]
    fn joins_inner_left_using() {
        roundtrip("SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.x = c.x");
        let s = parse("SELECT * FROM a JOIN b USING (id)").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let TableRef::Join { on, .. } = &q.from[0] else { panic!() };
        // USING desugars to equality
        assert!(matches!(on, Some(Expr::Binary { op: BinaryOp::Eq, .. })));
    }

    #[test]
    fn derived_table() {
        let s = roundtrip("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1");
        let Statement::Select(q) = s else { panic!() };
        assert!(matches!(q.from[0], TableRef::Subquery { .. }));
    }

    #[test]
    fn subqueries_in_where() {
        roundtrip("SELECT * FROM t WHERE a IN (SELECT b FROM u)");
        roundtrip("SELECT * FROM t WHERE a NOT IN (1, 2, 3)");
        roundtrip("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = 5)");
        roundtrip("SELECT * FROM t WHERE a > (SELECT avg(b) FROM u)");
    }

    #[test]
    fn case_expressions() {
        roundtrip("SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t");
        roundtrip("SELECT CASE a WHEN 1 THEN 10 ELSE 0 END FROM t");
    }

    #[test]
    fn json_operators_and_casts() {
        let s = roundtrip("SELECT (data->'payload'->>'id')::bigint FROM events");
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert!(matches!(expr, Expr::Cast { .. }));
        roundtrip("SELECT data->>'created_at' FROM events WHERE data->'x'->>'y' ILIKE '%pg%'");
    }

    #[test]
    fn typed_date_literal_becomes_cast() {
        let s = parse("SELECT * FROM t WHERE d < date '2020-01-01'").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let Some(Expr::Binary { right, .. }) = q.where_clause else { panic!() };
        assert!(matches!(*right, Expr::Cast { ty: TypeName::Timestamp, .. }));
    }

    #[test]
    fn operator_precedence() {
        let s = parse("SELECT 1 + 2 * 3").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        // must parse as 1 + (2 * 3)
        let Expr::Binary { op: BinaryOp::Add, right, .. } = expr else { panic!("{expr:?}") };
        assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn and_or_precedence() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let Some(Expr::Binary { op: BinaryOp::Or, .. }) = q.where_clause else {
            panic!("OR should be outermost")
        };
    }

    #[test]
    fn between_like_isnull() {
        roundtrip("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN 2 AND 3");
        roundtrip("SELECT * FROM t WHERE name LIKE 'a%' AND name NOT ILIKE '%b'");
        roundtrip("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
    }

    #[test]
    fn insert_forms() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        roundtrip("INSERT INTO t SELECT a, b FROM u WHERE a > 0");
        roundtrip("INSERT INTO t (a) VALUES (1) ON CONFLICT (a) DO NOTHING");
        roundtrip("INSERT INTO t (a, n) VALUES (1, 1) ON CONFLICT (a) DO UPDATE SET n = t.n + 1");
    }

    #[test]
    fn update_delete() {
        roundtrip("UPDATE accounts SET balance = balance - 10 WHERE id = 3");
        roundtrip("DELETE FROM logs WHERE ts < 100");
    }

    #[test]
    fn create_table_with_constraints() {
        let s = roundtrip(
            "CREATE TABLE orders (id bigint PRIMARY KEY, wid int NOT NULL, note text, \
             PRIMARY KEY (id), FOREIGN KEY (wid) REFERENCES warehouse (id))",
        );
        let Statement::CreateTable(ct) = s else { panic!() };
        assert_eq!(ct.columns.len(), 3);
        assert_eq!(ct.constraints.len(), 2);
    }

    #[test]
    fn create_table_type_modifiers_are_swallowed() {
        let s = parse(
            "CREATE TABLE t (a varchar(16), b numeric(12, 2), c double precision, \
             d timestamp with time zone, e char(1))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else { panic!() };
        assert_eq!(ct.columns[0].ty, TypeName::Text);
        assert_eq!(ct.columns[1].ty, TypeName::Float);
        assert_eq!(ct.columns[2].ty, TypeName::Float);
        assert_eq!(ct.columns[3].ty, TypeName::Timestamp);
        assert_eq!(ct.columns[4].ty, TypeName::Text);
    }

    #[test]
    fn create_index_variants() {
        roundtrip("CREATE INDEX i ON t (a, b)");
        roundtrip("CREATE UNIQUE INDEX i ON t (a)");
        roundtrip("CREATE INDEX i ON t USING gin ((data->>'msg'))");
        roundtrip("CREATE INDEX i ON t (a) WHERE b > 0");
        // opclass suffix is accepted and ignored
        parse("CREATE INDEX i ON t USING gin ((data->>'m') gin_trgm_ops)").unwrap();
    }

    #[test]
    fn transaction_control() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(
            parse("PREPARE TRANSACTION 'citrus_1_2'").unwrap(),
            Statement::PrepareTransaction("citrus_1_2".into())
        );
        assert_eq!(
            parse("COMMIT PREPARED 'citrus_1_2'").unwrap(),
            Statement::CommitPrepared("citrus_1_2".into())
        );
        assert_eq!(
            parse("ROLLBACK PREPARED 'citrus_1_2'").unwrap(),
            Statement::RollbackPrepared("citrus_1_2".into())
        );
    }

    #[test]
    fn copy_and_misc() {
        roundtrip("COPY t (a, b) FROM STDIN");
        roundtrip("TRUNCATE a, b");
        roundtrip("DROP TABLE IF EXISTS x, y");
        roundtrip("VACUUM t");
        parse("SET citus_shard_count = 32").unwrap();
        parse("EXPLAIN SELECT * FROM t").unwrap();
    }

    #[test]
    fn count_star_and_distinct() {
        let s = roundtrip("SELECT count(*), count(DISTINCT a), avg(b) FROM t");
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr: Expr::Func(f), .. } = &q.projection[0] else { panic!() };
        assert!(f.star);
        let SelectItem::Expr { expr: Expr::Func(f), .. } = &q.projection[1] else { panic!() };
        assert!(f.distinct);
    }

    #[test]
    fn extract_special_form() {
        let s = parse("SELECT extract(year FROM o_date) FROM orders").unwrap();
        let Statement::Select(q) = s else { panic!() };
        let SelectItem::Expr { expr: Expr::Func(f), .. } = &q.projection[0] else { panic!() };
        assert_eq!(f.name, "extract");
        assert_eq!(f.args[0], Expr::string("year"));
    }

    #[test]
    fn multi_statement_script() {
        let stmts = parse_many("BEGIN; UPDATE t SET a = 1; COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn quoted_identifiers_roundtrip() {
        let s = roundtrip("SELECT \"MiXeD\" FROM \"Weird Table\"");
        let Statement::Select(q) = s else { panic!() };
        assert!(matches!(&q.from[0], TableRef::Table { name, .. } if name == "Weird Table"));
    }

    #[test]
    fn errors_have_positions() {
        let err = parse("SELECT FROM WHERE").unwrap_err();
        assert!(err.offset > 0);
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("UPDATE t").is_err());
        assert!(parse("CREATE TABLE t (a unknown_type)").is_err());
    }

    #[test]
    fn shard_name_rewrite_scenario() {
        // The distributed layer's core trick: rename tables, deparse, re-parse.
        let mut stmt = parse("SELECT o_id FROM orders WHERE w_id = 7").unwrap();
        if let Statement::Select(q) = &mut stmt {
            if let TableRef::Table { name, .. } = &mut q.from[0] {
                *name = "orders_102013".into();
            }
        }
        let text = deparse(&stmt);
        assert!(text.contains("orders_102013"));
        parse(&text).unwrap();
    }
}
