//! Recursive-descent SQL parser.
//!
//! The grammar covers the subset of PostgreSQL SQL exercised by the four
//! workload patterns in the paper: full SELECT (joins, derived tables,
//! subqueries, grouping, ordering, FOR UPDATE), DML with ON CONFLICT,
//! DDL, COPY FROM STDIN, and the transaction-control statements used for
//! two-phase commit (`PREPARE TRANSACTION`, `COMMIT PREPARED`, ...).

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, Op, Token, TokenKind};

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let mut stmts = parse_many(sql)?;
    match stmts.len() {
        1 => Ok(stmts.pop().expect("len checked")),
        0 => Err(ParseError::at(0, "empty statement")),
        _ => Err(ParseError::at(0, "expected a single statement")),
    }
}

/// Parse a semicolon-separated script into statements.
pub fn parse_many(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_op(Op::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_statement()?);
        if !p.eat_op(Op::Semicolon) && !p.at_eof() {
            return Err(p.unexpected("';' or end of input"));
        }
    }
    Ok(out)
}

/// Parse a standalone expression (used by index definitions and tests).
pub fn parse_expr(sql: &str) -> Result<Expr, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    if !p.at_eof() {
        return Err(p.unexpected("end of expression"));
    }
    Ok(e)
}

/// Words that cannot be used as a bare (non-`AS`) alias.
const RESERVED: &[&str] = &[
    "where", "group", "having", "order", "limit", "offset", "on", "join", "inner", "left",
    "right", "full", "cross", "union", "as", "from", "for", "set", "values", "using", "and",
    "or", "not", "when", "then", "else", "end", "case", "select", "insert", "update", "delete",
    "returning", "in", "is", "like", "ilike", "between", "null", "asc", "desc", "distinct",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError::at(self.offset(), format!("expected {wanted}, found {:?}", self.peek()))
    }

    /// Is the current token the given (lowercase) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn at_kw2(&self, kw: &str) -> bool {
        matches!(self.peek2(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{}'", kw.to_uppercase())))
        }
    }

    fn at_op(&self, op: Op) -> bool {
        matches!(self.peek(), TokenKind::Op(o) if *o == op)
    }

    fn eat_op(&mut self, op: Op) -> bool {
        if self.at_op(op) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: Op) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{}'", op.as_str())))
        }
    }

    /// Consume an identifier (quoted or not) and return its text.
    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn string_lit(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::String(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("string literal")),
        }
    }

    // ---------------- statements ----------------

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(kw) => match kw.as_str() {
                "select" => Ok(Statement::Select(Box::new(self.parse_select()?))),
                "insert" => self.parse_insert(),
                "update" => self.parse_update(),
                "delete" => self.parse_delete(),
                "create" => self.parse_create(),
                "drop" => self.parse_drop(),
                "truncate" => self.parse_truncate(),
                "copy" => self.parse_copy(),
                "begin" | "start" => {
                    self.advance();
                    self.eat_kw("transaction");
                    self.eat_kw("work");
                    Ok(Statement::Begin)
                }
                "commit" => {
                    self.advance();
                    if self.eat_kw("prepared") {
                        Ok(Statement::CommitPrepared(self.string_lit()?))
                    } else {
                        self.eat_kw("work");
                        Ok(Statement::Commit)
                    }
                }
                "rollback" | "abort" => {
                    self.advance();
                    if self.eat_kw("prepared") {
                        Ok(Statement::RollbackPrepared(self.string_lit()?))
                    } else {
                        self.eat_kw("work");
                        Ok(Statement::Rollback)
                    }
                }
                "prepare" => {
                    self.advance();
                    self.expect_kw("transaction")?;
                    Ok(Statement::PrepareTransaction(self.string_lit()?))
                }
                "vacuum" => {
                    self.advance();
                    let table = if matches!(self.peek(), TokenKind::Ident(_) | TokenKind::QuotedIdent(_))
                    {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    Ok(Statement::Vacuum { table })
                }
                "set" => {
                    self.advance();
                    self.eat_kw("local");
                    let name = self.ident()?;
                    if !self.eat_op(Op::Eq) {
                        self.expect_kw("to")?;
                    }
                    let value = self.parse_literal()?;
                    Ok(Statement::Set { name, value })
                }
                "explain" => {
                    self.advance();
                    let mut options = ExplainOptions::default();
                    if self.eat_op(Op::LParen) {
                        loop {
                            let opt = self.ident()?;
                            match opt.as_str() {
                                "analyze" => options.analyze = true,
                                "distributed" => options.distributed = true,
                                other => {
                                    return Err(ParseError::at(
                                        self.offset(),
                                        format!("unrecognized EXPLAIN option \"{other}\""),
                                    ))
                                }
                            }
                            if !self.eat_op(Op::Comma) {
                                break;
                            }
                        }
                        self.expect_op(Op::RParen)?;
                    } else if self.eat_kw("analyze") {
                        options.analyze = true;
                    }
                    Ok(Statement::Explain {
                        options,
                        inner: Box::new(self.parse_statement()?),
                    })
                }
                _ => Err(self.unexpected("statement keyword")),
            },
            _ => Err(self.unexpected("statement")),
        }
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        match self.peek().clone() {
            TokenKind::String(s) => {
                self.advance();
                Ok(Literal::String(s))
            }
            TokenKind::Number(n) => {
                self.advance();
                number_literal(&n, self.offset())
            }
            TokenKind::Ident(w) if w == "true" => {
                self.advance();
                Ok(Literal::Bool(true))
            }
            TokenKind::Ident(w) if w == "false" => {
                self.advance();
                Ok(Literal::Bool(false))
            }
            TokenKind::Ident(w) if w == "null" => {
                self.advance();
                Ok(Literal::Null)
            }
            TokenKind::Ident(w) if w == "on" => {
                self.advance();
                Ok(Literal::Bool(true))
            }
            TokenKind::Ident(w) if w == "off" => {
                self.advance();
                Ok(Literal::Bool(false))
            }
            TokenKind::Op(Op::Minus) => {
                self.advance();
                match self.parse_literal()? {
                    Literal::Int(v) => Ok(Literal::Int(-v)),
                    Literal::Float(v) => Ok(Literal::Float(-v)),
                    _ => Err(self.unexpected("numeric literal after '-'")),
                }
            }
            _ => Err(self.unexpected("literal")),
        }
    }

    // ---------------- SELECT ----------------

    pub(crate) fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("select")?;
        let mut sel = Select::empty();
        sel.distinct = self.eat_kw("distinct");
        loop {
            sel.projection.push(self.parse_select_item()?);
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        if self.eat_kw("from") {
            loop {
                sel.from.push(self.parse_table_ref()?);
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("where") {
            sel.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                sel.group_by.push(self.parse_expr()?);
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            sel.having = Some(self.parse_expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                sel.order_by.push(OrderByItem { expr, desc });
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
        }
        // LIMIT and OFFSET may appear in either order
        loop {
            if sel.limit.is_none() && self.eat_kw("limit") {
                sel.limit = Some(self.parse_expr()?);
            } else if sel.offset.is_none() && self.eat_kw("offset") {
                sel.offset = Some(self.parse_expr()?);
            } else {
                break;
            }
        }
        if self.eat_kw("for") {
            self.expect_kw("update")?;
            sel.for_update = true;
        }
        Ok(sel)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.at_op(Op::Star) {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(t) = self.peek().clone() {
            if matches!(self.peek2(), TokenKind::Op(Op::Dot))
                && matches!(
                    self.tokens.get(self.pos + 2).map(|t| &t.kind),
                    Some(TokenKind::Op(Op::Star))
                )
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(t));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        match self.peek().clone() {
            TokenKind::Ident(w) if !RESERVED.contains(&w.as_str()) => {
                self.advance();
                Ok(Some(w))
            }
            TokenKind::QuotedIdent(w) => {
                self.advance();
                Ok(Some(w))
            }
            _ => Ok(None),
        }
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.at_kw("join") || (self.at_kw("inner") && self.at_kw2("join")) {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.at_kw("left") {
                self.advance();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.at_kw("right") {
                self.advance();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Right
            } else if self.at_kw("full") {
                self.advance();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Full
            } else if self.at_kw("cross") {
                self.advance();
                self.expect_kw("join")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else if self.eat_kw("using") {
                // USING (a, b) is sugar for equality on the shared columns.
                self.expect_op(Op::LParen)?;
                let mut cond: Option<Expr> = None;
                loop {
                    let col = self.ident()?;
                    let lname = left.visible_name().map(str::to_string);
                    let rname = right.visible_name().map(str::to_string);
                    let eq = Expr::bin(
                        Expr::Column { table: lname, name: col.clone() },
                        BinaryOp::Eq,
                        Expr::Column { table: rname, name: col },
                    );
                    cond = Some(match cond {
                        None => eq,
                        Some(c) => Expr::bin(c, BinaryOp::And, eq),
                    });
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RParen)?;
                cond
            } else {
                self.expect_kw("on")?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef, ParseError> {
        if self.eat_op(Op::LParen) {
            if self.at_kw("select") {
                let query = Box::new(self.parse_select()?);
                self.expect_op(Op::RParen)?;
                self.eat_kw("as");
                let alias = self.ident()?;
                return Ok(TableRef::Subquery { query, alias });
            }
            let inner = self.parse_table_ref()?;
            self.expect_op(Op::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let alias = self.parse_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ---------------- DML ----------------

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.at_op(Op::LParen) {
            // Could be a column list or a parenthesised SELECT source; column
            // lists are identifiers followed by ',' or ')'.
            let save = self.pos;
            self.advance();
            let looks_like_columns = matches!(
                self.peek(),
                TokenKind::Ident(w) if w != "select"
            ) || matches!(self.peek(), TokenKind::QuotedIdent(_));
            if looks_like_columns {
                loop {
                    columns.push(self.ident()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RParen)?;
            } else {
                self.pos = save;
            }
        }
        let source = if self.eat_kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect_op(Op::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RParen)?;
                rows.push(row);
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            let wrapped = self.eat_op(Op::LParen);
            let q = self.parse_select()?;
            if wrapped {
                self.expect_op(Op::RParen)?;
            }
            InsertSource::Query(Box::new(q))
        };
        let on_conflict = if self.eat_kw("on") {
            self.expect_kw("conflict")?;
            let mut target = Vec::new();
            if self.eat_op(Op::LParen) {
                loop {
                    target.push(self.ident()?);
                    if !self.eat_op(Op::Comma) {
                        break;
                    }
                }
                self.expect_op(Op::RParen)?;
            }
            self.expect_kw("do")?;
            let action = if self.eat_kw("nothing") {
                ConflictAction::Nothing
            } else {
                self.expect_kw("update")?;
                self.expect_kw("set")?;
                ConflictAction::Update(self.parse_assignments()?)
            };
            Some(OnConflict { target, action })
        } else {
            None
        };
        Ok(Statement::Insert(Box::new(Insert { table, columns, source, on_conflict })))
    }

    fn parse_assignments(&mut self) -> Result<Vec<Assignment>, ParseError> {
        let mut out = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect_op(Op::Eq)?;
            let value = self.parse_expr()?;
            out.push(Assignment { column, value });
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn parse_update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        let alias = if self.at_kw("set") { None } else { self.parse_alias()? };
        self.expect_kw("set")?;
        let assignments = self.parse_assignments()?;
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update(Box::new(Update { table, alias, assignments, where_clause })))
    }

    fn parse_delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let alias = if self.at_kw("where") { None } else { self.parse_alias()? };
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete(Box::new(Delete { table, alias, where_clause })))
    }

    // ---------------- DDL ----------------

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("create")?;
        let unique = self.eat_kw("unique");
        if self.eat_kw("table") {
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.ident()?;
            self.expect_op(Op::LParen)?;
            let mut columns = Vec::new();
            let mut constraints = Vec::new();
            loop {
                if self.at_kw("primary") {
                    self.advance();
                    self.expect_kw("key")?;
                    constraints.push(TableConstraint::PrimaryKey(self.parse_name_list()?));
                } else if self.at_kw("unique") {
                    self.advance();
                    constraints.push(TableConstraint::Unique(self.parse_name_list()?));
                } else if self.at_kw("foreign") {
                    self.advance();
                    self.expect_kw("key")?;
                    let columns = self.parse_name_list()?;
                    self.expect_kw("references")?;
                    let ref_table = self.ident()?;
                    let ref_columns =
                        if self.at_op(Op::LParen) { self.parse_name_list()? } else { Vec::new() };
                    constraints.push(TableConstraint::ForeignKey { columns, ref_table, ref_columns });
                } else if self.at_kw("constraint") {
                    // named constraint: skip the name, re-dispatch
                    self.advance();
                    let _name = self.ident()?;
                    continue;
                } else {
                    columns.push(self.parse_column_def()?);
                }
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
            self.expect_op(Op::RParen)?;
            let using = if self.eat_kw("using") { Some(self.ident()?) } else { None };
            return Ok(Statement::CreateTable(Box::new(CreateTable {
                name,
                if_not_exists,
                columns,
                constraints,
                using,
            })));
        }
        if self.eat_kw("index") {
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            let method = if self.eat_kw("using") { Some(self.ident()?) } else { None };
            self.expect_op(Op::LParen)?;
            let mut columns = Vec::new();
            loop {
                let mut e = self.parse_expr()?;
                // Ignore per-column opclass names like `gin_trgm_ops`.
                if let TokenKind::Ident(w) = self.peek().clone() {
                    if w.ends_with("_ops") || w.ends_with("_pattern_ops") {
                        self.advance();
                    }
                }
                // normalise (expr) wrapping used by expression indexes
                if let Expr::Func(f) = &e {
                    if f.name == "__paren" && f.args.len() == 1 {
                        e = f.args[0].clone();
                    }
                }
                columns.push(e);
                if !self.eat_op(Op::Comma) {
                    break;
                }
            }
            self.expect_op(Op::RParen)?;
            let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
            return Ok(Statement::CreateIndex(Box::new(CreateIndex {
                name,
                table,
                method,
                columns,
                unique,
                where_clause,
                if_not_exists,
            })));
        }
        if self.eat_kw("rollup") {
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.ident()?;
            self.expect_kw("as")?;
            let query = self.parse_select()?;
            return Ok(Statement::CreateRollup(Box::new(CreateRollup {
                name,
                if_not_exists,
                query,
            })));
        }
        Err(self.unexpected("'TABLE', 'INDEX' or 'ROLLUP' after CREATE"))
    }

    fn parse_if_not_exists(&mut self) -> Result<bool, ParseError> {
        if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_name_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect_op(Op::LParen)?;
        let mut out = Vec::new();
        loop {
            out.push(self.ident()?);
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        self.expect_op(Op::RParen)?;
        Ok(out)
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.ident()?;
        let ty_word = self.ident()?;
        let ty = TypeName::from_keyword(&ty_word)
            .ok_or_else(|| ParseError::at(self.offset(), format!("unknown type '{ty_word}'")))?;
        // Swallow type modifiers: varchar(16), numeric(12, 2), double precision,
        // timestamp with time zone.
        if ty_word == "double" {
            self.eat_kw("precision");
        }
        if ty_word == "character" {
            self.eat_kw("varying");
        }
        if self.eat_op(Op::LParen) {
            loop {
                match self.advance() {
                    TokenKind::Op(Op::RParen) => break,
                    TokenKind::Eof => return Err(self.unexpected("')'")),
                    _ => {}
                }
            }
        }
        if (ty_word == "timestamp" || ty_word == "time") && self.eat_kw("with") {
            self.expect_kw("time")?;
            self.expect_kw("zone")?;
        }
        let mut def = ColumnDef {
            name,
            ty,
            not_null: false,
            primary_key: false,
            unique: false,
            default: None,
            references: None,
        };
        loop {
            if self.eat_kw("not") {
                self.expect_kw("null")?;
                def.not_null = true;
            } else if self.eat_kw("null") {
                // explicit nullable: no-op
            } else if self.eat_kw("primary") {
                self.expect_kw("key")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_kw("unique") {
                def.unique = true;
            } else if self.eat_kw("default") {
                def.default = Some(self.parse_expr()?);
            } else if self.eat_kw("references") {
                let table = self.ident()?;
                let col = if self.at_op(Op::LParen) {
                    let cols = self.parse_name_list()?;
                    cols.into_iter().next().unwrap_or_default()
                } else {
                    String::new()
                };
                def.references = Some((table, col));
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("drop")?;
        if self.eat_kw("rollup") {
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Statement::DropRollup { name, if_exists });
        }
        self.expect_kw("table")?;
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let mut names = Vec::new();
        loop {
            names.push(self.ident()?);
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        self.eat_kw("cascade");
        Ok(Statement::DropTable { names, if_exists })
    }

    fn parse_truncate(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("truncate")?;
        self.eat_kw("table");
        let mut tables = Vec::new();
        loop {
            tables.push(self.ident()?);
            if !self.eat_op(Op::Comma) {
                break;
            }
        }
        Ok(Statement::Truncate { tables })
    }

    fn parse_copy(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("copy")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.at_op(Op::LParen) {
            columns = self.parse_name_list()?;
        }
        self.expect_kw("from")?;
        self.expect_kw("stdin")?;
        // Ignore `WITH (FORMAT csv, ...)` options.
        if self.eat_kw("with") && self.eat_op(Op::LParen) {
            loop {
                match self.advance() {
                    TokenKind::Op(Op::RParen) => break,
                    TokenKind::Eof => return Err(self.unexpected("')'")),
                    _ => {}
                }
            }
        }
        Ok(Statement::Copy(Box::new(CopyStmt { table, columns, from_stdin: true })))
    }

    // ---------------- expressions ----------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::bin(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::bin(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_additive()?;
        loop {
            if self.eat_kw("is") {
                let negated = self.eat_kw("not");
                self.expect_kw("null")?;
                left = Expr::IsNull { expr: Box::new(left), negated };
                continue;
            }
            let negated = if self.at_kw("not")
                && (self.at_kw2("between") || self.at_kw2("in") || self.at_kw2("like")
                    || self.at_kw2("ilike"))
            {
                self.advance();
                true
            } else {
                false
            };
            if self.eat_kw("between") {
                let low = self.parse_additive()?;
                self.expect_kw("and")?;
                let high = self.parse_additive()?;
                left = Expr::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if self.eat_kw("in") {
                self.expect_op(Op::LParen)?;
                if self.at_kw("select") {
                    let sub = self.parse_select()?;
                    self.expect_op(Op::RParen)?;
                    left = Expr::InSubquery {
                        expr: Box::new(left),
                        subquery: Box::new(sub),
                        negated,
                    };
                } else {
                    let mut list = Vec::new();
                    loop {
                        list.push(self.parse_expr()?);
                        if !self.eat_op(Op::Comma) {
                            break;
                        }
                    }
                    self.expect_op(Op::RParen)?;
                    left = Expr::InList { expr: Box::new(left), list, negated };
                }
                continue;
            }
            let ci = if self.eat_kw("like") {
                Some(false)
            } else if self.eat_kw("ilike") {
                Some(true)
            } else {
                None
            };
            if let Some(case_insensitive) = ci {
                let pattern = self.parse_additive()?;
                left = Expr::Like {
                    expr: Box::new(left),
                    pattern: Box::new(pattern),
                    negated,
                    case_insensitive,
                };
                continue;
            }
            if negated {
                return Err(self.unexpected("BETWEEN, IN, LIKE or ILIKE after NOT"));
            }
            let op = match self.peek() {
                TokenKind::Op(Op::Eq) => BinaryOp::Eq,
                TokenKind::Op(Op::Neq) => BinaryOp::Neq,
                TokenKind::Op(Op::Lt) => BinaryOp::Lt,
                TokenKind::Op(Op::Le) => BinaryOp::Le,
                TokenKind::Op(Op::Gt) => BinaryOp::Gt,
                TokenKind::Op(Op::Ge) => BinaryOp::Ge,
                _ => break,
            };
            self.advance();
            let right = self.parse_additive()?;
            left = Expr::bin(left, op, right);
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Op(Op::Plus) => BinaryOp::Add,
                TokenKind::Op(Op::Minus) => BinaryOp::Sub,
                TokenKind::Op(Op::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::bin(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Op(Op::Star) => BinaryOp::Mul,
                TokenKind::Op(Op::Slash) => BinaryOp::Div,
                TokenKind::Op(Op::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::bin(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op(Op::Minus) {
            let inner = self.parse_unary()?;
            // fold negation into numeric literals so `-1` is a literal (and
            // deparse→parse round-trips structurally)
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(v.wrapping_neg())),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_op(Op::Plus) {
            return self.parse_unary();
        }
        self.parse_postfix()
    }

    /// Postfix operators: `::type` casts and json `->` / `->>` access.
    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            if self.eat_op(Op::DoubleColon) {
                let ty_word = self.ident()?;
                let ty = TypeName::from_keyword(&ty_word).ok_or_else(|| {
                    ParseError::at(self.offset(), format!("unknown type '{ty_word}' in cast"))
                })?;
                if ty_word == "double" {
                    self.eat_kw("precision");
                }
                e = Expr::Cast { expr: Box::new(e), ty };
                if ty_word == "date" {
                    // `::date` truncates the time-of-day, like PostgreSQL
                    e = Expr::Func(crate::ast::FuncCall::new(
                        "date_trunc",
                        vec![Expr::string("day"), e],
                    ));
                }
                continue;
            }
            let op = match self.peek() {
                TokenKind::Op(Op::Arrow) => BinaryOp::JsonGet,
                TokenKind::Op(Op::LongArrow) => BinaryOp::JsonGetText,
                _ => break,
            };
            self.advance();
            // the accessor key is a (possibly negated) primary
            let key = if self.eat_op(Op::Minus) {
                match self.parse_primary()? {
                    Expr::Literal(Literal::Int(v)) => {
                        Expr::Literal(Literal::Int(v.wrapping_neg()))
                    }
                    Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                    other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
                }
            } else {
                self.parse_primary()?
            };
            e = Expr::bin(e, op, key);
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Literal(number_literal(&n, self.offset())?))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Param(n) => {
                self.advance();
                Ok(Expr::Param(n))
            }
            TokenKind::Op(Op::LParen) => {
                self.advance();
                if self.at_kw("select") {
                    let sub = self.parse_select()?;
                    self.expect_op(Op::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let inner = self.parse_expr()?;
                self.expect_op(Op::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(w) => match w.as_str() {
                "null" => {
                    self.advance();
                    Ok(Expr::Literal(Literal::Null))
                }
                "true" => {
                    self.advance();
                    Ok(Expr::Literal(Literal::Bool(true)))
                }
                "false" => {
                    self.advance();
                    Ok(Expr::Literal(Literal::Bool(false)))
                }
                "case" => self.parse_case(),
                "cast" => {
                    self.advance();
                    self.expect_op(Op::LParen)?;
                    let inner = self.parse_expr()?;
                    self.expect_kw("as")?;
                    let ty_word = self.ident()?;
                    let ty = TypeName::from_keyword(&ty_word).ok_or_else(|| {
                        ParseError::at(self.offset(), format!("unknown type '{ty_word}' in cast"))
                    })?;
                    if ty_word == "double" {
                        self.eat_kw("precision");
                    }
                    self.expect_op(Op::RParen)?;
                    let cast = Expr::Cast { expr: Box::new(inner), ty };
                    Ok(if ty_word == "date" {
                        Expr::Func(crate::ast::FuncCall::new(
                            "date_trunc",
                            vec![Expr::string("day"), cast],
                        ))
                    } else {
                        cast
                    })
                }
                "exists" => {
                    self.advance();
                    self.expect_op(Op::LParen)?;
                    let sub = self.parse_select()?;
                    self.expect_op(Op::RParen)?;
                    Ok(Expr::Exists { subquery: Box::new(sub), negated: false })
                }
                "extract" => {
                    self.advance();
                    self.expect_op(Op::LParen)?;
                    let field = self.ident()?;
                    self.expect_kw("from")?;
                    let from = self.parse_expr()?;
                    self.expect_op(Op::RParen)?;
                    Ok(Expr::Func(FuncCall::new(
                        "extract",
                        vec![Expr::Literal(Literal::String(field)), from],
                    )))
                }
                // typed literals: date '2020-01-01', timestamp '...'
                "date" | "timestamp" if matches!(self.peek2(), TokenKind::String(_)) => {
                    self.advance();
                    let s = self.string_lit()?;
                    Ok(Expr::Cast {
                        expr: Box::new(Expr::Literal(Literal::String(s))),
                        ty: TypeName::Timestamp,
                    })
                }
                _ => {
                    self.advance();
                    // qualified column: t.col
                    if self.eat_op(Op::Dot) {
                        let name = self.ident()?;
                        return Ok(Expr::Column { table: Some(w), name });
                    }
                    // function call
                    if self.at_op(Op::LParen) {
                        self.advance();
                        let mut fc = FuncCall::new(&w, Vec::new());
                        if self.eat_op(Op::Star) {
                            fc.star = true;
                        } else if !self.at_op(Op::RParen) {
                            fc.distinct = self.eat_kw("distinct");
                            loop {
                                fc.args.push(self.parse_expr()?);
                                if !self.eat_op(Op::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_op(Op::RParen)?;
                        return Ok(Expr::Func(fc));
                    }
                    Ok(Expr::Column { table: None, name: w })
                }
            },
            TokenKind::QuotedIdent(w) => {
                self.advance();
                if self.eat_op(Op::Dot) {
                    let name = self.ident()?;
                    return Ok(Expr::Column { table: Some(w), name });
                }
                Ok(Expr::Column { table: None, name: w })
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("case")?;
        let operand = if self.at_kw("when") { None } else { Some(Box::new(self.parse_expr()?)) };
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.parse_expr()?;
            self.expect_kw("then")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.unexpected("'WHEN'"));
        }
        let else_result =
            if self.eat_kw("else") { Some(Box::new(self.parse_expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(Expr::Case { operand, branches, else_result })
    }
}

fn number_literal(text: &str, offset: usize) -> Result<Literal, ParseError> {
    if text.contains('.') || text.contains('e') || text.contains('E') {
        text.parse::<f64>()
            .map(Literal::Float)
            .map_err(|_| ParseError::at(offset, "invalid numeric literal"))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok(Literal::Int(v)),
            // overflowing integers fall back to float, like PostgreSQL numerics
            Err(_) => text
                .parse::<f64>()
                .map(Literal::Float)
                .map_err(|_| ParseError::at(offset, "invalid numeric literal")),
        }
    }
}
