//! Property tests: deparse∘parse is the identity on the AST — load-bearing,
//! because the distributed layer ships rewritten statements as deparsed SQL.

use proptest::prelude::*;
use sqlparse::ast::*;
use sqlparse::{deparse, parse};

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Bool),
        any::<i32>().prop_map(|v| Literal::Int(v as i64)),
        (-1_000_000..1_000_000i64).prop_map(|v| Literal::Float(v as f64 / 100.0)),
        "[a-z '%_]{0,12}".prop_map(Literal::String),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not reserved", |s| {
        ![
            "where", "group", "having", "order", "limit", "offset", "on", "join", "inner",
            "left", "right", "full", "cross", "union", "as", "from", "for", "set", "values",
            "using", "and", "or", "not", "when", "then", "else", "end", "case", "select",
            "insert", "update", "delete", "returning", "in", "is", "like", "ilike", "between",
            "null", "asc", "desc", "distinct", "true", "false", "date", "timestamp", "exists",
            "cast", "extract", "begin", "commit", "rollback", "create", "drop", "copy",
            "vacuum", "explain", "table", "index", "prepare", "start", "abort", "truncate",
        ]
        .contains(&s.as_str())
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(|name| Expr::Column { table: None, name }),
        (arb_ident(), arb_ident())
            .prop_map(|(t, name)| Expr::Column { table: Some(t), name }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), arb_binop(), inner.clone())
                .prop_map(|(l, op, r)| Expr::bin(l, op, r)),
            (inner.clone())
                .prop_map(|e| Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }),
            // Neg folds into numeric literals at parse time, so the
            // canonical AST only applies it to non-literals
            (inner.clone())
                .prop_map(|e| match e {
                    Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(v.wrapping_neg())),
                    Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                    other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
                }),
            (inner.clone(), prop::bool::ANY)
                .prop_map(|(e, n)| Expr::IsNull { expr: Box::new(e), negated: n }),
            (inner.clone(), arb_type())
                .prop_map(|(e, ty)| Expr::Cast { expr: Box::new(e), ty }),
            (inner.clone(), inner.clone(), inner.clone(), prop::bool::ANY).prop_map(
                |(e, lo, hi, n)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: n,
                }
            ),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..4), prop::bool::ANY)
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
            (arb_ident(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                |(name, args)| Expr::Func(FuncCall::new(&name, args))
            ),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| Expr::Case {
                    operand: None,
                    branches: vec![(c, t)],
                    else_result: Some(Box::new(e)),
                }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Eq),
        Just(BinaryOp::Neq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Concat),
        Just(BinaryOp::JsonGet),
        Just(BinaryOp::JsonGetText),
    ]
}

fn arb_type() -> impl Strategy<Value = TypeName> {
    prop_oneof![
        Just(TypeName::Int),
        Just(TypeName::Float),
        Just(TypeName::Text),
        Just(TypeName::Bool),
        Just(TypeName::Json),
        Just(TypeName::Timestamp),
    ]
}

fn arb_select() -> impl Strategy<Value = Statement> {
    (
        prop::collection::vec((arb_expr(), prop::option::of(arb_ident())), 1..4),
        arb_ident(),
        prop::option::of(arb_ident()),
        prop::option::of(arb_expr()),
        prop::collection::vec(arb_expr(), 0..3),
        prop::collection::vec((arb_expr(), prop::bool::ANY), 0..2),
        prop::option::of(0..1000i64),
        prop::bool::ANY,
    )
        .prop_map(
            |(projection, table, alias, where_clause, group_by, order_by, limit, distinct)| {
                let mut sel = Select::empty();
                sel.distinct = distinct;
                sel.projection = projection
                    .into_iter()
                    .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                    .collect();
                sel.from = vec![TableRef::Table { name: table, alias }];
                sel.where_clause = where_clause;
                sel.group_by = group_by;
                sel.order_by = order_by
                    .into_iter()
                    .map(|(expr, desc)| OrderByItem { expr, desc })
                    .collect();
                sel.limit = limit.map(Expr::int);
                Statement::Select(Box::new(sel))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_roundtrips(e in arb_expr()) {
        let stmt = Statement::Select(Box::new(Select {
            projection: vec![SelectItem::Expr { expr: e, alias: None }],
            ..Select::empty()
        }));
        let text = deparse(&stmt);
        let parsed = parse(&text)
            .unwrap_or_else(|err| panic!("deparse produced unparsable SQL {text:?}: {err}"));
        prop_assert_eq!(parsed, stmt, "round-trip changed the tree for {}", text);
    }

    #[test]
    fn select_roundtrips(s in arb_select()) {
        let text = deparse(&s);
        let parsed = parse(&text)
            .unwrap_or_else(|err| panic!("deparse produced unparsable SQL {text:?}: {err}"));
        prop_assert_eq!(parsed, s, "round-trip changed the tree for {}", text);
    }

    #[test]
    fn update_roundtrips(
        table in arb_ident(),
        col in arb_ident(),
        value in arb_expr(),
        cond in prop::option::of(arb_expr()),
    ) {
        let stmt = Statement::Update(Box::new(Update {
            table,
            alias: None,
            assignments: vec![Assignment { column: col, value }],
            where_clause: cond,
        }));
        let text = deparse(&stmt);
        let parsed = parse(&text).unwrap_or_else(|err| panic!("{text:?}: {err}"));
        prop_assert_eq!(parsed, stmt);
    }

    #[test]
    fn lexer_never_panics(s in "\\PC{0,60}") {
        let _ = sqlparse::lexer::lex(&s);
    }

    #[test]
    fn parser_never_panics(s in "[a-zA-Z0-9 ,.()*'=<>%_-]{0,80}") {
        let _ = parse(&s);
    }
}
