//! GitHub-Archive-style event stream (§4.2).
//!
//! The paper loads January 2020 of gharchive.org (JSON push events) and runs
//! three microbenchmarks: COPY ingest against a trigram GIN index, a
//! dashboard query over commit messages, and an INSERT..SELECT
//! transformation. The archive itself is not redistributable here, so this
//! generator produces a deterministic synthetic stream with the same shape:
//! `{"created_at": ..., "type": ..., "payload": {"commits": [{"message": ...}]}}`.

use crate::runner::SqlRunner;
use pgmini::error::PgResult;
use pgmini::types::{Datum, Json, Row};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Schema + index of §4.2 (keyed by a synthetic event id, as in the paper).
pub fn schema_statements() -> Vec<String> {
    vec![
        "CREATE TABLE github_events (event_id text PRIMARY KEY, data jsonb)".into(),
        "CREATE INDEX text_search_idx ON github_events USING gin \
         ((jsonb_path_query_array(data, '$.payload.commits[*].message')::text))"
            .into(),
    ]
}

pub fn distribution_statement() -> String {
    "SELECT create_distributed_table('github_events', 'event_id')".to_string()
}

/// ~1.5 KB of JSON per event in the real archive.
pub const SIM_ROW_WIDTH: u32 = 1500;

const WORDS: &[&str] = &[
    "fix", "bug", "update", "docs", "refactor", "test", "cleanup", "feature", "merge",
    "bump", "version", "improve", "performance", "revert", "typo", "lint", "ci", "api",
    "planner", "index", "cache", "query", "shard", "deadlock",
];

/// Fraction of commit messages mentioning "postgres" (the dashboard query's
/// selectivity knob).
pub const POSTGRES_MENTION_RATE: f64 = 0.02;

/// A deterministic stream of events for a given day.
pub struct EventGenerator {
    rng: StdRng,
    day: u32,
    seq: u64,
}

impl EventGenerator {
    pub fn new(day: u32, seed: u64) -> Self {
        EventGenerator { rng: StdRng::seed_from_u64(seed ^ (day as u64) << 32), day, seq: 0 }
    }

    fn message(&mut self) -> String {
        let n = self.rng.random_range(3..9);
        let mut words: Vec<&str> = (0..n)
            .map(|_| WORDS[self.rng.random_range(0..WORDS.len())])
            .collect();
        if self.rng.random_bool(POSTGRES_MENTION_RATE) {
            let pos = self.rng.random_range(0..words.len());
            words[pos] = if self.rng.random_bool(0.5) { "postgres" } else { "postgresql" };
        }
        words.join(" ")
    }

    /// Next event as a `(event_id, data)` row.
    pub fn next_event(&mut self) -> Row {
        self.seq += 1;
        let hour = self.rng.random_range(0..24u32);
        let minute = self.rng.random_range(0..60u32);
        let event_type = match self.rng.random_range(0..10u32) {
            0..6 => "PushEvent",
            6..8 => "IssuesEvent",
            _ => "WatchEvent",
        };
        let commits: Vec<Json> = if event_type == "PushEvent" {
            (0..self.rng.random_range(1..4u32))
                .map(|_| Json::obj(vec![("message", Json::str(&self.message()))]))
                .collect()
        } else {
            Vec::new()
        };
        let data = Json::obj(vec![
            (
                "created_at",
                Json::str(&format!("2020-01-{:02} {hour:02}:{minute:02}:00", self.day)),
            ),
            ("type", Json::str(event_type)),
            (
                "actor",
                Json::obj(vec![("id", Json::Number(self.rng.random_range(1..100000) as f64))]),
            ),
            ("payload", Json::obj(vec![("commits", Json::Array(commits))])),
        ]);
        vec![
            Datum::Text(format!("evt-{:02}-{:08x}", self.day, self.seq)),
            Datum::Json(data),
        ]
    }

    /// A batch of `n` events.
    pub fn batch(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

/// Load `events` events for `day` via COPY.
pub fn load_day(r: &mut dyn SqlRunner, day: u32, events: usize, seed: u64) -> PgResult<u64> {
    let mut generator = EventGenerator::new(day, seed);
    let mut loaded = 0;
    let mut remaining = events;
    while remaining > 0 {
        let n = remaining.min(2000);
        loaded += r.copy("github_events", &[], generator.batch(n))?;
        remaining -= n;
    }
    Ok(loaded)
}

/// The Figure 7(b) dashboard query: commits mentioning "postgres" per day.
pub fn dashboard_query() -> String {
    "SELECT (data->>'created_at')::date, \
            sum(jsonb_array_length(data->'payload'->'commits')) \
     FROM github_events \
     WHERE jsonb_path_query_array(data, '$.payload.commits[*].message')::text \
           ILIKE '%postgres%' \
     GROUP BY 1 ORDER BY 1 ASC"
        .to_string()
}

/// The Figure 7(c) transformation target table.
pub fn transformation_schema() -> Vec<String> {
    vec![
        "CREATE TABLE push_commits (event_id text, day timestamp, commit_count bigint)".into(),
    ]
}

pub fn transformation_distribution() -> String {
    "SELECT create_distributed_table('push_commits', 'event_id', 'github_events')".to_string()
}

/// The Figure 7(c) INSERT..SELECT: extract commit counts from push events.
/// Groups by the distribution column, so it runs fully co-located.
pub fn transformation_query() -> String {
    "INSERT INTO push_commits (event_id, day, commit_count) \
     SELECT event_id, (data->>'created_at')::date, \
            jsonb_array_length(data->'payload'->'commits') \
     FROM github_events \
     WHERE data->>'type' = 'PushEvent'"
        .to_string()
}

/// The commit-volume rollup over the Figure 7(c) transformation target: the
/// distributed evaluation arm serves its dashboard from this incrementally
/// maintained table (DESIGN.md §12) instead of re-aggregating `push_commits`
/// on every read.
pub fn rollup_definition() -> String {
    "CREATE ROLLUP commit_rollup AS SELECT day, count(*) AS pushes, \
     sum(commit_count) AS commits FROM push_commits GROUP BY day"
        .to_string()
}

/// The dashboard read against [`rollup_definition`]'s table. Staleness is
/// bounded by the on-read changefeed drain, so this stays current with the
/// transformation stream without rescanning it.
pub fn rollup_dashboard_query() -> String {
    "SELECT day, pushes, commits FROM commit_rollup ORDER BY day".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_deterministic() {
        let a: Vec<Row> = EventGenerator::new(1, 42).batch(50);
        let b: Vec<Row> = EventGenerator::new(1, 42).batch(50);
        assert_eq!(a, b);
        let c: Vec<Row> = EventGenerator::new(2, 42).batch(50);
        assert_ne!(a, c, "different days differ");
    }

    #[test]
    fn events_have_the_gharchive_shape() {
        let mut generator = EventGenerator::new(1, 7);
        let mut push_seen = false;
        for row in generator.batch(200) {
            let Datum::Json(j) = &row[1] else { panic!("jsonb column") };
            assert!(j.get("created_at").is_some());
            let msgs = j.path_query("$.payload.commits[*].message").unwrap();
            if j.get_text("type").as_deref() == Some("PushEvent") {
                push_seen = true;
                assert!(!msgs.is_empty());
            } else {
                assert!(msgs.is_empty());
            }
        }
        assert!(push_seen);
    }

    #[test]
    fn postgres_mentions_near_target_rate() {
        let mut generator = EventGenerator::new(1, 99);
        let mut commits = 0u32;
        let mut mentions = 0u32;
        for row in generator.batch(5_000) {
            let Datum::Json(j) = &row[1] else { panic!() };
            for m in j.path_query("$.payload.commits[*].message").unwrap() {
                commits += 1;
                if m.as_text().contains("postgres") {
                    mentions += 1;
                }
            }
        }
        let rate = mentions as f64 / commits as f64;
        assert!((rate - POSTGRES_MENTION_RATE).abs() < 0.01, "{rate}");
    }

    #[test]
    fn queries_parse() {
        for s in schema_statements() {
            sqlparse::parse(&s).unwrap();
        }
        sqlparse::parse(&dashboard_query()).unwrap();
        sqlparse::parse(&transformation_query()).unwrap();
        sqlparse::parse(&rollup_definition()).unwrap();
        sqlparse::parse(&rollup_dashboard_query()).unwrap();
    }
}
