//! Benchmark workload generators and drivers for the citrus reproduction —
//! the Table 3 benchmarks of the paper:
//!
//! * [`tpcc`] — HammerDB-style TPC-C-derived OLTP (multi-tenant, Figure 6);
//! * [`gharchive`] — synthetic GitHub-Archive event stream (real-time
//!   analytics, Figure 7);
//! * [`ycsb`] — Yahoo! Cloud Serving Benchmark (high-performance CRUD,
//!   Figure 10);
//! * [`tpch`] — TPC-H subset (data warehousing, Figure 8);
//! * [`pgbench`] — the two-update distributed-transaction microbenchmark
//!   (Figure 9);
//! * [`patterns`] — the Table 1 / Table 2 requirement matrices as data;
//! * [`runner`] — the driver-to-connection seam shared by all of them.

pub mod gharchive;
pub mod patterns;
pub mod pgbench;
pub mod runner;
pub mod sim;
pub mod tpcc;
pub mod tpch;
pub mod ycsb;

pub use runner::{ClusterRunner, LocalRunner, MxRunner, RunCost, SqlRunner};
