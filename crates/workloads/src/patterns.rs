//! The four workload patterns of §2 with their Table 1 scale requirements
//! and Table 2 capability matrix — as data, so the `tables` benchmark binary
//! and the Table-2 capability tests can regenerate the paper's tables.

/// The four workload patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    MultiTenant,
    RealTimeAnalytics,
    HighPerformanceCrud,
    DataWarehousing,
}

impl Pattern {
    pub const ALL: [Pattern; 4] = [
        Pattern::MultiTenant,
        Pattern::RealTimeAnalytics,
        Pattern::HighPerformanceCrud,
        Pattern::DataWarehousing,
    ];

    pub fn abbrev(self) -> &'static str {
        match self {
            Pattern::MultiTenant => "MT",
            Pattern::RealTimeAnalytics => "RA",
            Pattern::HighPerformanceCrud => "HC",
            Pattern::DataWarehousing => "DW",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Pattern::MultiTenant => "Multi-tenant",
            Pattern::RealTimeAnalytics => "Real-time analytics",
            Pattern::HighPerformanceCrud => "High-performance CRUD",
            Pattern::DataWarehousing => "Data warehousing",
        }
    }

    /// Table 3: the benchmark standing in for this pattern.
    pub fn benchmark(self) -> &'static str {
        match self {
            Pattern::MultiTenant => "HammerDB TPC-C-based",
            Pattern::RealTimeAnalytics => "Custom microbenchmarks",
            Pattern::HighPerformanceCrud => "YCSB",
            Pattern::DataWarehousing => "Queries from TPC-H",
        }
    }
}

/// Table 1: scale requirements.
#[derive(Debug, Clone, Copy)]
pub struct ScaleRequirements {
    pub typical_latency_ms: f64,
    pub typical_throughput_per_sec: f64,
    pub typical_data_bytes: u64,
}

pub fn scale_requirements(p: Pattern) -> ScaleRequirements {
    const TB: u64 = 1 << 40;
    match p {
        Pattern::MultiTenant => ScaleRequirements {
            typical_latency_ms: 10.0,
            typical_throughput_per_sec: 10_000.0,
            typical_data_bytes: TB,
        },
        Pattern::RealTimeAnalytics => ScaleRequirements {
            typical_latency_ms: 100.0,
            typical_throughput_per_sec: 1_000.0,
            typical_data_bytes: 10 * TB,
        },
        Pattern::HighPerformanceCrud => ScaleRequirements {
            typical_latency_ms: 1.0,
            typical_throughput_per_sec: 100_000.0,
            typical_data_bytes: TB,
        },
        Pattern::DataWarehousing => ScaleRequirements {
            typical_latency_ms: 10_000.0,
            typical_throughput_per_sec: 10.0,
            typical_data_bytes: 10 * TB,
        },
    }
}

/// Table 2: required distributed-database capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    DistributedTables,
    CoLocatedDistributedTables,
    ReferenceTables,
    LocalTables,
    DistributedTransactions,
    DistributedSchemaChanges,
    QueryRouting,
    ParallelDistributedSelect,
    ParallelDistributedDml,
    CoLocatedDistributedJoins,
    NonCoLocatedDistributedJoins,
    ColumnarStorage,
    ParallelBulkLoading,
    ConnectionScaling,
}

impl Capability {
    pub const ALL: [Capability; 14] = [
        Capability::DistributedTables,
        Capability::CoLocatedDistributedTables,
        Capability::ReferenceTables,
        Capability::LocalTables,
        Capability::DistributedTransactions,
        Capability::DistributedSchemaChanges,
        Capability::QueryRouting,
        Capability::ParallelDistributedSelect,
        Capability::ParallelDistributedDml,
        Capability::CoLocatedDistributedJoins,
        Capability::NonCoLocatedDistributedJoins,
        Capability::ColumnarStorage,
        Capability::ParallelBulkLoading,
        Capability::ConnectionScaling,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Capability::DistributedTables => "Distributed tables",
            Capability::CoLocatedDistributedTables => "Co-located distributed tables",
            Capability::ReferenceTables => "Reference tables",
            Capability::LocalTables => "Local tables",
            Capability::DistributedTransactions => "Distributed transactions",
            Capability::DistributedSchemaChanges => "Distributed schema changes",
            Capability::QueryRouting => "Query routing",
            Capability::ParallelDistributedSelect => "Parallel, distributed SELECT",
            Capability::ParallelDistributedDml => "Parallel, distributed DML",
            Capability::CoLocatedDistributedJoins => "Co-located distributed joins",
            Capability::NonCoLocatedDistributedJoins => "Non-co-located distributed joins",
            Capability::ColumnarStorage => "Columnar storage",
            Capability::ParallelBulkLoading => "Parallel bulk loading",
            Capability::ConnectionScaling => "Connection scaling",
        }
    }
}

/// One cell of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Need {
    Yes,
    Some,
    No,
}

impl Need {
    pub fn cell(self) -> &'static str {
        match self {
            Need::Yes => "Yes",
            Need::Some => "Some",
            Need::No => "",
        }
    }
}

/// Table 2 contents.
pub fn requires(p: Pattern, c: Capability) -> Need {
    use Capability as C;
    use Need::*;
    use Pattern as P;
    match (p, c) {
        (_, C::DistributedTables)
        | (_, C::CoLocatedDistributedTables)
        | (_, C::ReferenceTables)
        | (_, C::DistributedTransactions)
        | (_, C::DistributedSchemaChanges) => Yes,
        (P::MultiTenant | P::RealTimeAnalytics, C::LocalTables) => Some,
        (_, C::LocalTables) => No,
        (P::MultiTenant | P::RealTimeAnalytics | P::HighPerformanceCrud, C::QueryRouting) => Yes,
        (_, C::QueryRouting) => No,
        (P::RealTimeAnalytics | P::DataWarehousing, C::ParallelDistributedSelect) => Yes,
        (_, C::ParallelDistributedSelect) => No,
        (P::RealTimeAnalytics, C::ParallelDistributedDml) => Yes,
        (_, C::ParallelDistributedDml) => No,
        (P::MultiTenant | P::RealTimeAnalytics | P::DataWarehousing, C::CoLocatedDistributedJoins) => Yes,
        (_, C::CoLocatedDistributedJoins) => No,
        (P::DataWarehousing, C::NonCoLocatedDistributedJoins) => Yes,
        (_, C::NonCoLocatedDistributedJoins) => No,
        (P::RealTimeAnalytics, C::ColumnarStorage) => Some,
        (P::DataWarehousing, C::ColumnarStorage) => Yes,
        (_, C::ColumnarStorage) => No,
        (P::RealTimeAnalytics | P::DataWarehousing, C::ParallelBulkLoading) => Yes,
        (_, C::ParallelBulkLoading) => No,
        (P::HighPerformanceCrud, C::ConnectionScaling) => Yes,
        (_, C::ConnectionScaling) => No,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let mt = scale_requirements(Pattern::MultiTenant);
        assert_eq!(mt.typical_latency_ms, 10.0);
        assert_eq!(mt.typical_throughput_per_sec, 10_000.0);
        let hc = scale_requirements(Pattern::HighPerformanceCrud);
        assert_eq!(hc.typical_latency_ms, 1.0);
        assert_eq!(hc.typical_throughput_per_sec, 100_000.0);
    }

    #[test]
    fn table2_spot_checks() {
        use Capability as C;
        use Pattern as P;
        assert_eq!(requires(P::MultiTenant, C::QueryRouting), Need::Yes);
        assert_eq!(requires(P::DataWarehousing, C::QueryRouting), Need::No);
        assert_eq!(requires(P::DataWarehousing, C::NonCoLocatedDistributedJoins), Need::Yes);
        assert_eq!(requires(P::HighPerformanceCrud, C::ConnectionScaling), Need::Yes);
        assert_eq!(requires(P::RealTimeAnalytics, C::ColumnarStorage), Need::Some);
        assert_eq!(requires(P::MultiTenant, C::LocalTables), Need::Some);
        // every pattern needs the four table-level basics
        for p in Pattern::ALL {
            assert_eq!(requires(p, C::DistributedTables), Need::Yes);
            assert_eq!(requires(p, C::DistributedTransactions), Need::Yes);
        }
    }
}
