//! The §4.1.1 distributed-transaction microbenchmark: two pgbench-style
//! tables, distributed and co-located by key, and a two-update transaction
//! that either stays on one shard group (same key → 1PC delegation) or
//! spans two (different keys → 2PC when they land on different nodes).

use crate::runner::SqlRunner;
use pgmini::error::PgResult;
use pgmini::types::{Datum, Row};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[derive(Debug, Clone)]
pub struct PgbenchConfig {
    pub rows_per_table: u64,
    /// Use the same random key for both updates (the 1PC arm) or different
    /// keys (the 2PC arm).
    pub same_key: bool,
}

impl Default for PgbenchConfig {
    fn default() -> Self {
        PgbenchConfig { rows_per_table: 10_000, same_key: true }
    }
}

pub fn schema_statements() -> Vec<String> {
    vec![
        "CREATE TABLE a1 (key bigint PRIMARY KEY, v bigint)".into(),
        "CREATE TABLE a2 (key bigint PRIMARY KEY, v bigint)".into(),
    ]
}

pub fn distribution_statements() -> Vec<String> {
    vec![
        "SELECT create_distributed_table('a1', 'key')".into(),
        "SELECT create_distributed_table('a2', 'key', 'a1')".into(),
    ]
}

/// The paper's tables are 50 GB each (pgbench-generated).
pub const SIM_ROW_WIDTH: u32 = 5000;

pub fn load(r: &mut dyn SqlRunner, cfg: &PgbenchConfig) -> PgResult<()> {
    for table in ["a1", "a2"] {
        let mut batch: Vec<Row> = Vec::with_capacity(1000);
        for k in 0..cfg.rows_per_table as i64 {
            batch.push(vec![Datum::Int(k), Datum::Int(0)]);
            if batch.len() == 1000 {
                r.copy(table, &[], std::mem::take(&mut batch))?;
            }
        }
        if !batch.is_empty() {
            r.copy(table, &[], batch)?;
        }
    }
    Ok(())
}

/// One client of the two-update transaction.
pub struct PgbenchDriver {
    pub cfg: PgbenchConfig,
    rng: StdRng,
    pub txns: u64,
}

impl PgbenchDriver {
    pub fn new(cfg: PgbenchConfig, seed: u64) -> Self {
        PgbenchDriver { cfg, rng: StdRng::seed_from_u64(seed), txns: 0 }
    }

    /// Run one transaction; returns (key1, key2).
    pub fn run(&mut self, r: &mut dyn SqlRunner) -> PgResult<(i64, i64)> {
        let key1 = self.rng.random_range(0..self.cfg.rows_per_table as i64);
        let key2 = if self.cfg.same_key {
            key1
        } else {
            self.rng.random_range(0..self.cfg.rows_per_table as i64)
        };
        let delta = self.rng.random_range(1..100i64);
        r.run("BEGIN")?;
        let body: PgResult<()> = (|| {
            r.run(&format!("UPDATE a1 SET v = v + {delta} WHERE key = {key1}"))?;
            r.run(&format!("UPDATE a2 SET v = v - {delta} WHERE key = {key2}"))?;
            Ok(())
        })();
        match body {
            Ok(()) => {
                r.run("COMMIT")?;
                self.txns += 1;
                Ok((key1, key2))
            }
            Err(e) => {
                let _ = r.run("ROLLBACK");
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_mode_repeats_key() {
        let mut d = PgbenchDriver::new(PgbenchConfig { same_key: true, ..Default::default() }, 1);
        let key1 = d.rng.random_range(0..10_000i64);
        let _ = key1;
        // structural check: config controls the mode
        assert!(d.cfg.same_key);
        let mut d2 =
            PgbenchDriver::new(PgbenchConfig { same_key: false, ..Default::default() }, 1);
        assert!(!d2.cfg.same_key);
        let _ = &mut d2;
    }

    #[test]
    fn statements_parse() {
        for s in schema_statements().iter().chain(distribution_statements().iter()) {
            sqlparse::parse(s).unwrap();
        }
    }
}
