//! Workload drivers run against "a database connection" — either a plain
//! pgmini session (the PostgreSQL baseline) or a citrus client session (the
//! distributed cluster). This trait is the seam.

use pgmini::cost::SimCost;
use pgmini::error::PgResult;
use pgmini::session::QueryResult;
use pgmini::types::Row;

/// One database connection a workload can drive.
pub trait SqlRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult>;
    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64>;
    /// Simulated resource cost of the last statement, aggregated across the
    /// cluster: (cpu_ms per node id, io_ms per node id, elapsed_ms).
    fn last_cost(&mut self) -> RunCost;
}

/// Per-statement simulated cost in a node-indexed form the benchmark
/// harness feeds into the MVA solver.
#[derive(Debug, Clone, Default)]
pub struct RunCost {
    /// (node id, cpu_ms, io_ms) triples; node id 0 = coordinator/single node.
    pub per_node: Vec<(u32, f64, f64)>,
    pub net_ms: f64,
    pub elapsed_ms: f64,
}

impl RunCost {
    pub fn add(&mut self, other: &RunCost) {
        for &(n, cpu, io) in &other.per_node {
            match self.per_node.iter_mut().find(|(m, _, _)| *m == n) {
                Some(slot) => {
                    slot.1 += cpu;
                    slot.2 += io;
                }
                None => self.per_node.push((n, cpu, io)),
            }
        }
        self.net_ms += other.net_ms;
        self.elapsed_ms += other.elapsed_ms;
    }

    pub fn total_cpu(&self) -> f64 {
        self.per_node.iter().map(|(_, c, _)| c).sum()
    }

    pub fn total_io(&self) -> f64 {
        self.per_node.iter().map(|(_, _, i)| i).sum()
    }
}

/// Plain single-node PostgreSQL stand-in.
pub struct LocalRunner {
    pub session: pgmini::session::Session,
}

impl SqlRunner for LocalRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        self.session.execute(sql)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        self.session.copy_rows(table, columns, rows)
    }

    fn last_cost(&mut self) -> RunCost {
        let c: SimCost = self.session.last_cost();
        RunCost {
            per_node: vec![(0, c.cpu_ms, c.io_ms)],
            net_ms: c.net_ms,
            elapsed_ms: c.total_ms(),
        }
    }
}

/// Citrus cluster connection.
pub struct ClusterRunner {
    pub session: citrus::cluster::ClientSession,
}

impl SqlRunner for ClusterRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        self.session.execute(sql)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        self.session.copy(table, columns, rows)
    }

    fn last_cost(&mut self) -> RunCost {
        let d = self.session.last_dist_cost();
        let mut per_node: Vec<(u32, f64, f64)> = d
            .per_node
            .iter()
            .map(|(n, c)| (n.0, c.cpu_ms, c.io_ms))
            .collect();
        // coordinator work books to node 0
        if d.coordinator.cpu_ms > 0.0 || d.coordinator.io_ms > 0.0 {
            match per_node.iter_mut().find(|(n, _, _)| *n == 0) {
                Some(slot) => {
                    slot.1 += d.coordinator.cpu_ms;
                    slot.2 += d.coordinator.io_ms;
                }
                None => per_node.push((0, d.coordinator.cpu_ms, d.coordinator.io_ms)),
            }
        }
        per_node.sort_by_key(|(n, _, _)| *n);
        RunCost { per_node, net_ms: d.net_ms, elapsed_ms: d.elapsed_ms }
    }
}
