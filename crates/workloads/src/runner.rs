//! Workload drivers run against "a database connection" — either a plain
//! pgmini session (the PostgreSQL baseline) or a citrus client session (the
//! distributed cluster). This trait is the seam.

use pgmini::cost::SimCost;
use pgmini::error::PgResult;
use pgmini::session::QueryResult;
use pgmini::types::Row;

/// One database connection a workload can drive.
pub trait SqlRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult>;
    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64>;
    /// Simulated resource cost of the last statement, aggregated across the
    /// cluster: (cpu_ms per node id, io_ms per node id, elapsed_ms).
    fn last_cost(&mut self) -> RunCost;
    /// `(routed, escalated)` statement counts for MX-routed connections;
    /// `(0, 0)` for everything else. Lets the simulation report MX coverage
    /// through the `SqlRunner` seam without downcasting.
    fn route_stats(&self) -> (u64, u64) {
        (0, 0)
    }
    /// Backend session id of the underlying database session, when there is
    /// exactly one (tests use it to look up per-session executor state).
    fn session_id(&mut self) -> Option<u64> {
        None
    }
}

/// Per-statement simulated cost in a node-indexed form the benchmark
/// harness feeds into the MVA solver.
#[derive(Debug, Clone, Default)]
pub struct RunCost {
    /// (node id, cpu_ms, io_ms) triples; node id 0 = coordinator/single node.
    pub per_node: Vec<(u32, f64, f64)>,
    pub net_ms: f64,
    pub elapsed_ms: f64,
}

impl RunCost {
    pub fn add(&mut self, other: &RunCost) {
        for &(n, cpu, io) in &other.per_node {
            match self.per_node.iter_mut().find(|(m, _, _)| *m == n) {
                Some(slot) => {
                    slot.1 += cpu;
                    slot.2 += io;
                }
                None => self.per_node.push((n, cpu, io)),
            }
        }
        self.net_ms += other.net_ms;
        self.elapsed_ms += other.elapsed_ms;
    }

    pub fn total_cpu(&self) -> f64 {
        self.per_node.iter().map(|(_, c, _)| c).sum()
    }

    pub fn total_io(&self) -> f64 {
        self.per_node.iter().map(|(_, _, i)| i).sum()
    }
}

/// Plain single-node PostgreSQL stand-in.
pub struct LocalRunner {
    pub session: pgmini::session::Session,
}

impl SqlRunner for LocalRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        self.session.execute(sql)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        self.session.copy_rows(table, columns, rows)
    }

    fn last_cost(&mut self) -> RunCost {
        let c: SimCost = self.session.last_cost();
        RunCost {
            per_node: vec![(0, c.cpu_ms, c.io_ms)],
            net_ms: c.net_ms,
            elapsed_ms: c.total_ms(),
        }
    }
}

/// Citrus cluster connection.
pub struct ClusterRunner {
    pub session: citrus::cluster::ClientSession,
}

impl SqlRunner for ClusterRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        self.session.execute(sql)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        self.session.copy(table, columns, rows)
    }

    fn last_cost(&mut self) -> RunCost {
        let origin = self.session.node().0;
        book_dist_cost(&self.session.last_dist_cost(), origin)
    }

    fn session_id(&mut self) -> Option<u64> {
        Some(self.session.session_mut().id())
    }
}

/// Fold a cluster [`citrus::cost::DistCost`] into the node-indexed form.
/// Coordinator-side work (planning, merge) books to `origin` — the node
/// hosting the session — not a hard-coded node 0: an MX worker session plans
/// and merges on its own worker, and booking that to the coordinator made
/// the per-node sums disagree with the cluster's DistCost.
fn book_dist_cost(d: &citrus::cost::DistCost, origin: u32) -> RunCost {
    let mut per_node: Vec<(u32, f64, f64)> =
        d.per_node.iter().map(|(n, c)| (n.0, c.cpu_ms, c.io_ms)).collect();
    if d.coordinator.cpu_ms > 0.0 || d.coordinator.io_ms > 0.0 {
        match per_node.iter_mut().find(|(n, _, _)| *n == origin) {
            Some(slot) => {
                slot.1 += d.coordinator.cpu_ms;
                slot.2 += d.coordinator.io_ms;
            }
            None => per_node.push((origin, d.coordinator.cpu_ms, d.coordinator.io_ms)),
        }
    }
    per_node.sort_by_key(|(n, _, _)| *n);
    RunCost { per_node, net_ms: d.net_ms, elapsed_ms: d.elapsed_ms }
}

/// MX-routed cluster connection (§2.3 coordinator bypass): every transaction
/// is pinned to the worker holding its first routed statement's placement,
/// so single-tenant transactions plan, execute, and commit entirely on that
/// worker — the coordinator only sees cross-shard shapes.
pub struct MxRunner {
    pub session: citrus::cluster::MxSession,
}

impl SqlRunner for MxRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        self.session.execute(sql)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        self.session.copy(table, columns, rows)
    }

    fn last_cost(&mut self) -> RunCost {
        let origin = self.session.last_node().0;
        book_dist_cost(&self.session.last_dist_cost(), origin)
    }

    fn route_stats(&self) -> (u64, u64) {
        (self.session.routed, self.session.escalated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citrus::cluster::{Cluster, ClusterConfig};
    use citrus::metadata::NodeId;
    use std::sync::Arc;

    fn cluster() -> Arc<Cluster> {
        let c = Cluster::new(ClusterConfig::default());
        c.add_worker().unwrap();
        c.add_worker().unwrap();
        let mut s = c.session().unwrap();
        s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)").unwrap();
        s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
        for k in 0..8i64 {
            s.execute(&format!("INSERT INTO t VALUES ({k}, {k})")).unwrap();
        }
        c
    }

    #[test]
    fn add_merges_per_node_entries() {
        let mut a = RunCost {
            per_node: vec![(0, 1.0, 2.0), (1, 3.0, 4.0)],
            net_ms: 0.5,
            elapsed_ms: 10.0,
        };
        let b = RunCost {
            per_node: vec![(1, 1.0, 1.0), (2, 5.0, 6.0)],
            net_ms: 0.5,
            elapsed_ms: 5.0,
        };
        a.add(&b);
        assert_eq!(a.per_node, vec![(0, 1.0, 2.0), (1, 4.0, 5.0), (2, 5.0, 6.0)]);
        assert_eq!(a.net_ms, 1.0);
        assert_eq!(a.elapsed_ms, 15.0);
    }

    #[test]
    fn coordinator_session_books_origin_work_to_node_0() {
        let c = cluster();
        let mut r = ClusterRunner { session: c.session().unwrap() };
        r.run("SELECT count(*) FROM t").unwrap();
        let cost = r.last_cost();
        assert!(
            cost.per_node.iter().any(|&(n, cpu, _)| n == 0 && cpu > 0.0),
            "merge work on the coordinator must book to node 0: {:?}",
            cost.per_node
        );
    }

    #[test]
    fn mx_worker_session_books_origin_work_to_that_worker() {
        let c = cluster();
        c.enable_mx();
        let mut r = ClusterRunner { session: c.session_on(NodeId(1)).unwrap() };
        r.run("SELECT count(*) FROM t").unwrap();
        let cost = r.last_cost();
        // planning + merge ran on worker 1, not the coordinator
        let node0_cpu: f64 =
            cost.per_node.iter().filter(|(n, _, _)| *n == 0).map(|(_, c, _)| c).sum();
        let node1_cpu: f64 =
            cost.per_node.iter().filter(|(n, _, _)| *n == 1).map(|(_, c, _)| c).sum();
        assert!(
            node1_cpu > 0.0,
            "origin-side work must book to the MX worker: {:?}",
            cost.per_node
        );
        assert_eq!(
            node0_cpu, 0.0,
            "an MX worker session never touches the coordinator: {:?}",
            cost.per_node
        );
    }

    #[test]
    fn mx_runner_pins_single_tenant_transactions_off_the_coordinator() {
        let c = cluster();
        let mut r = MxRunner { session: c.mx_session() };
        let mut total = RunCost::default();
        r.run("BEGIN").unwrap();
        for sql in [
            "SELECT v FROM t WHERE k = 1",
            "UPDATE t SET v = v + 1 WHERE k = 1",
            "COMMIT",
        ] {
            r.run(sql).unwrap();
            total.add(&r.last_cost());
        }
        assert!(r.session.routed >= 2, "statements routed to the owning worker");
        assert_eq!(r.session.escalated, 0, "no statement escalated to the coordinator");
        let node0_cpu: f64 =
            total.per_node.iter().filter(|(n, _, _)| *n == 0).map(|(_, c, _)| c).sum();
        assert_eq!(
            node0_cpu, 0.0,
            "a pinned single-tenant transaction never touches the coordinator: {:?}",
            total.per_node
        );
        assert!(total.total_cpu() > 0.0, "the worker did real work");
        let v = r.run("SELECT v FROM t WHERE k = 1").unwrap();
        assert_eq!(v.rows()[0][0], pgmini::types::Datum::Int(2));
    }

    #[test]
    fn mx_runner_escalates_cross_shard_statements() {
        let c = cluster();
        let mut r = MxRunner { session: c.mx_session() };
        r.run("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.session.escalated, 1, "multi-shard scans run on the coordinator");
    }
}
