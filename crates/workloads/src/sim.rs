//! `citrus-sim` — deterministic whole-cluster simulation harness.
//!
//! From a single seed the harness derives (a) a workload mix drawn from the
//! four §4 patterns, driven through the [`SqlRunner`] seam, and (b) an
//! interleaved schedule of cluster lifecycle events: shard-group moves, node
//! crash + standby promotion, distributed DDL, maintenance-daemon passes,
//! and a seeded [`FaultPlan`]. Every committed read is differentially
//! checked against a single-node pgmini oracle that receives the identical
//! statement stream, and standing invariants are asserted after every
//! lifecycle event:
//!
//! * every non-reference shard has exactly one live placement;
//! * no node holds an orphan physical shard table;
//! * the move journal has no pending records;
//! * no prepared transaction is stuck on any node.
//!
//! On failure the schedule is shrunk (greedy ddmin over the event list) to a
//! minimal reproducer and the replay seed is printed, so any red run becomes
//! a one-line deterministic repro. Run without faults, the same harness is
//! the §4 evaluation: [`bench_pattern`] reports distributed vs single-node
//! virtual throughput and latency percentiles per pattern.

use crate::gharchive;
use crate::patterns::Pattern;
use crate::runner::{ClusterRunner, LocalRunner, MxRunner, RunCost, SqlRunner};
use crate::tpcc::{self, TpccConfig, TpccDriver};
use crate::tpch;
use crate::ycsb::{self, YcsbConfig, YcsbDriver};
use citrus::cluster::{Cluster, ClusterConfig};
use citrus::metadata::{NodeId, FIRST_SHARD_ID};
use citrus::rebalancer::{self, MOVE_PHASE_TAGS};
use citrus::{deadlock, ha, recovery};
use netsim::fault::{FaultKind, FaultOp, FaultPlan, FaultRule};
use pgmini::engine::Engine;
use pgmini::error::{ErrorCode, PgError, PgResult};
use pgmini::session::QueryResult;
use pgmini::types::{Datum, Row};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

// ---------------- configuration ----------------

/// One simulated run: a seed plus the knobs that shape it. Everything a run
/// does is a pure function of this struct, which is the replay contract.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    /// Schedule length before the guaranteed-coverage fixups.
    pub events: usize,
    pub workers: u32,
    pub shard_count: u32,
    pub executor_threads: usize,
    /// Install the chaos fault plan (read errors absorbed by executor
    /// retries, latency everywhere, a scripted one-shot read error, and a
    /// probabilistic move-phase error). Off = clean evaluation mode.
    pub faults: bool,
    pub tracing: bool,
    /// Drive the distributed side through an MX-routed session
    /// ([`crate::runner::MxRunner`]): tenant transactions pin to the worker
    /// owning their placement and bypass the coordinator. Seed-derived by
    /// default so the corpus covers both the bypass and the classic
    /// coordinator path — still a pure function of the seed, so the
    /// replay-by-seed contract is unchanged.
    pub mx_routing: bool,
    /// Run the cluster with distributed snapshot isolation
    /// (`ClusterConfig::snapshot_isolation`): every distributed read
    /// evaluates under a coordinator-issued commit-clock token, checked
    /// against the MirrorRunner oracle like any other read. Seed-derived
    /// (even seeds) so the corpus drives both modes; the read-skew invariant
    /// in [`check_read_skew`] knows which guarantee to hold the run to.
    pub snapshot_isolation: bool,
    /// Grow the schedule with [`SimEvent::MxInterleave`] events: open MX
    /// transactions that a propagated DDL, a frozen-mid-fan-out DDL
    /// ([`citrus::interleave::freeze_ddl`]), or a shard move interleaves
    /// into at a statement boundary — the generation-fence drill. Off by
    /// default so the existing seed corpus (schedules, fingerprints) is
    /// byte-identical with the flag absent.
    pub mx_ddl_interleave: bool,
    /// Maintain an incrementally updated rollup over the RTA transformation
    /// output (`push_commits`): created chaos-free at setup when the seed's
    /// mix includes [`Pattern::RealTimeAnalytics`], drained by every
    /// `Maintenance` event, and held byte-equal to a from-scratch recompute
    /// by [`check_invariants`] after every event. Seed-derived (odd seeds) —
    /// the flag adds no schedule events and no rng draws, so derived
    /// schedules are byte-identical either way.
    pub rollups: bool,
}

impl SimConfig {
    pub fn new(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            events: 30,
            workers: 2,
            shard_count: 8,
            executor_threads: 2,
            faults: true,
            tracing: false,
            mx_routing: seed % 2 == 0,
            snapshot_isolation: seed % 2 == 0,
            mx_ddl_interleave: false,
            rollups: seed % 2 == 1,
        }
    }
}

/// Workload scale used inside simulation runs (kept tiny: the corpus runs
/// dozens of seeds in debug builds inside the CI gate).
#[derive(Debug, Clone)]
pub struct SimScales {
    pub tpcc: TpccConfig,
    pub ycsb: YcsbConfig,
    /// Initial GHArchive events loaded for day 1.
    pub gh_events: usize,
    /// Events per chaos ingest batch.
    pub gh_batch: usize,
    pub tpch_sf: f64,
}

impl Default for SimScales {
    fn default() -> Self {
        SimScales {
            tpcc: TpccConfig {
                warehouses: 4,
                items: 20,
                districts_per_warehouse: 2,
                customers_per_district: 4,
                ..TpccConfig::default()
            },
            ycsb: YcsbConfig { record_count: 80, ..YcsbConfig::default() },
            gh_events: 120,
            gh_batch: 25,
            tpch_sf: 0.001,
        }
    }
}

// ---------------- schedule grammar ----------------

/// One step of a simulated schedule. `Txn` advances the seed's workload mix
/// by one unit; the rest are cluster lifecycle events. `Corrupt` never
/// appears in derived schedules — the mutation tests splice it in to prove
/// the invariant checker and shrinker catch planted metadata bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    Txn { pattern: Pattern },
    /// Move the shard group holding bucket `bucket_sel % shard_count` of the
    /// primary pattern's anchor table to another worker.
    Move { bucket_sel: u32 },
    /// Crash worker `worker_sel % workers` and promote its WAL standby.
    Failover { worker_sel: u32 },
    /// Distributed CREATE INDEX (propagates to shards, bumps the metadata
    /// generation, invalidates the plan cache). `n` keeps names unique.
    Ddl { n: u32 },
    /// One maintenance-daemon pass: deadlock detection, 2PC recovery, move
    /// recovery.
    Maintenance,
    /// Generation-fence drill (only generated when
    /// [`SimConfig::mx_ddl_interleave`] is on): open an MX transaction, land
    /// a write, then interleave a metadata change of the selected flavor
    /// into it from the coordinator before the transaction's next statement.
    /// `sel` keeps index names unique and picks move buckets, like
    /// `Ddl::n`.
    MxInterleave { kind: MxInterleaveKind, sel: u32 },
    /// Deliberately plant a metadata bug (mutation testing only).
    Corrupt { kind: CorruptKind },
}

/// Which metadata change an [`SimEvent::MxInterleave`] drives into the open
/// MX transaction — each flavor lands in a different arm of the escalation
/// contract (DESIGN.md §9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MxInterleaveKind {
    /// Propagated CREATE INDEX on the table the transaction planned
    /// against: conflicting bump, the transaction must fence with a
    /// retryable 40001 and succeed on retry.
    ConflictDdl,
    /// Propagated CREATE INDEX on an unrelated table: non-conflicting bump,
    /// the transaction escalates to the coordinator path and commits.
    EscalateDdl,
    /// Shard move of a drill bucket: the pre-fence (same placement) or the
    /// metadata switch (any placement) fences the transaction; the retry
    /// re-resolves its route against the moved placement.
    Move,
    /// DDL frozen mid-fan-out by [`citrus::interleave::freeze_ddl`]: the
    /// generation bump precedes the stuck fan-out, so the transaction
    /// fences *inside* the propagation window.
    FrozenDdl,
}

/// The planted metadata bugs the mutation tests use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Append a second placement to a distributed shard.
    DuplicatePlacement,
    /// Create a stray physical shard table on a worker.
    OrphanShardTable,
}

/// Patterns whose schemas share table names cannot share one database.
fn patterns_conflict(a: Pattern, b: Pattern) -> bool {
    // TPC-C and TPC-H both define `orders` and `customer`
    matches!(
        (a, b),
        (Pattern::MultiTenant, Pattern::DataWarehousing)
            | (Pattern::DataWarehousing, Pattern::MultiTenant)
    )
}

/// The patterns a seed's workload mix draws from: a primary rotating over
/// all four, plus (for half the seeds) a compatible secondary.
pub fn enabled_patterns(cfg: &SimConfig) -> Vec<Pattern> {
    let primary = Pattern::ALL[(cfg.seed % 4) as usize];
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xE1AB_1ED5_EED5);
    let mut out = vec![primary];
    if rng.random_bool(0.5) {
        let candidates: Vec<Pattern> = Pattern::ALL
            .iter()
            .copied()
            .filter(|p| *p != primary && !patterns_conflict(primary, *p))
            .collect();
        out.push(candidates[rng.random_range(0..candidates.len())]);
    }
    out
}

/// The distributed table whose shard groups the schedule moves around —
/// always from the primary pattern, so it exists in every run of the seed.
fn anchor_table(primary: Pattern) -> &'static str {
    match primary {
        Pattern::MultiTenant => "warehouse",
        Pattern::RealTimeAnalytics => "github_events",
        Pattern::HighPerformanceCrud => "usertable",
        Pattern::DataWarehousing => "orders",
    }
}

/// `(table, column)` each pattern's DDL events index.
fn ddl_target(primary: Pattern) -> (&'static str, &'static str) {
    match primary {
        Pattern::MultiTenant => ("orders", "o_c_id"),
        Pattern::RealTimeAnalytics => ("github_events", "event_id"),
        Pattern::HighPerformanceCrud => ("usertable", "field0"),
        Pattern::DataWarehousing => ("lineitem", "l_suppkey"),
    }
}

/// Derive the seed's schedule. Guaranteed coverage regardless of the dice:
/// at least one workload transaction, two shard moves, and one failover;
/// the run itself guarantees at least one faulted statement via a scripted
/// fault rule. A trailing maintenance pass settles the cluster.
pub fn derive_schedule(cfg: &SimConfig) -> Vec<SimEvent> {
    let patterns = enabled_patterns(cfg);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_5C4E_D01E);
    let mut events: Vec<SimEvent> = Vec::with_capacity(cfg.events + 4);
    for _ in 0..cfg.events {
        events.push(match rng.random_range(0..100u32) {
            0..68 => SimEvent::Txn { pattern: patterns[rng.random_range(0..patterns.len())] },
            68..78 => SimEvent::Move { bucket_sel: rng.random_range(0..cfg.shard_count) },
            78..84 => SimEvent::Failover { worker_sel: rng.random_range(0..cfg.workers) },
            84..92 => SimEvent::Ddl { n: 0 },
            _ => SimEvent::Maintenance,
        });
    }
    let count = |evs: &[SimEvent], f: fn(&SimEvent) -> bool| evs.iter().filter(|e| f(e)).count();
    if count(&events, |e| matches!(e, SimEvent::Txn { .. })) == 0 {
        events.insert(0, SimEvent::Txn { pattern: patterns[0] });
    }
    while count(&events, |e| matches!(e, SimEvent::Move { .. })) < 2 {
        let at = rng.random_range(0..=events.len());
        events.insert(at, SimEvent::Move { bucket_sel: rng.random_range(0..cfg.shard_count) });
    }
    if count(&events, |e| matches!(e, SimEvent::Failover { .. })) == 0 {
        let at = rng.random_range(0..=events.len());
        events.insert(at, SimEvent::Failover { worker_sel: rng.random_range(0..cfg.workers) });
    }
    if cfg.mx_ddl_interleave {
        // one drill of every flavor, spliced at seed-chosen points; extra
        // rng draws happen only with the flag on, so flag-off schedules are
        // byte-identical to the historical corpus
        use MxInterleaveKind::*;
        for kind in [ConflictDdl, EscalateDdl, Move, FrozenDdl] {
            let at = rng.random_range(0..=events.len());
            events.insert(at, SimEvent::MxInterleave { kind, sel: 0 });
        }
    }
    events.push(SimEvent::Maintenance);
    // unique DDL index names, stable under shrinking
    for (i, e) in events.iter_mut().enumerate() {
        match e {
            SimEvent::Ddl { n } => *n = i as u32,
            SimEvent::MxInterleave { sel, .. } => *sel = i as u32,
            _ => {}
        }
    }
    events
}

// ---------------- differential mirror ----------------

/// Rounded normalization so `Int(5)`, `Float(5.0)`, and float aggregates
/// computed shard-local-then-merged vs single-node compare equal (same
/// 4-decimal contract as the workloads differential tests).
fn datum_key(d: &Datum) -> String {
    if let Ok(i) = d.as_i64() {
        return i.to_string();
    }
    if let Ok(f) = d.as_f64() {
        if f.fract() == 0.0 && f.abs() < 1e15 {
            return (f as i64).to_string();
        }
        return format!("{f:.4}");
    }
    format!("{d:?}")
}

fn row_keys(r: &QueryResult, ordered: bool) -> Vec<String> {
    let mut keys: Vec<String> = r
        .rows()
        .iter()
        .map(|row| row.iter().map(datum_key).collect::<Vec<_>>().join(","))
        .collect();
    if !ordered {
        keys.sort();
    }
    keys
}

/// A [`SqlRunner`] that executes every statement on the distributed cluster
/// AND on the single-node oracle, comparing read result multisets and write
/// affected-counts. Statement errors on the distributed side (chaos) are
/// propagated *without* running the oracle, so the workload driver's
/// ROLLBACK keeps both sides transactionally aligned. Reads outside a
/// transaction whose executor retries were exhausted are re-submitted a
/// bounded number of times, like a real client.
pub struct MirrorRunner {
    /// The distributed side under test: a coordinator [`ClusterRunner`] or an
    /// MX-routed [`crate::runner::MxRunner`] — the oracle checks are
    /// identical either way.
    pub dist: Box<dyn SqlRunner + Send>,
    pub oracle: LocalRunner,
    /// First divergence observed, if any. Once set, the mirror refuses
    /// further statements.
    pub divergence: Option<String>,
    pub reads_checked: u64,
    pub writes_checked: u64,
    pub resubmitted_reads: u64,
    in_txn: bool,
}

enum StmtClass {
    DistOnly,
    TxnControl,
    Ddl,
    Write,
    Read { ordered: bool },
}

fn classify(sql: &str) -> StmtClass {
    let s = sql.trim_start();
    let upper = s.get(..12).unwrap_or(s).to_ascii_uppercase();
    if s.starts_with("SELECT create_distributed_table")
        || s.starts_with("SELECT create_reference_table")
    {
        return StmtClass::DistOnly;
    }
    if upper.starts_with("BEGIN") || upper.starts_with("COMMIT") || upper.starts_with("ROLLBACK") {
        return StmtClass::TxnControl;
    }
    if upper.starts_with("CREATE") || upper.starts_with("DROP") || upper.starts_with("ALTER") {
        return StmtClass::Ddl;
    }
    if upper.starts_with("INSERT") || upper.starts_with("UPDATE") || upper.starts_with("DELETE") {
        return StmtClass::Write;
    }
    StmtClass::Read { ordered: sql.to_ascii_uppercase().contains("ORDER BY") }
}

impl MirrorRunner {
    pub fn new(dist: impl SqlRunner + Send + 'static, oracle: LocalRunner) -> MirrorRunner {
        MirrorRunner {
            dist: Box::new(dist),
            oracle,
            divergence: None,
            reads_checked: 0,
            writes_checked: 0,
            resubmitted_reads: 0,
            in_txn: false,
        }
    }

    fn diverged(&mut self, detail: String) -> PgError {
        let msg = format!("sim divergence: {detail}");
        self.divergence = Some(detail);
        PgError::internal(&msg)
    }

    /// Distributed-side execution; bounded client re-submission for reads
    /// outside a transaction whose executor retries were exhausted.
    fn dist_run(&mut self, sql: &str, read: bool) -> PgResult<QueryResult> {
        let mut last: Option<PgError> = None;
        let attempts = if read && !self.in_txn { 12 } else { 1 };
        for attempt in 0..attempts {
            match self.dist.run(sql) {
                Ok(r) => {
                    if attempt > 0 {
                        self.resubmitted_reads += 1;
                    }
                    return Ok(r);
                }
                Err(e) if e.code == ErrorCode::ConnectionFailure && attempt + 1 < attempts => {
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| PgError::internal("dist_run: no attempts")))
    }
}

impl SqlRunner for MirrorRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        if let Some(d) = &self.divergence {
            return Err(PgError::internal(&format!("sim divergence (earlier): {d}")));
        }
        let class = classify(sql);
        if let StmtClass::DistOnly = class {
            return self.dist.run(sql);
        }
        let read = matches!(class, StmtClass::Read { .. });
        let dist = self.dist_run(sql, read)?;
        let oracle = match self.oracle.run(sql) {
            Ok(r) => r,
            Err(e) => {
                return Err(self.diverged(format!(
                    "oracle failed where distributed succeeded for `{sql}`: {e:?}"
                )))
            }
        };
        match class {
            StmtClass::TxnControl => {
                let s = sql.trim_start().to_ascii_uppercase();
                self.in_txn = s.starts_with("BEGIN");
            }
            StmtClass::Write => {
                self.writes_checked += 1;
                if dist.affected() != oracle.affected() {
                    return Err(self.diverged(format!(
                        "affected counts diverge for `{sql}`: dist={} oracle={}",
                        dist.affected(),
                        oracle.affected()
                    )));
                }
            }
            StmtClass::Read { ordered } => {
                self.reads_checked += 1;
                let (d, o) = (row_keys(&dist, ordered), row_keys(&oracle, ordered));
                if d != o {
                    return Err(self.diverged(format!(
                        "result sets diverge for `{sql}`: dist={d:?} oracle={o:?}"
                    )));
                }
            }
            StmtClass::Ddl | StmtClass::DistOnly => {}
        }
        Ok(dist)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        if let Some(d) = &self.divergence {
            return Err(PgError::internal(&format!("sim divergence (earlier): {d}")));
        }
        let n_dist = self.dist.copy(table, columns, rows.clone())?;
        let n_oracle = match self.oracle.copy(table, columns, rows) {
            Ok(n) => n,
            Err(e) => {
                return Err(self.diverged(format!(
                    "oracle COPY {table} failed where distributed succeeded: {e:?}"
                )))
            }
        };
        self.writes_checked += 1;
        if n_dist != n_oracle {
            return Err(self.diverged(format!(
                "COPY {table} row counts diverge: dist={n_dist} oracle={n_oracle}"
            )));
        }
        Ok(n_dist)
    }

    fn last_cost(&mut self) -> RunCost {
        self.dist.last_cost()
    }
}

// ---------------- workload units ----------------

/// Per-pattern driver state that survives across the schedule's Txn events.
struct WorkloadState {
    tpcc: Option<TpccDriver>,
    ycsb: Option<YcsbDriver>,
    gh: Option<gharchive::EventGenerator>,
    tpch_next: usize,
    /// Serve analytics dashboard reads from the incrementally maintained
    /// commit rollup instead of re-aggregating `push_commits`. Only the
    /// distributed bench arm sets this; the chaos sim and the single-node
    /// mirror keep the raw aggregate.
    gh_rollup: bool,
}

fn setup_pattern(
    r: &mut dyn SqlRunner,
    pattern: Pattern,
    scales: &SimScales,
    distributed: bool,
    seed: u64,
) -> PgResult<()> {
    match pattern {
        Pattern::MultiTenant => {
            for s in tpcc::schema_statements() {
                r.run(&s)?;
            }
            if distributed {
                for s in tpcc::distribution_statements() {
                    r.run(&s)?;
                }
            }
            tpcc::load(r, &scales.tpcc, seed)?;
        }
        Pattern::RealTimeAnalytics => {
            for s in gharchive::schema_statements() {
                r.run(&s)?;
            }
            if distributed {
                r.run(&gharchive::distribution_statement())?;
            }
            for s in gharchive::transformation_schema() {
                r.run(&s)?;
            }
            if distributed {
                r.run(&gharchive::transformation_distribution())?;
            }
            gharchive::load_day(r, 1, scales.gh_events, seed)?;
        }
        Pattern::HighPerformanceCrud => {
            r.run(&ycsb::schema_statement())?;
            if distributed {
                r.run(&ycsb::distribution_statement())?;
            }
            ycsb::load(r, &scales.ycsb, seed)?;
        }
        Pattern::DataWarehousing => {
            for s in tpch::schema_statements() {
                r.run(&s)?;
            }
            if distributed {
                for s in tpch::distribution_statements() {
                    r.run(&s)?;
                }
            }
            tpch::gen::load(r, scales.tpch_sf, seed)?;
        }
    }
    Ok(())
}

fn make_state(patterns: &[Pattern], scales: &SimScales, seed: u64) -> WorkloadState {
    let mut st =
        WorkloadState { tpcc: None, ycsb: None, gh: None, tpch_next: 0, gh_rollup: false };
    for p in patterns {
        match p {
            Pattern::MultiTenant => {
                st.tpcc = Some(TpccDriver::new(scales.tpcc.clone(), seed ^ 0x7139));
            }
            Pattern::HighPerformanceCrud => {
                st.ycsb = Some(YcsbDriver::new(scales.ycsb.clone(), seed ^ 0x9c5b));
            }
            Pattern::RealTimeAnalytics => {
                // day 2: the chaos ingest stream, distinct from the day-1 load
                st.gh = Some(gharchive::EventGenerator::new(2, seed ^ 0x11d7));
            }
            Pattern::DataWarehousing => {}
        }
    }
    st
}

/// Run one workload unit of `pattern` through the runner.
fn run_unit(
    r: &mut dyn SqlRunner,
    state: &mut WorkloadState,
    pattern: Pattern,
    scales: &SimScales,
    rng: &mut StdRng,
) -> PgResult<()> {
    match pattern {
        Pattern::MultiTenant => {
            let d = state.tpcc.as_mut().expect("tpcc driver");
            let kind = d.next_kind();
            d.run(r, kind)?;
        }
        Pattern::HighPerformanceCrud => {
            state.ycsb.as_mut().expect("ycsb driver").run(r)?;
        }
        Pattern::RealTimeAnalytics => match rng.random_range(0..4u32) {
            0 | 1 => {
                if state.gh_rollup {
                    r.run(&gharchive::rollup_dashboard_query())?;
                } else {
                    r.run(&gharchive::dashboard_query())?;
                }
            }
            2 => {
                let batch = state.gh.as_mut().expect("gh generator").batch(scales.gh_batch);
                r.copy("github_events", &[], batch)?;
            }
            _ => {
                r.run(&gharchive::transformation_query())?;
            }
        },
        Pattern::DataWarehousing => {
            let q = tpch::queries::SUPPORTED[state.tpch_next % tpch::queries::SUPPORTED.len()];
            state.tpch_next += 1;
            r.run(&tpch::queries::query(q).expect("supported query"))?;
        }
    }
    Ok(())
}

/// Differential checks of the final state, per pattern.
fn verification_queries(pattern: Pattern) -> Vec<String> {
    match pattern {
        Pattern::MultiTenant => vec![
            "SELECT count(*), sum(o_id), sum(o_ol_cnt) FROM orders".into(),
            "SELECT sum(d_next_o_id), sum(d_ytd) FROM district".into(),
            "SELECT count(*), sum(ol_quantity) FROM order_line".into(),
            "SELECT sum(s_quantity), sum(s_ytd) FROM stock".into(),
            "SELECT count(*), sum(h_amount) FROM history".into(),
            "SELECT sum(c_balance), sum(c_ytd_payment) FROM customer".into(),
            "SELECT count(*) FROM new_order".into(),
        ],
        Pattern::RealTimeAnalytics => vec![
            "SELECT count(*) FROM github_events".into(),
            gharchive::dashboard_query(),
            "SELECT count(*), sum(commit_count) FROM push_commits".into(),
        ],
        Pattern::HighPerformanceCrud => vec![
            "SELECT count(*) FROM usertable".into(),
            "SELECT * FROM usertable ORDER BY ycsb_key".into(),
        ],
        Pattern::DataWarehousing => vec![
            "SELECT count(*), sum(l_quantity) FROM lineitem".into(),
            "SELECT count(*), sum(o_totalprice) FROM orders".into(),
        ],
    }
}

// ---------------- invariants ----------------

/// The standing cluster invariants, as a `Result` so the harness can shrink
/// on violation: one live placement per distributed shard (reference shards
/// place everywhere by design), physical shard tables exactly where the
/// metadata says and nowhere else, an empty move journal, and no prepared
/// transaction parked on any node.
pub fn check_invariants(c: &Arc<Cluster>) -> Result<(), String> {
    let meta = c.metadata.read();
    let mut expected: std::collections::HashSet<(NodeId, String)> = Default::default();
    // Metadata keeps tables in a HashMap; sort so the first violation we
    // report is the same one on every replay.
    let mut tables: Vec<_> = meta.tables().collect();
    tables.sort_by(|a, b| a.name.cmp(&b.name));
    for t in tables {
        for sid in &t.shards {
            let shard = meta.shard(*sid).map_err(|e| format!("shard {sid:?} missing: {e:?}"))?;
            if t.is_reference() {
                for node in &shard.placements {
                    expected.insert((*node, shard.physical_name()));
                }
                continue;
            }
            if shard.placements.len() != 1 {
                return Err(format!(
                    "shard {sid:?} of {} has {} placements (want exactly 1)",
                    t.name,
                    shard.placements.len()
                ));
            }
            let node = shard.placements[0];
            let live = c.node(node).map(|n| n.is_active()).unwrap_or(false);
            if !live {
                return Err(format!("placement node {} of shard {sid:?} is down", node.0));
            }
            expected.insert((node, shard.physical_name()));
        }
    }
    drop(meta);
    for node in c.nodes() {
        if !node.is_active() {
            continue;
        }
        for name in node.engine().catalog.read().table_names() {
            let Some((_, id)) = name.rsplit_once('_') else { continue };
            let Ok(id) = id.parse::<u64>() else { continue };
            if id < FIRST_SHARD_ID {
                continue;
            }
            if !expected.contains(&(node.id, name.clone())) {
                return Err(format!("orphan physical table {name} on node {}", node.name));
            }
        }
    }
    // HashSet iteration order is not stable; sort so that which violation
    // gets reported first is replay-deterministic.
    let mut expected_sorted: Vec<&(NodeId, String)> = expected.iter().collect();
    expected_sorted.sort_by_key(|(n, p)| (n.0, p.clone()));
    for (node, physical) in expected_sorted {
        let present = c
            .node(*node)
            .map(|n| n.engine().table_meta(physical).is_ok())
            .unwrap_or(false);
        if !present {
            return Err(format!("placement {physical} missing on node {}", node.0));
        }
    }
    let pending =
        rebalancer::pending_moves(c).map_err(|e| format!("move journal unreadable: {e:?}"))?;
    if !pending.is_empty() {
        return Err(format!("move journal still has pending records: {pending:?}"));
    }
    // Decided-but-unapplied halves are a *read-skew window*, a more specific
    // violation than "stuck prepared"; check it first so the sharper error
    // wins when a frozen commit trips both.
    check_read_skew(c)?;
    for node in c.nodes() {
        if !node.is_active() {
            continue;
        }
        let gids = node.engine().txns.prepared_gids();
        if !gids.is_empty() {
            return Err(format!("stuck prepared transactions on {}: {gids:?}", node.name));
        }
    }
    // every registered rollup must equal a from-scratch recompute of its
    // defining query (the check drains the changefeed first; no-op when no
    // rollups exist). A refresh or recompute aborted by an injected
    // connection failure is chaos, not divergence — the next check retries.
    for name in c.rollups.names() {
        match citrus::rollup::verify(c, &name) {
            Ok(()) => {}
            Err(e) if e.code == ErrorCode::ConnectionFailure => {}
            Err(e) => return Err(format!("rollup {name} diverged from recompute: {e:?}")),
        }
    }
    Ok(())
}

/// The cross-node read-skew invariant (§3.7.4). A prepared transaction whose
/// durable commit record exists is *decided*: its other halves are (or will
/// be) visible on their nodes while this node still hides it — exactly the
/// window a concurrent multi-node read can observe half-applied.
///
/// * `snapshot_isolation` off: any such half IS an open anomaly window —
///   report it as read skew. (The paper accepts this; the sim only drives
///   this check on mode-on seeds, and the anomaly tests assert the `Err`.)
/// * `snapshot_isolation` on: the window is harmless **iff** the decided
///   commit timestamp was published to the commit clock before any
///   `COMMIT PREPARED` went out, because token readers then see the frozen
///   half through the registry. A decided gid missing from the registry
///   would silently re-open the anomaly, so that is the violation.
pub fn check_read_skew(c: &Arc<Cluster>) -> Result<(), String> {
    for node in c.nodes() {
        if !node.is_active() {
            continue;
        }
        for gid in node.engine().txns.prepared_gids() {
            let Some(origin) = citrus::extension::parse_gid_origin(&gid) else { continue };
            let decided = recovery::commit_record_exists(c, NodeId(origin), &gid)
                .map_err(|e| format!("commit records unreadable for {gid}: {e:?}"))?;
            if !decided {
                continue; // undecided: invisible everywhere, no skew possible
            }
            if !c.config.snapshot_isolation {
                return Err(format!(
                    "cross-node read skew window: {gid} decided-committed but still \
                     prepared on {}",
                    node.name
                ));
            }
            if c.commit_clock.decided(&gid).is_none() {
                return Err(format!(
                    "snapshot isolation hole: {gid} decided-committed on {} but its \
                     commit timestamp was never published to the commit clock",
                    node.name
                ));
            }
        }
    }
    Ok(())
}

// ---------------- schedule execution ----------------

/// What one run saw; the corpus tests assert the coverage quotas.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub txns_attempted: u64,
    /// Workload units aborted by injected chaos (connection failures).
    pub txns_failed: u64,
    pub reads_checked: u64,
    pub writes_checked: u64,
    pub moves_attempted: u64,
    pub moves_completed: u64,
    pub failovers: u64,
    /// Total fault-plan firings (errors + latency).
    pub faults_fired: u64,
    /// Error/crash firings against statements or move phases.
    pub fault_errors: u64,
    /// FNV fingerprint over the statement-trace ring (0 when tracing off).
    pub trace_fingerprint: u64,
    /// Statements the MX session routed straight to a worker (0 when
    /// `mx_routing` is off).
    pub mx_routed: u64,
    /// Statements the MX session escalated to the coordinator.
    pub mx_escalated: u64,
    /// `Metrics::mx_generation_aborts` at the end of the run — nonzero only
    /// when the schedule carried drill events (`mx_ddl_interleave`).
    pub mx_generation_aborts: u64,
    /// `Metrics::mx_midtxn_escalations` at the end of the run — ditto.
    pub mx_midtxn_escalations: u64,
    /// Drill transactions that committed (first attempt or 40001 retry).
    pub drill_commits: u64,
    /// `Metrics::rollup_refreshes` at the end of the run — nonzero only when
    /// the seed maintained a rollup (`rollups` + an RTA mix).
    pub rollup_refreshes: u64,
}

/// A failed run: the index of the offending event plus what went wrong.
#[derive(Debug, Clone)]
pub struct SimFailure {
    pub event_index: usize,
    pub detail: String,
}

fn chaos_plan(cfg: &SimConfig) -> FaultPlan {
    FaultPlan::new()
        // reads randomly error; the adaptive executor's retry/failover
        // absorbs almost all of them, the rest abort their transaction
        .with(
            FaultRule::new(FaultOp::Statement, FaultKind::Error)
                .with_tag("select")
                .always()
                .with_probability(0.10)
                .labeled("chaos.read_error"),
        )
        // every statement can pick up virtual latency
        .with(
            FaultRule::new(FaultOp::Statement, FaultKind::Latency(1.5))
                .always()
                .with_probability(0.20)
                .labeled("chaos.latency"),
        )
        // scripted one-shot: guarantees every seed sees >= 1 faulted
        // statement even if the probabilistic rules stay quiet. Pinned to a
        // seed-chosen anchor shard so the single firing is arrival-order
        // free — an unscoped one-shot would hit whichever parallel task
        // consults the injector first, breaking 1-vs-8-thread identity.
        .with(
            FaultRule::new(FaultOp::Statement, FaultKind::Error)
                .with_tag("select")
                .scoped_to(&format!(
                    "s{}",
                    citrus::metadata::FIRST_SHARD_ID + cfg.seed % cfg.shard_count as u64
                ))
                .labeled("chaos.scripted_read_error"),
        )
        // one move phase (seed-chosen) may error, exercising recover_moves
        .with(
            FaultRule::new(FaultOp::Move, FaultKind::Error)
                .with_tag(MOVE_PHASE_TAGS[(cfg.seed % MOVE_PHASE_TAGS.len() as u64) as usize])
                .with_probability(0.35)
                .labeled("chaos.move_error"),
        )
}

fn build_cluster(cfg: &SimConfig) -> Arc<Cluster> {
    let mut cc = ClusterConfig::default();
    cc.shard_count = cfg.shard_count;
    cc.executor_threads = cfg.executor_threads;
    cc.tracing = cfg.tracing;
    cc.snapshot_isolation = cfg.snapshot_isolation;
    let c = Cluster::new(cc);
    for _ in 0..cfg.workers {
        c.add_worker().expect("add worker");
    }
    c
}

fn apply_corruption(c: &Arc<Cluster>, kind: CorruptKind) -> Result<(), String> {
    match kind {
        CorruptKind::DuplicatePlacement => {
            let mut meta = c.metadata.write();
            // Metadata stores tables in a HashMap; pick the victim by
            // smallest shard id so replays corrupt the same shard.
            let target = meta
                .tables()
                .filter(|t| !t.is_reference())
                .map(|t| t.shards[0])
                .min_by_key(|sid| sid.0)
                .ok_or("no distributed table to corrupt")?;
            let current = meta
                .shard(target)
                .map_err(|e| format!("{e:?}"))?
                .placements
                .first()
                .copied()
                .ok_or("shard has no placement")?;
            let extra = if current == NodeId(1) { NodeId(2) } else { NodeId(1) };
            meta.shard_mut(target).map_err(|e| format!("{e:?}"))?.placements.push(extra);
        }
        CorruptKind::OrphanShardTable => {
            let node = c.node(NodeId(1)).map_err(|e| format!("{e:?}"))?;
            let mut s = node.engine().session().map_err(|e| format!("{e:?}"))?;
            s.execute(&format!("CREATE TABLE sim_orphan_{} (x bigint)", FIRST_SHARD_ID + 777))
                .map_err(|e| format!("{e:?}"))?;
        }
    }
    Ok(())
}

// ---------------- MX DDL-interleave drill ----------------

/// Model of the drill table's committed contents — the lost-write oracle
/// for the generation fence. Every committed drill transaction contributes
/// exactly one row with `v = 2`; a write that landed in a moved-away or
/// dropped shard copy shows up as a short count (and as an orphan physical
/// table in [`check_invariants`]).
struct DrillState {
    next_key: i64,
    committed: i64,
}

/// One generation-fence drill: open an MX transaction, land its first
/// write (pinning the session), interleave a metadata change of `kind`
/// from the coordinator, then drive the transaction's next statement and
/// COMMIT through the fence. A conflicting change must surface as a
/// retryable 40001 — never a hang, never a lost write — and the retry must
/// commit against fresh metadata.
fn run_mx_interleave(
    cluster: &Arc<Cluster>,
    cfg: &SimConfig,
    drill: &mut DrillState,
    kind: MxInterleaveKind,
    sel: u32,
    injectors: &mut Vec<Arc<netsim::fault::FaultInjector>>,
) -> Result<(), String> {
    let k = drill.next_key;
    drill.next_key += 1;
    let site = |s: &'static str| move |e: PgError| format!("drill {s}: {e:?}");

    let mut mx = cluster.mx_session();
    let open = |mx: &mut citrus::cluster::MxSession| -> PgResult<()> {
        mx.execute("BEGIN")?;
        mx.execute(&format!("INSERT INTO mx_drill VALUES ({k}, 1)"))?;
        Ok(())
    };
    let finish = |mx: &mut citrus::cluster::MxSession| -> PgResult<()> {
        mx.execute(&format!("UPDATE mx_drill SET v = v + 1 WHERE k = {k}"))?;
        mx.execute("COMMIT")?;
        Ok(())
    };
    open(&mut mx).map_err(site("open"))?;

    // a propagated CREATE INDEX bumps the generation *before* its fan-out,
    // so even a chaos-aborted propagation leaves the fence armed — mirror
    // the base Ddl event's tolerance for injected connection failures
    let ddl = |s: &mut citrus::cluster::ClientSession, sql: &str| -> PgResult<()> {
        match s.execute(sql) {
            Ok(_) => Ok(()),
            Err(e) if e.code == ErrorCode::ConnectionFailure => Ok(()),
            Err(e) => Err(e),
        }
    };

    // the interleaved metadata change; `must_fence` = the change touched
    // the transaction's table, so surviving to COMMIT would be the exact
    // stale-plan anomaly the fence exists to kill
    let mut must_fence = true;
    match kind {
        MxInterleaveKind::ConflictDdl => {
            let mut s = cluster.session().map_err(site("session open"))?;
            ddl(&mut s, &format!("CREATE INDEX mx_drill_idx_{sel} ON mx_drill (v)"))
                .map_err(site("conflict ddl"))?;
        }
        MxInterleaveKind::EscalateDdl => {
            let mut s = cluster.session().map_err(site("session open"))?;
            ddl(&mut s, &format!("CREATE INDEX mx_by_idx_{sel} ON mx_bystander (v)"))
                .map_err(site("bystander ddl"))?;
            must_fence = false;
        }
        MxInterleaveKind::Move => {
            let (bucket, from) = {
                let meta = cluster.metadata.read();
                let t = meta.table("mx_drill").ok_or("mx_drill missing")?;
                let bucket = (sel as usize) % t.shards.len();
                let shard = meta.shard(t.shards[bucket]).map_err(|e| format!("{e:?}"))?;
                let from =
                    *shard.placements.first().ok_or("drill shard without placement")?;
                (bucket, from)
            };
            let to = cluster
                .worker_ids()
                .into_iter()
                .find(|w| *w != from && cluster.node(*w).map(|n| n.is_active()).unwrap_or(false))
                .ok_or("no active move target for the drill")?;
            match rebalancer::move_shard_group(cluster, "mx_drill", bucket, from, to) {
                Ok(_) => {}
                Err(_) => {
                    // chaos killed the move before (or after) the metadata
                    // switch; journal recovery restores the invariant and
                    // the transaction may legitimately commit unfenced
                    rebalancer::recover_moves(cluster).map_err(site("move recovery"))?;
                    must_fence = false;
                }
            }
        }
        MxInterleaveKind::FrozenDdl => {
            // freeze the propagation between its steps: generation bumped
            // and pre-fence run, shard index unbuilt on the victim. The
            // open transaction is driven through the fence INSIDE this
            // window — the precise interleaving the contract covers.
            let victim = cluster
                .worker_ids()
                .into_iter()
                .find(|w| cluster.node(*w).map(|n| n.is_active()).unwrap_or(false))
                .ok_or("no active worker to freeze")?;
            let frozen = citrus::interleave::freeze_ddl(cluster, victim, "create_index");
            let mut s = cluster.session().map_err(site("session open"))?;
            if s.execute(&format!("CREATE INDEX mx_fz_idx_{sel} ON mx_drill (v)")).is_ok() {
                return Err("frozen CREATE INDEX unexpectedly completed".into());
            }
            match finish(&mut mx) {
                Err(e) if e.code == ErrorCode::SerializationFailure => {}
                Ok(()) => {
                    return Err(
                        "drill FrozenDdl: transaction survived inside the frozen window".into()
                    )
                }
                Err(e) => return Err(format!("drill FrozenDdl: unexpected error {e:?}")),
            }
            frozen.release().map_err(site("freeze release"))?;
            if cfg.faults {
                injectors.push(cluster.install_faults(chaos_plan(cfg), cfg.seed));
            }
            // complete the DDL under a fresh name (the half-propagated
            // index is harmless; re-using the name would trip on the
            // already-applied local shell)
            ddl(&mut s, &format!("CREATE INDEX mx_fz_idx_{sel}_r ON mx_drill (v)"))
                .map_err(site("frozen ddl completion"))?;
            // the fenced transaction retries cleanly after the window
            open(&mut mx).map_err(site("frozen retry open"))?;
            finish(&mut mx).map_err(site("frozen retry finish"))?;
            drill.committed += 1;
            return Ok(());
        }
    }

    match finish(&mut mx) {
        Ok(()) => {
            if must_fence {
                return Err(format!(
                    "drill {kind:?}: open MX transaction survived a conflicting metadata change"
                ));
            }
        }
        Err(e) if e.code == ErrorCode::SerializationFailure => {
            // the fence's contract: the abort is clean (locks released,
            // session unpinned) and retryable — rerun the transaction
            // against fresh metadata
            open(&mut mx).map_err(site("retry open"))?;
            finish(&mut mx).map_err(site("retry finish"))?;
        }
        Err(e) => return Err(format!("drill {kind:?}: unexpected error {e:?}")),
    }
    drill.committed += 1;
    Ok(())
}

/// Read the drill table back through the coordinator and compare against
/// the model — the lost/orphan-write check, with the same bounded client
/// re-submission chaos allowance as [`MirrorRunner::dist_run`].
fn check_drill_model(cluster: &Arc<Cluster>, drill: &DrillState) -> Result<(), String> {
    let mut s = cluster.session().map_err(|e| format!("{e:?}"))?;
    let mut last = String::new();
    for _ in 0..12 {
        match s.execute("SELECT count(*), sum(v) FROM mx_drill") {
            Ok(r) => {
                let row = &r.rows()[0];
                let (count, sum) = (
                    row[0].as_i64().unwrap_or(-1),
                    if drill.committed == 0 { 0 } else { row[1].as_i64().unwrap_or(-1) },
                );
                if count != drill.committed || sum != drill.committed * 2 {
                    return Err(format!(
                        "drill writes lost or duplicated: count={count} sum={sum}, \
                         model count={} sum={}",
                        drill.committed,
                        drill.committed * 2
                    ));
                }
                return Ok(());
            }
            Err(e) if e.code == ErrorCode::ConnectionFailure => last = format!("{e:?}"),
            Err(e) => return Err(format!("drill read-back failed: {e:?}")),
        }
    }
    Err(format!("drill read-back exhausted retries: {last}"))
}

/// Execute `events` for `cfg`. A pure function of its arguments: same
/// inputs, same outcome — the replay-by-seed and shrinking contract.
pub fn run_schedule(cfg: &SimConfig, events: &[SimEvent]) -> Result<SimReport, SimFailure> {
    assert!(cfg.workers >= 2, "sim needs >= 2 workers for moves and failovers");
    let fail = |i: usize, detail: String| SimFailure { event_index: i, detail };
    let patterns = enabled_patterns(cfg);
    let primary = patterns[0];
    let scales = SimScales::default();

    let cluster = build_cluster(cfg);
    let oracle = Engine::new_default();
    let local = LocalRunner { session: oracle.session().map_err(|e| fail(0, format!("{e:?}")))? };
    let mut mirror = if cfg.mx_routing {
        MirrorRunner::new(MxRunner { session: cluster.mx_session() }, local)
    } else {
        let session = cluster.session().map_err(|e| fail(0, format!("{e:?}")))?;
        MirrorRunner::new(ClusterRunner { session }, local)
    };
    for p in &patterns {
        setup_pattern(&mut mirror, *p, &scales, true, cfg.seed)
            .map_err(|e| fail(0, format!("setup of {p:?} failed: {e:?}")))?;
    }
    if let Some(d) = mirror.divergence.clone() {
        return Err(fail(0, format!("divergence during setup: {d}")));
    }
    // the rollup rides the RTA transformation output; created chaos-free at
    // setup so the initial fill can't be aborted by an injected fault
    let rollups_live = cfg.rollups && patterns.contains(&Pattern::RealTimeAnalytics);
    if rollups_live {
        let mut s = cluster.session().map_err(|e| fail(0, format!("{e:?}")))?;
        s.execute(
            "CREATE ROLLUP sim_commit_rollup AS SELECT day, count(*) AS n, \
             sum(commit_count) AS total, max(commit_count) AS peak \
             FROM push_commits GROUP BY day",
        )
        .map_err(|e| fail(0, format!("rollup setup failed: {e:?}")))?;
    }
    let mut drill = DrillState { next_key: 0, committed: 0 };
    if cfg.mx_ddl_interleave {
        // drill tables live outside the mirrored workload: their statements
        // never flow through the oracle, their committed contents are
        // checked against the drill model instead
        let mut s = cluster.session().map_err(|e| fail(0, format!("{e:?}")))?;
        for sql in [
            "CREATE TABLE mx_drill (k bigint, v bigint)",
            "SELECT create_distributed_table('mx_drill', 'k')",
            "CREATE TABLE mx_bystander (k bigint, v bigint)",
            "SELECT create_distributed_table('mx_bystander', 'k')",
        ] {
            s.execute(sql).map_err(|e| fail(0, format!("drill setup failed: {e:?}")))?;
        }
    }

    // the chaos injector can be swapped out mid-run (a FrozenDdl drill
    // replaces the plan and reinstalls it); fault totals sum over every
    // installed injector
    let mut injectors: Vec<Arc<netsim::fault::FaultInjector>> = Vec::new();
    if cfg.faults {
        injectors.push(cluster.install_faults(chaos_plan(cfg), cfg.seed));
    }
    let mut state = make_state(&patterns, &scales, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x041B_0B0E_5EED);
    let mut report = SimReport::default();

    for (i, ev) in events.iter().enumerate() {
        match *ev {
            SimEvent::Txn { pattern } => {
                report.txns_attempted += 1;
                match run_unit(&mut mirror, &mut state, pattern, &scales, &mut rng) {
                    Ok(()) => {}
                    Err(e) if e.code == ErrorCode::ConnectionFailure => {
                        report.txns_failed += 1;
                    }
                    Err(e) => {
                        let detail = mirror
                            .divergence
                            .clone()
                            .unwrap_or_else(|| format!("unexpected workload error: {e:?}"));
                        return Err(fail(i, detail));
                    }
                }
            }
            SimEvent::Move { bucket_sel } => {
                let anchor = anchor_table(primary);
                let (bucket, from) = {
                    let meta = cluster.metadata.read();
                    let t = meta
                        .table(anchor)
                        .ok_or_else(|| fail(i, format!("anchor table {anchor} missing")))?;
                    let bucket = (bucket_sel as usize) % t.shards.len();
                    let shard = meta
                        .shard(t.shards[bucket])
                        .map_err(|e| fail(i, format!("{e:?}")))?;
                    let from = *shard
                        .placements
                        .first()
                        .ok_or_else(|| fail(i, "shard without placement".to_string()))?;
                    (bucket, from)
                };
                let to = cluster
                    .worker_ids()
                    .into_iter()
                    .find(|w| *w != from && cluster.node(*w).map(|n| n.is_active()).unwrap_or(false));
                let Some(to) = to else {
                    return Err(fail(i, "no active move target worker".to_string()));
                };
                report.moves_attempted += 1;
                match rebalancer::move_shard_group(&cluster, anchor, bucket, from, to) {
                    Ok(_) => report.moves_completed += 1,
                    Err(_) => {
                        // chaos killed the move; the journal recovery pass
                        // must restore the invariant
                        rebalancer::recover_moves(&cluster)
                            .map_err(|e| fail(i, format!("recover_moves failed: {e:?}")))?;
                    }
                }
            }
            SimEvent::Failover { worker_sel } => {
                let workers = cluster.worker_ids();
                let node = workers[(worker_sel as usize) % workers.len()];
                ha::fail_over(&cluster, node)
                    .map_err(|e| fail(i, format!("failover of node {} failed: {e:?}", node.0)))?;
                report.failovers += 1;
            }
            SimEvent::Ddl { n } => {
                let (table, col) = ddl_target(primary);
                match mirror.run(&format!("CREATE INDEX sim_idx_{n} ON {table} ({col})")) {
                    Ok(_) => {}
                    // chaos may abort the propagation mid-flight; a
                    // partially-built index never changes query results
                    Err(e) if e.code == ErrorCode::ConnectionFailure => {}
                    // columnar targets (TPC-H fact tables) reject secondary
                    // indexes; the rejection is deterministic and harmless
                    Err(e) if e.code == ErrorCode::FeatureNotSupported => {}
                    Err(e) => return Err(fail(i, format!("DDL failed: {e:?}"))),
                }
            }
            SimEvent::Maintenance => {
                deadlock::detect_once(&cluster)
                    .map_err(|e| fail(i, format!("deadlock pass failed: {e:?}")))?;
                recovery::recover_once(&cluster)
                    .map_err(|e| fail(i, format!("recovery pass failed: {e:?}")))?;
                rebalancer::recover_moves(&cluster)
                    .map_err(|e| fail(i, format!("move recovery failed: {e:?}")))?;
                // the rollup-maintenance pass: a refresh aborted by an
                // injected read error rolls back cleanly and catches up on
                // the next pass — only non-chaos errors fail the run
                match citrus::rollup::refresh_all(&cluster) {
                    Ok(()) => {}
                    Err(e) if e.code == ErrorCode::ConnectionFailure => {}
                    Err(e) => return Err(fail(i, format!("rollup refresh failed: {e:?}"))),
                }
            }
            SimEvent::MxInterleave { kind, sel } => {
                run_mx_interleave(&cluster, cfg, &mut drill, kind, sel, &mut injectors)
                    .map_err(|d| fail(i, d))?;
                check_drill_model(&cluster, &drill).map_err(|d| fail(i, d))?;
            }
            SimEvent::Corrupt { kind } => {
                apply_corruption(&cluster, kind).map_err(|d| fail(i, d))?;
            }
        }
        if let Some(d) = mirror.divergence.clone() {
            return Err(fail(i, d));
        }
        check_invariants(&cluster).map_err(|d| fail(i, d))?;
    }

    // settle and verify the final state differentially
    recovery::recover_once(&cluster)
        .map_err(|e| fail(events.len(), format!("final recovery failed: {e:?}")))?;
    rebalancer::recover_moves(&cluster)
        .map_err(|e| fail(events.len(), format!("final move recovery failed: {e:?}")))?;
    check_invariants(&cluster).map_err(|d| fail(events.len(), d))?;
    for p in &patterns {
        for q in verification_queries(*p) {
            if let Err(e) = mirror.run(&q) {
                let detail = mirror
                    .divergence
                    .clone()
                    .unwrap_or_else(|| format!("final verification `{q}` failed: {e:?}"));
                return Err(fail(events.len(), detail));
            }
        }
    }

    report.reads_checked = mirror.reads_checked;
    report.writes_checked = mirror.writes_checked;
    (report.mx_routed, report.mx_escalated) = mirror.dist.route_stats();
    report.mx_generation_aborts =
        cluster.metrics.mx_generation_aborts.load(std::sync::atomic::Ordering::Relaxed);
    report.mx_midtxn_escalations =
        cluster.metrics.mx_midtxn_escalations.load(std::sync::atomic::Ordering::Relaxed);
    report.drill_commits = drill.committed as u64;
    report.rollup_refreshes =
        cluster.metrics.rollup_refreshes.load(std::sync::atomic::Ordering::Relaxed);
    for inj in &injectors {
        report.faults_fired += inj.fired();
        report.fault_errors += inj
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Error | FaultKind::Crash))
            .count() as u64;
    }
    if cfg.tracing {
        let renders: Vec<String> =
            cluster.tracer.statements().iter().map(|s| s.render()).collect();
        let joined = renders.join("\n");
        // Diagnostic hook: dump the rendered trace so fingerprint mismatches
        // can be diffed (`CITRUS_SIM_TRACE_DUMP=/tmp/a.txt`). Does not
        // affect the run's outcome.
        if let Ok(path) = std::env::var("CITRUS_SIM_TRACE_DUMP") {
            let _ = std::fs::write(&path, &joined);
        }
        report.trace_fingerprint = citrus::trace::fingerprint_str(&joined);
    }
    Ok(report)
}

// ---------------- shrinking + replay ----------------

/// Greedy ddmin over the event list: repeatedly drop chunks (halving the
/// chunk size down to single events) while the failure persists. Bounded by
/// a fixed re-run budget so shrinking can never hang a CI gate.
pub fn shrink_schedule(
    cfg: &SimConfig,
    events: &[SimEvent],
    first: SimFailure,
) -> (Vec<SimEvent>, SimFailure) {
    let mut current = events.to_vec();
    let mut failure = first;
    let mut chunk = current.len().div_ceil(2).max(1);
    let mut budget = 100usize;
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() && budget > 0 {
            let mut candidate = current.clone();
            let end = (start + chunk).min(candidate.len());
            candidate.drain(start..end);
            budget -= 1;
            match run_schedule(cfg, &candidate) {
                Err(f) => {
                    current = candidate;
                    failure = f;
                    reduced = true;
                }
                Ok(_) => start += chunk,
            }
        }
        if budget == 0 || current.is_empty() || (chunk == 1 && !reduced) {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    (current, failure)
}

/// Derive, run, and — on failure — shrink. The error string is the one-line
/// deterministic repro contract: it names the seed, the minimal schedule,
/// and the replay command.
pub fn run_seed(cfg: &SimConfig) -> Result<SimReport, String> {
    let events = derive_schedule(cfg);
    match run_schedule(cfg, &events) {
        Ok(report) => Ok(report),
        Err(first) => {
            let (minimal, failure) = shrink_schedule(cfg, &events, first);
            Err(format!(
                "sim seed {seed} failed at event {idx}: {detail}\n\
                 minimal reproducer ({n} of {total} events): {minimal:?}\n\
                 replay: CITRUS_SIM_SEED={seed} cargo test -p workloads --test sim_chaos \
                 replay_env_seed -- --nocapture",
                seed = cfg.seed,
                idx = failure.event_index,
                detail = failure.detail,
                n = minimal.len(),
                total = events.len(),
            ))
        }
    }
}

// ---------------- statement-stream recording ----------------

/// A [`SqlRunner`] that executes nothing and records the exact statement
/// stream a workload driver produces: SQL text verbatim, COPY batches as
/// `COPY <table> <n> rows fp=<fingerprint>` lines. Two drivers with the
/// same seed must produce byte-identical logs (the replay-by-seed
/// contract); different seeds must not.
#[derive(Default)]
pub struct RecordingRunner {
    pub log: Vec<String>,
}

impl SqlRunner for RecordingRunner {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        self.log.push(sql.to_string());
        Ok(QueryResult::Empty)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        let fp = citrus::trace::fingerprint_str(&format!("{rows:?}"));
        self.log.push(format!(
            "COPY {table} ({}) {} rows fp={fp:016x}",
            columns.join(","),
            rows.len()
        ));
        Ok(rows.len() as u64)
    }

    fn last_cost(&mut self) -> RunCost {
        RunCost::default()
    }
}

// ---------------- §4 evaluation (bench mode) ----------------

/// A [`SqlRunner`] wrapper that feeds every statement's virtual elapsed
/// time into a histogram — the per-arm metering of the evaluation.
struct MeteredRunner<'a> {
    inner: &'a mut dyn SqlRunner,
    hist: citrus::metrics::Histogram,
    virtual_ms: f64,
    statements: u64,
    demand: RunCost,
}

impl<'a> MeteredRunner<'a> {
    fn new(inner: &'a mut dyn SqlRunner) -> MeteredRunner<'a> {
        MeteredRunner {
            inner,
            hist: citrus::metrics::Histogram::default(),
            virtual_ms: 0.0,
            statements: 0,
            demand: RunCost::default(),
        }
    }

    fn observe_last(&mut self) {
        let c = self.inner.last_cost();
        self.hist.observe(c.elapsed_ms);
        self.virtual_ms += c.elapsed_ms;
        self.statements += 1;
        self.demand.add(&c);
    }
}

impl SqlRunner for MeteredRunner<'_> {
    fn run(&mut self, sql: &str) -> PgResult<QueryResult> {
        let r = self.inner.run(sql)?;
        self.observe_last();
        Ok(r)
    }

    fn copy(&mut self, table: &str, columns: &[String], rows: Vec<Row>) -> PgResult<u64> {
        let n = self.inner.copy(table, columns, rows)?;
        self.observe_last();
        Ok(n)
    }

    fn last_cost(&mut self) -> RunCost {
        self.inner.last_cost()
    }
}

/// One arm (distributed or single-node) of a pattern evaluation.
#[derive(Debug, Clone)]
pub struct ArmStats {
    pub units: u64,
    pub statements: u64,
    pub virtual_ms: f64,
    /// Workload units per virtual second.
    pub throughput_per_vsec: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// Summed per-node resource demand over the whole arm — (node, cpu_ms,
    /// io_ms) plus network delay — for the closed-loop MVA solver. Dividing
    /// by `units` gives the per-unit demand profile; the serial
    /// `units_per_vsec` metric alone cannot show aggregate cluster capacity.
    pub per_node_ms: Vec<(u32, f64, f64)>,
    pub net_ms: f64,
}

/// Distributed vs single-node numbers for one §4 pattern.
#[derive(Debug, Clone)]
pub struct PatternBench {
    pub pattern: Pattern,
    pub distributed: ArmStats,
    pub single_node: ArmStats,
}

fn bench_arm(
    r: &mut dyn SqlRunner,
    pattern: Pattern,
    scales: &SimScales,
    distributed: bool,
    seed: u64,
    units: u64,
) -> PgResult<ArmStats> {
    setup_pattern(r, pattern, scales, distributed, seed)?;
    let mut state = make_state(&[pattern], scales, seed);
    if distributed && pattern == Pattern::RealTimeAnalytics {
        // The distributed arm serves the dashboard from an incrementally
        // maintained rollup (DESIGN.md §12) — the deployment shape the paper
        // describes for real-time analytics. The single-node mirror keeps
        // the raw per-read aggregate a lone PostgreSQL would run. The unit
        // stream is otherwise identical (same rng, same draws).
        r.run(&gharchive::rollup_definition())?;
        state.gh_rollup = true;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE4C_11);
    let mut metered = MeteredRunner::new(r);
    for _ in 0..units {
        run_unit(&mut metered, &mut state, pattern, scales, &mut rng)?;
    }
    let virtual_ms = metered.virtual_ms;
    Ok(ArmStats {
        units,
        statements: metered.statements,
        virtual_ms,
        throughput_per_vsec: if virtual_ms > 0.0 { units as f64 * 1000.0 / virtual_ms } else { 0.0 },
        p50_ms: metered.hist.percentile(0.50),
        p95_ms: metered.hist.percentile(0.95),
        p99_ms: metered.hist.percentile(0.99),
        per_node_ms: metered.demand.per_node.clone(),
        net_ms: metered.demand.net_ms,
    })
}

/// The §4 evaluation for one pattern: the identical workload-unit stream on
/// a distributed cluster and on a single pgmini node, with per-statement
/// virtual-latency percentiles and unit throughput for both arms. Runs with
/// snapshot isolation off — the paper's semantics and the committed
/// regression baseline; [`bench_pattern_snapshot_isolation`] measures the
/// mode-on overhead against it.
pub fn bench_pattern(
    pattern: Pattern,
    scales: &SimScales,
    seed: u64,
    units: u64,
    workers: u32,
    shard_count: u32,
    executor_threads: usize,
) -> PgResult<PatternBench> {
    bench_pattern_mode(pattern, scales, seed, units, workers, shard_count, executor_threads, false)
}

/// The mode-on arm of the same evaluation: identical stream, identical
/// cluster shape, `ClusterConfig::snapshot_isolation` enabled — so the
/// difference in `units_per_vsec` against [`bench_pattern`] *is* the token
/// machinery's overhead (expected: none on the virtual clock; the clock
/// draw and registry publish are not modelled costs, and the token adds no
/// wire traffic).
pub fn bench_pattern_snapshot_isolation(
    pattern: Pattern,
    scales: &SimScales,
    seed: u64,
    units: u64,
    workers: u32,
    shard_count: u32,
    executor_threads: usize,
) -> PgResult<PatternBench> {
    bench_pattern_mode(pattern, scales, seed, units, workers, shard_count, executor_threads, true)
}

#[allow(clippy::too_many_arguments)]
fn bench_pattern_mode(
    pattern: Pattern,
    scales: &SimScales,
    seed: u64,
    units: u64,
    workers: u32,
    shard_count: u32,
    executor_threads: usize,
    snapshot_isolation: bool,
) -> PgResult<PatternBench> {
    let mut cfg = SimConfig::new(seed);
    cfg.workers = workers;
    cfg.shard_count = shard_count;
    cfg.executor_threads = executor_threads;
    cfg.snapshot_isolation = snapshot_isolation;
    let cluster = build_cluster(&cfg);
    // The distributed arm runs MX-routed (§2.3): tenant transactions pin to
    // their placement's worker and bypass the coordinator, cross-shard
    // shapes escalate. This is the deployment shape the paper benchmarks.
    let mut dist = MxRunner { session: cluster.mx_session() };
    let distributed = bench_arm(&mut dist, pattern, scales, true, seed, units)?;
    let engine = Engine::new_default();
    let mut local = LocalRunner { session: engine.session()? };
    let single_node = bench_arm(&mut local, pattern, scales, false, seed, units)?;
    Ok(PatternBench { pattern, distributed, single_node })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic() {
        let cfg = SimConfig::new(12);
        assert_eq!(derive_schedule(&cfg), derive_schedule(&cfg));
        let other = SimConfig::new(13);
        assert_ne!(derive_schedule(&cfg), derive_schedule(&other));
    }

    #[test]
    fn schedules_guarantee_lifecycle_coverage() {
        for seed in 0..40u64 {
            let cfg = SimConfig::new(seed);
            let ev = derive_schedule(&cfg);
            let moves = ev.iter().filter(|e| matches!(e, SimEvent::Move { .. })).count();
            let failovers = ev.iter().filter(|e| matches!(e, SimEvent::Failover { .. })).count();
            let txns = ev.iter().filter(|e| matches!(e, SimEvent::Txn { .. })).count();
            assert!(moves >= 2, "seed {seed}: {moves} moves");
            assert!(failovers >= 1, "seed {seed}: {failovers} failovers");
            assert!(txns >= 1, "seed {seed}: {txns} txns");
            assert!(!ev.iter().any(|e| matches!(e, SimEvent::Corrupt { .. })));
        }
    }

    #[test]
    fn enabled_patterns_never_mix_tpcc_and_tpch() {
        for seed in 0..64u64 {
            let cfg = SimConfig::new(seed);
            let pats = enabled_patterns(&cfg);
            assert!(!pats.is_empty() && pats.len() <= 2, "seed {seed}: {pats:?}");
            let mt = pats.contains(&Pattern::MultiTenant);
            let dw = pats.contains(&Pattern::DataWarehousing);
            assert!(!(mt && dw), "seed {seed} mixes conflicting schemas: {pats:?}");
        }
    }

    #[test]
    fn ddl_names_unique_within_a_schedule() {
        for seed in 0..20u64 {
            let ev = derive_schedule(&SimConfig::new(seed));
            let mut names: Vec<u32> = ev
                .iter()
                .filter_map(|e| match e {
                    SimEvent::Ddl { n } => Some(*n),
                    _ => None,
                })
                .collect();
            let total = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), total, "seed {seed}: duplicate DDL names");
        }
    }

    #[test]
    fn snapshot_isolation_covers_both_modes_across_the_corpus() {
        // Even seeds run mode-on, odd seeds mode-off: every corpus sweep
        // exercises both token and latest-snapshot visibility against the
        // mirror oracle.
        for seed in 0..16u64 {
            assert_eq!(SimConfig::new(seed).snapshot_isolation, seed % 2 == 0, "seed {seed}");
        }
    }

    #[test]
    fn read_skew_invariant_flags_the_frozen_window_mode_off_only() {
        for si in [false, true] {
            let mut cc = ClusterConfig::default();
            cc.shard_count = 8;
            cc.snapshot_isolation = si;
            let c = Cluster::new(cc);
            c.add_worker().unwrap();
            c.add_worker().unwrap();
            let mut s = c.session().unwrap();
            s.execute("CREATE TABLE t (k bigint, v bigint)").unwrap();
            s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
            for k in 0..16 {
                s.execute(&format!("INSERT INTO t VALUES ({k}, 0)")).unwrap();
            }
            let split = citrus::interleave::freeze_commit_prepared(&c, NodeId(2));
            s.execute("UPDATE t SET v = v + 1").unwrap();
            assert_eq!(split.frozen_gids().len(), 1);
            if si {
                // decided timestamp published before COMMIT PREPARED: token
                // readers see the frozen half, no skew window exists
                check_read_skew(&c).unwrap();
                // ...but the half is still a stuck-prepared violation
                assert!(check_invariants(&c).unwrap_err().contains("stuck prepared"));
            } else {
                let err = check_invariants(&c).unwrap_err();
                assert!(err.contains("read skew"), "{err}");
            }
            split.release().unwrap();
            check_invariants(&c).unwrap();
        }
    }

    #[test]
    fn classify_routes_statement_kinds() {
        assert!(matches!(classify("SELECT create_distributed_table('t','k')"), StmtClass::DistOnly));
        assert!(matches!(classify("BEGIN"), StmtClass::TxnControl));
        assert!(matches!(classify("INSERT INTO t VALUES (1)"), StmtClass::Write));
        assert!(matches!(classify("CREATE INDEX i ON t (k)"), StmtClass::Ddl));
        assert!(matches!(classify("SELECT * FROM t ORDER BY k"), StmtClass::Read { ordered: true }));
        assert!(matches!(classify("SELECT count(*) FROM t"), StmtClass::Read { ordered: false }));
    }
}
