//! HammerDB-style TPC-C-derived OLTP workload (§4.1).
//!
//! Models an order-processing system where warehouses are the tenants: most
//! transactions touch a single warehouse id, a small fraction (~7%, matching
//! the paper) crosses warehouses and hence — on a cluster — nodes. NOPM (new
//! orders per minute) is the headline metric.

use crate::runner::SqlRunner;
use pgmini::error::PgResult;
use pgmini::types::{Datum, Row};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Workload scale and mix configuration.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    pub warehouses: u32,
    /// Items in the catalogue (TPC-C specifies 100k; scaled down here).
    pub items: u32,
    pub districts_per_warehouse: u32,
    pub customers_per_district: u32,
    /// Fraction of new-order lines supplied by a remote warehouse.
    pub remote_item_fraction: f64,
    /// Fraction of payments against a customer of a remote warehouse.
    pub remote_payment_fraction: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 10,
            items: 1000,
            districts_per_warehouse: 10,
            customers_per_district: 30,
            // tuned so ~7% of transactions span warehouses, like the paper
            remote_item_fraction: 0.005,
            remote_payment_fraction: 0.10,
        }
    }
}

/// The simulated on-disk row widths of the full-size TPC-C tables (the paper
/// runs 500 warehouses ≈ 100 GB; widths let the buffer-pool math reproduce
/// that pressure at reduced row counts).
pub const SIM_WIDTHS: &[(&str, u32)] = &[
    ("warehouse", 100),
    ("district", 110),
    ("customer", 680),
    ("orders", 36),
    ("new_order", 12),
    ("order_line", 70),
    ("stock", 310),
    ("item", 90),
    ("history", 50),
];

/// CREATE TABLE statements for the TPC-C schema subset.
pub fn schema_statements() -> Vec<String> {
    vec![
        "CREATE TABLE item (i_id bigint PRIMARY KEY, i_name text, i_price float)".into(),
        "CREATE TABLE warehouse (w_id bigint PRIMARY KEY, w_name text, w_tax float, w_ytd float)"
            .into(),
        "CREATE TABLE district (d_w_id bigint, d_id bigint, d_tax float, d_ytd float, \
         d_next_o_id bigint, PRIMARY KEY (d_w_id, d_id))"
            .into(),
        "CREATE TABLE customer (c_w_id bigint, c_d_id bigint, c_id bigint, c_name text, \
         c_balance float, c_ytd_payment float, PRIMARY KEY (c_w_id, c_d_id, c_id))"
            .into(),
        "CREATE TABLE orders (o_w_id bigint, o_d_id bigint, o_id bigint, o_c_id bigint, \
         o_entry_d timestamp, o_carrier_id bigint, o_ol_cnt bigint, \
         PRIMARY KEY (o_w_id, o_d_id, o_id))"
            .into(),
        "CREATE TABLE new_order (no_w_id bigint, no_d_id bigint, no_o_id bigint, \
         PRIMARY KEY (no_w_id, no_d_id, no_o_id))"
            .into(),
        "CREATE TABLE order_line (ol_w_id bigint, ol_d_id bigint, ol_o_id bigint, \
         ol_number bigint, ol_i_id bigint, ol_supply_w_id bigint, ol_quantity bigint, \
         ol_amount float, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))"
            .into(),
        "CREATE TABLE stock (s_w_id bigint, s_i_id bigint, s_quantity bigint, s_ytd bigint, \
         PRIMARY KEY (s_w_id, s_i_id))"
            .into(),
        "CREATE TABLE history (h_w_id bigint, h_d_id bigint, h_c_id bigint, h_amount float, \
         h_date timestamp)"
            .into(),
    ]
}

/// Distribution statements: item becomes a reference table, the rest
/// distribute and co-locate on the warehouse id (§4.1's setup).
pub fn distribution_statements() -> Vec<String> {
    vec![
        "SELECT create_reference_table('item')".into(),
        "SELECT create_distributed_table('warehouse', 'w_id')".into(),
        "SELECT create_distributed_table('district', 'd_w_id', 'warehouse')".into(),
        "SELECT create_distributed_table('customer', 'c_w_id', 'warehouse')".into(),
        "SELECT create_distributed_table('orders', 'o_w_id', 'warehouse')".into(),
        "SELECT create_distributed_table('new_order', 'no_w_id', 'warehouse')".into(),
        "SELECT create_distributed_table('order_line', 'ol_w_id', 'warehouse')".into(),
        "SELECT create_distributed_table('stock', 's_w_id', 'warehouse')".into(),
        "SELECT create_distributed_table('history', 'h_w_id', 'warehouse')".into(),
    ]
}

/// Populate the schema (COPY-based).
pub fn load(r: &mut dyn SqlRunner, cfg: &TpccConfig, seed: u64) -> PgResult<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Row> = (1..=cfg.items as i64)
        .map(|i| {
            vec![
                Datum::Int(i),
                Datum::Text(format!("item-{i}")),
                Datum::Float((rng.random_range(100..10000) as f64) / 100.0),
            ]
        })
        .collect();
    r.copy("item", &[], items)?;
    for w in 1..=cfg.warehouses as i64 {
        r.copy(
            "warehouse",
            &[],
            vec![vec![
                Datum::Int(w),
                Datum::Text(format!("wh-{w}")),
                Datum::Float(rng.random_range(0..2000) as f64 / 10_000.0),
                Datum::Float(300_000.0),
            ]],
        )?;
        let districts: Vec<Row> = (1..=cfg.districts_per_warehouse as i64)
            .map(|d| {
                vec![
                    Datum::Int(w),
                    Datum::Int(d),
                    Datum::Float(rng.random_range(0..2000) as f64 / 10_000.0),
                    Datum::Float(30_000.0),
                    Datum::Int(1),
                ]
            })
            .collect();
        r.copy("district", &[], districts)?;
        let mut customers = Vec::new();
        for d in 1..=cfg.districts_per_warehouse as i64 {
            for c in 1..=cfg.customers_per_district as i64 {
                customers.push(vec![
                    Datum::Int(w),
                    Datum::Int(d),
                    Datum::Int(c),
                    Datum::Text(format!("cust-{w}-{d}-{c}")),
                    Datum::Float(-10.0),
                    Datum::Float(10.0),
                ]);
            }
        }
        r.copy("customer", &[], customers)?;
        let stock: Vec<Row> = (1..=cfg.items as i64)
            .map(|i| {
                vec![
                    Datum::Int(w),
                    Datum::Int(i),
                    Datum::Int(rng.random_range(10..101)),
                    Datum::Int(0),
                ]
            })
            .collect();
        r.copy("stock", &[], stock)?;
    }
    Ok(())
}

/// Transaction kinds, with the HammerDB mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

/// One virtual user's transaction generator.
pub struct TpccDriver {
    pub cfg: TpccConfig,
    rng: StdRng,
    /// Statistics: total / cross-warehouse transactions issued.
    pub total_txns: u64,
    pub cross_warehouse_txns: u64,
    pub new_orders: u64,
}

impl TpccDriver {
    pub fn new(cfg: TpccConfig, seed: u64) -> Self {
        TpccDriver {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            total_txns: 0,
            cross_warehouse_txns: 0,
            new_orders: 0,
        }
    }

    /// Draw the next transaction kind from the mix (NO 45, P 43, OS 4, D 4,
    /// SL 4 — the TPC-C/HammerDB proportions).
    pub fn next_kind(&mut self) -> TxnKind {
        match self.rng.random_range(0..100) {
            0..45 => TxnKind::NewOrder,
            45..88 => TxnKind::Payment,
            88..92 => TxnKind::OrderStatus,
            92..96 => TxnKind::Delivery,
            _ => TxnKind::StockLevel,
        }
    }

    fn rand_wh(&mut self) -> i64 {
        self.rng.random_range(1..=self.cfg.warehouses as i64)
    }

    fn other_wh(&mut self, not: i64) -> i64 {
        if self.cfg.warehouses == 1 {
            return not;
        }
        loop {
            let w = self.rand_wh();
            if w != not {
                return w;
            }
        }
    }

    /// Run one transaction of the given kind. Returns whether it crossed
    /// warehouses (candidate multi-node transaction).
    pub fn run(&mut self, r: &mut dyn SqlRunner, kind: TxnKind) -> PgResult<bool> {
        self.total_txns += 1;
        let crossed = match kind {
            TxnKind::NewOrder => self.new_order(r)?,
            TxnKind::Payment => self.payment(r)?,
            TxnKind::OrderStatus => self.order_status(r)?,
            TxnKind::Delivery => self.delivery(r)?,
            TxnKind::StockLevel => self.stock_level(r)?,
        };
        if crossed {
            self.cross_warehouse_txns += 1;
        }
        Ok(crossed)
    }

    fn new_order(&mut self, r: &mut dyn SqlRunner) -> PgResult<bool> {
        let w = self.rand_wh();
        let d = self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64);
        let c = self.rng.random_range(1..=self.cfg.customers_per_district as i64);
        let ol_cnt = self.rng.random_range(5..=15i64);
        // pick the items (and their supplying warehouses) up front
        let mut lines = Vec::new();
        let mut crossed = false;
        for n in 1..=ol_cnt {
            let item = self.rng.random_range(1..=self.cfg.items as i64);
            let supply_w = if self.rng.random_bool(self.cfg.remote_item_fraction) {
                self.other_wh(w)
            } else {
                w
            };
            crossed |= supply_w != w;
            let qty = self.rng.random_range(1..=10i64);
            lines.push((n, item, supply_w, qty));
        }
        r.run("BEGIN")?;
        let result: PgResult<()> = (|| {
            r.run(&format!("SELECT w_tax FROM warehouse WHERE w_id = {w}"))?;
            let next = r.run(&format!(
                "SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d} FOR UPDATE"
            ))?;
            let o_id = next
                .scalar()
                .and_then(|v| v.as_i64().ok())
                .unwrap_or(1);
            r.run(&format!(
                "UPDATE district SET d_next_o_id = {} WHERE d_w_id = {w} AND d_id = {d}",
                o_id + 1
            ))?;
            r.run(&format!(
                "INSERT INTO orders VALUES ({w}, {d}, {o_id}, {c}, '2020-06-01', NULL, {ol_cnt})"
            ))?;
            r.run(&format!("INSERT INTO new_order VALUES ({w}, {d}, {o_id})"))?;
            for (n, item, supply_w, qty) in &lines {
                let price = r.run(&format!("SELECT i_price FROM item WHERE i_id = {item}"))?;
                let price =
                    price.scalar().and_then(|v| v.as_f64().ok()).unwrap_or(1.0);
                r.run(&format!(
                    "SELECT s_quantity FROM stock WHERE s_w_id = {supply_w} AND s_i_id = {item} FOR UPDATE"
                ))?;
                r.run(&format!(
                    "UPDATE stock SET s_quantity = s_quantity - {qty}, s_ytd = s_ytd + {qty} \
                     WHERE s_w_id = {supply_w} AND s_i_id = {item}"
                ))?;
                r.run(&format!(
                    "INSERT INTO order_line VALUES ({w}, {d}, {o_id}, {n}, {item}, {supply_w}, \
                     {qty}, {})",
                    price * *qty as f64
                ))?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                r.run("COMMIT")?;
                self.new_orders += 1;
                Ok(crossed)
            }
            Err(e) => {
                let _ = r.run("ROLLBACK");
                Err(e)
            }
        }
    }

    fn payment(&mut self, r: &mut dyn SqlRunner) -> PgResult<bool> {
        let w = self.rand_wh();
        let d = self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64);
        let (c_w, c_d) = if self.rng.random_bool(self.cfg.remote_payment_fraction) {
            (self.other_wh(w), self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64))
        } else {
            (w, d)
        };
        let crossed = c_w != w;
        let c = self.rng.random_range(1..=self.cfg.customers_per_district as i64);
        let amount = self.rng.random_range(100..500000) as f64 / 100.0;
        r.run("BEGIN")?;
        let result: PgResult<()> = (|| {
            r.run(&format!(
                "UPDATE warehouse SET w_ytd = w_ytd + {amount} WHERE w_id = {w}"
            ))?;
            r.run(&format!(
                "UPDATE district SET d_ytd = d_ytd + {amount} WHERE d_w_id = {w} AND d_id = {d}"
            ))?;
            r.run(&format!(
                "UPDATE customer SET c_balance = c_balance - {amount}, \
                 c_ytd_payment = c_ytd_payment + {amount} \
                 WHERE c_w_id = {c_w} AND c_d_id = {c_d} AND c_id = {c}"
            ))?;
            r.run(&format!(
                "INSERT INTO history VALUES ({w}, {d}, {c}, {amount}, '2020-06-01')"
            ))?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                r.run("COMMIT")?;
                Ok(crossed)
            }
            Err(e) => {
                let _ = r.run("ROLLBACK");
                Err(e)
            }
        }
    }

    fn order_status(&mut self, r: &mut dyn SqlRunner) -> PgResult<bool> {
        let w = self.rand_wh();
        let d = self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64);
        let c = self.rng.random_range(1..=self.cfg.customers_per_district as i64);
        r.run(&format!(
            "SELECT c_balance, c_name FROM customer \
             WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
        ))?;
        r.run(&format!(
            "SELECT o_id, o_entry_d, o_carrier_id FROM orders \
             WHERE o_w_id = {w} AND o_d_id = {d} AND o_c_id = {c} \
             ORDER BY o_id DESC LIMIT 1"
        ))?;
        Ok(false)
    }

    fn delivery(&mut self, r: &mut dyn SqlRunner) -> PgResult<bool> {
        let w = self.rand_wh();
        let d = self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64);
        r.run("BEGIN")?;
        let result: PgResult<()> = (|| {
            let oldest = r.run(&format!(
                "SELECT no_o_id FROM new_order WHERE no_w_id = {w} AND no_d_id = {d} \
                 ORDER BY no_o_id LIMIT 1"
            ))?;
            if let Some(o_id) = oldest.scalar().and_then(|v| v.as_i64().ok()) {
                r.run(&format!(
                    "DELETE FROM new_order WHERE no_w_id = {w} AND no_d_id = {d} AND no_o_id = {o_id}"
                ))?;
                r.run(&format!(
                    "UPDATE orders SET o_carrier_id = {} \
                     WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}",
                    self.rng.random_range(1..=10)
                ))?;
                r.run(&format!(
                    "SELECT sum(ol_amount) FROM order_line \
                     WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
                ))?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                r.run("COMMIT")?;
                Ok(false)
            }
            Err(e) => {
                let _ = r.run("ROLLBACK");
                Err(e)
            }
        }
    }

    fn stock_level(&mut self, r: &mut dyn SqlRunner) -> PgResult<bool> {
        let w = self.rand_wh();
        let threshold = self.rng.random_range(10..=20i64);
        r.run(&format!(
            "SELECT count(*) FROM stock WHERE s_w_id = {w} AND s_quantity < {threshold}"
        ))?;
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_hammerdb_proportions() {
        let mut d = TpccDriver::new(TpccConfig::default(), 42);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(d.next_kind()).or_insert(0u32) += 1;
        }
        let frac = |k: TxnKind| counts[&k] as f64 / 20_000.0;
        assert!((frac(TxnKind::NewOrder) - 0.45).abs() < 0.02);
        assert!((frac(TxnKind::Payment) - 0.43).abs() < 0.02);
        assert!((frac(TxnKind::OrderStatus) - 0.04).abs() < 0.01);
    }

    #[test]
    fn schema_parses() {
        for stmt in schema_statements() {
            sqlparse::parse(&stmt).unwrap();
        }
        for stmt in distribution_statements() {
            sqlparse::parse(&stmt).unwrap();
        }
    }
}

/// How the driver talks to the database: statement-at-a-time SQL, or the
/// delegated stored procedures the paper configures for Citus (§4.1) so a
/// whole transaction costs one round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverMode {
    InlineSql,
    Procedures,
}

/// Register the TPC-C transaction bodies as delegated procedures on every
/// node of a cluster (distribution argument: the warehouse id).
pub fn register_procedures(cluster: &std::sync::Arc<citrus::cluster::Cluster>) -> PgResult<()> {
    use pgmini::session::Session;

    fn scalar_i64(s: &mut Session, sql: &str) -> PgResult<Option<i64>> {
        Ok(s.execute(sql)?.scalar().and_then(|d| d.as_i64().ok()))
    }

    citrus::procedures::register_delegated_procedure(
        cluster,
        "tpcc_new_order",
        "warehouse",
        0,
        std::sync::Arc::new(|s, args| {
            let w = args[0].as_i64()?;
            let d = args[1].as_i64()?;
            let c = args[2].as_i64()?;
            let lines = match &args[3] {
                Datum::Json(j) => j.clone(),
                Datum::Text(t) => pgmini::types::Json::parse(t)?,
                _ => {
                    return Err(pgmini::error::PgError::new(
                        pgmini::error::ErrorCode::InvalidParameter,
                        "tpcc_new_order: lines must be json",
                    ))
                }
            };
            let pgmini::types::Json::Array(items) = &lines else {
                return Err(pgmini::error::PgError::new(
                    pgmini::error::ErrorCode::InvalidParameter,
                    "tpcc_new_order: lines must be a json array",
                ));
            };
            s.execute("BEGIN")?;
            let body = (|| -> PgResult<i64> {
                s.execute(&format!("SELECT w_tax FROM warehouse WHERE w_id = {w}"))?;
                let o_id = scalar_i64(
                    s,
                    &format!(
                        "SELECT d_next_o_id FROM district \
                         WHERE d_w_id = {w} AND d_id = {d} FOR UPDATE"
                    ),
                )?
                .unwrap_or(1);
                s.execute(&format!(
                    "UPDATE district SET d_next_o_id = {} WHERE d_w_id = {w} AND d_id = {d}",
                    o_id + 1
                ))?;
                let ol_cnt = items.len();
                s.execute(&format!(
                    "INSERT INTO orders VALUES ({w}, {d}, {o_id}, {c}, '2020-06-01', NULL, {ol_cnt})"
                ))?;
                s.execute(&format!("INSERT INTO new_order VALUES ({w}, {d}, {o_id})"))?;
                for line in items {
                    let get = |i: usize| -> i64 {
                        match line.get_index(i) {
                            Some(pgmini::types::Json::Number(n)) => *n as i64,
                            _ => 0,
                        }
                    };
                    let (n, item, supply_w, qty) = (get(0), get(1), get(2), get(3));
                    let price = s
                        .execute(&format!("SELECT i_price FROM item WHERE i_id = {item}"))?
                        .scalar()
                        .and_then(|v| v.as_f64().ok())
                        .unwrap_or(1.0);
                    s.execute(&format!(
                        "SELECT s_quantity FROM stock \
                         WHERE s_w_id = {supply_w} AND s_i_id = {item} FOR UPDATE"
                    ))?;
                    s.execute(&format!(
                        "UPDATE stock SET s_quantity = s_quantity - {qty}, \
                         s_ytd = s_ytd + {qty} \
                         WHERE s_w_id = {supply_w} AND s_i_id = {item}"
                    ))?;
                    s.execute(&format!(
                        "INSERT INTO order_line VALUES ({w}, {d}, {o_id}, {n}, {item}, \
                         {supply_w}, {qty}, {})",
                        price * qty as f64
                    ))?;
                }
                Ok(o_id)
            })();
            match body {
                Ok(o_id) => {
                    s.execute("COMMIT")?;
                    Ok(Datum::Int(o_id))
                }
                Err(e) => {
                    let _ = s.execute("ROLLBACK");
                    Err(e)
                }
            }
        }),
    )?;

    citrus::procedures::register_delegated_procedure(
        cluster,
        "tpcc_payment",
        "warehouse",
        0,
        std::sync::Arc::new(|s, args| {
            let (w, d) = (args[0].as_i64()?, args[1].as_i64()?);
            let (c_w, c_d, c) = (args[2].as_i64()?, args[3].as_i64()?, args[4].as_i64()?);
            let amount = args[5].as_f64()?;
            s.execute("BEGIN")?;
            let body = (|| -> PgResult<()> {
                s.execute(&format!(
                    "UPDATE warehouse SET w_ytd = w_ytd + {amount} WHERE w_id = {w}"
                ))?;
                s.execute(&format!(
                    "UPDATE district SET d_ytd = d_ytd + {amount} \
                     WHERE d_w_id = {w} AND d_id = {d}"
                ))?;
                s.execute(&format!(
                    "UPDATE customer SET c_balance = c_balance - {amount}, \
                     c_ytd_payment = c_ytd_payment + {amount} \
                     WHERE c_w_id = {c_w} AND c_d_id = {c_d} AND c_id = {c}"
                ))?;
                s.execute(&format!(
                    "INSERT INTO history VALUES ({w}, {d}, {c}, {amount}, '2020-06-01')"
                ))?;
                Ok(())
            })();
            match body {
                Ok(()) => {
                    s.execute("COMMIT")?;
                    Ok(Datum::Null)
                }
                Err(e) => {
                    let _ = s.execute("ROLLBACK");
                    Err(e)
                }
            }
        }),
    )?;

    citrus::procedures::register_delegated_procedure(
        cluster,
        "tpcc_order_status",
        "warehouse",
        0,
        std::sync::Arc::new(|s, args| {
            let (w, d, c) = (args[0].as_i64()?, args[1].as_i64()?, args[2].as_i64()?);
            s.execute(&format!(
                "SELECT c_balance, c_name FROM customer \
                 WHERE c_w_id = {w} AND c_d_id = {d} AND c_id = {c}"
            ))?;
            s.execute(&format!(
                "SELECT o_id, o_entry_d, o_carrier_id FROM orders \
                 WHERE o_w_id = {w} AND o_d_id = {d} AND o_c_id = {c} \
                 ORDER BY o_id DESC LIMIT 1"
            ))?;
            Ok(Datum::Null)
        }),
    )?;

    citrus::procedures::register_delegated_procedure(
        cluster,
        "tpcc_delivery",
        "warehouse",
        0,
        std::sync::Arc::new(|s, args| {
            let (w, d, carrier) = (args[0].as_i64()?, args[1].as_i64()?, args[2].as_i64()?);
            s.execute("BEGIN")?;
            let body = (|| -> PgResult<()> {
                let oldest = s
                    .execute(&format!(
                        "SELECT no_o_id FROM new_order \
                         WHERE no_w_id = {w} AND no_d_id = {d} ORDER BY no_o_id LIMIT 1"
                    ))?
                    .scalar()
                    .and_then(|v| v.as_i64().ok());
                if let Some(o_id) = oldest {
                    s.execute(&format!(
                        "DELETE FROM new_order \
                         WHERE no_w_id = {w} AND no_d_id = {d} AND no_o_id = {o_id}"
                    ))?;
                    s.execute(&format!(
                        "UPDATE orders SET o_carrier_id = {carrier} \
                         WHERE o_w_id = {w} AND o_d_id = {d} AND o_id = {o_id}"
                    ))?;
                    s.execute(&format!(
                        "SELECT sum(ol_amount) FROM order_line \
                         WHERE ol_w_id = {w} AND ol_d_id = {d} AND ol_o_id = {o_id}"
                    ))?;
                }
                Ok(())
            })();
            match body {
                Ok(()) => {
                    s.execute("COMMIT")?;
                    Ok(Datum::Null)
                }
                Err(e) => {
                    let _ = s.execute("ROLLBACK");
                    Err(e)
                }
            }
        }),
    )?;

    citrus::procedures::register_delegated_procedure(
        cluster,
        "tpcc_stock_level",
        "warehouse",
        0,
        std::sync::Arc::new(|s, args| {
            let (w, threshold) = (args[0].as_i64()?, args[1].as_i64()?);
            let n = s
                .execute(&format!(
                    "SELECT count(*) FROM stock \
                     WHERE s_w_id = {w} AND s_quantity < {threshold}"
                ))?
                .scalar()
                .and_then(|v| v.as_i64().ok())
                .unwrap_or(0);
            Ok(Datum::Int(n))
        }),
    )?;
    Ok(())
}

impl TpccDriver {
    /// Run one transaction through the delegated procedures (one round trip
    /// per transaction instead of one per statement). Returns whether the
    /// transaction crossed warehouses.
    pub fn run_via_procedures(
        &mut self,
        r: &mut dyn SqlRunner,
        kind: TxnKind,
    ) -> PgResult<bool> {
        self.total_txns += 1;
        let w = self.rand_wh();
        let d = self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64);
        let c = self.rng.random_range(1..=self.cfg.customers_per_district as i64);
        let crossed = match kind {
            TxnKind::NewOrder => {
                let ol_cnt = self.rng.random_range(5..=15i64);
                let mut crossed = false;
                let mut lines = Vec::new();
                for n in 1..=ol_cnt {
                    let item = self.rng.random_range(1..=self.cfg.items as i64);
                    let supply_w = if self.rng.random_bool(self.cfg.remote_item_fraction) {
                        self.other_wh(w)
                    } else {
                        w
                    };
                    crossed |= supply_w != w;
                    let qty = self.rng.random_range(1..=10i64);
                    lines.push(format!("[{n},{item},{supply_w},{qty}]"));
                }
                r.run(&format!(
                    "SELECT tpcc_new_order({w}, {d}, {c}, '[{}]')",
                    lines.join(",")
                ))?;
                self.new_orders += 1;
                crossed
            }
            TxnKind::Payment => {
                let (c_w, c_d) = if self.rng.random_bool(self.cfg.remote_payment_fraction) {
                    (
                        self.other_wh(w),
                        self.rng.random_range(1..=self.cfg.districts_per_warehouse as i64),
                    )
                } else {
                    (w, d)
                };
                let amount = self.rng.random_range(100..500000) as f64 / 100.0;
                r.run(&format!(
                    "SELECT tpcc_payment({w}, {d}, {c_w}, {c_d}, {c}, {amount})"
                ))?;
                c_w != w
            }
            TxnKind::OrderStatus => {
                r.run(&format!("SELECT tpcc_order_status({w}, {d}, {c})"))?;
                false
            }
            TxnKind::Delivery => {
                let carrier = self.rng.random_range(1..=10i64);
                r.run(&format!("SELECT tpcc_delivery({w}, {d}, {carrier})"))?;
                false
            }
            TxnKind::StockLevel => {
                let threshold = self.rng.random_range(10..=20i64);
                r.run(&format!("SELECT tpcc_stock_level({w}, {threshold})"))?;
                false
            }
        };
        if crossed {
            self.cross_warehouse_txns += 1;
        }
        Ok(crossed)
    }
}
