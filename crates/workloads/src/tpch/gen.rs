//! dbgen-lite: deterministic TPC-H data generation at fractional scale
//! factors, preserving the value distributions the queries' filters select
//! on (dates 1992–1998, 5 regions / 25 nations, segments, ship modes,
//! brands/types/containers).

use crate::runner::SqlRunner;
use pgmini::error::PgResult;
use pgmini::types::{Datum, Row};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
pub const PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
pub const TYPES_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPES_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPES_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
pub const CONTAINERS: [&str; 8] = [
    "SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR",
];

/// Row counts at a given scale factor (SF1 = the spec's base cardinalities).
#[derive(Debug, Clone, Copy)]
pub struct Cardinalities {
    pub customers: u64,
    pub orders: u64,
    pub parts: u64,
    pub suppliers: u64,
}

pub fn cardinalities(sf: f64) -> Cardinalities {
    Cardinalities {
        customers: ((150_000.0 * sf) as u64).max(20),
        orders: ((1_500_000.0 * sf) as u64).max(200),
        parts: ((200_000.0 * sf) as u64).max(40),
        suppliers: ((10_000.0 * sf) as u64).max(5),
    }
}

fn date(rng: &mut StdRng, from_year: i64, to_year: i64) -> String {
    format!(
        "{}-{:02}-{:02}",
        rng.random_range(from_year..=to_year),
        rng.random_range(1..=12),
        rng.random_range(1..=28)
    )
}

/// Generate and load the full schema at scale factor `sf`. Returns the
/// number of lineitem rows loaded.
pub fn load(r: &mut dyn SqlRunner, sf: f64, seed: u64) -> PgResult<u64> {
    let card = cardinalities(sf);
    let mut rng = StdRng::seed_from_u64(seed);

    let regions: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, n)| vec![Datum::Int(i as i64), Datum::Text(n.to_string())])
        .collect();
    r.copy("region", &[], regions)?;

    let nations: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (n, region))| {
            vec![Datum::Int(i as i64), Datum::Text(n.to_string()), Datum::Int(*region)]
        })
        .collect();
    r.copy("nation", &[], nations)?;

    let suppliers: Vec<Row> = (0..card.suppliers as i64)
        .map(|s| {
            vec![
                Datum::Int(s),
                Datum::Text(format!("Supplier#{s:09}")),
                Datum::Text(format!("addr-{s}")),
                Datum::Int(rng.random_range(0..25)),
                Datum::Text(format!("{}-555-{s:04}", rng.random_range(10..35))),
                Datum::Float(rng.random_range(-99999..999999) as f64 / 100.0),
                Datum::Text(if s % 17 == 0 {
                    "Customer Complaints noted".to_string()
                } else {
                    format!("supplier comment {s}")
                }),
            ]
        })
        .collect();
    r.copy("supplier", &[], suppliers)?;

    let customers: Vec<Row> = (0..card.customers as i64)
        .map(|c| {
            vec![
                Datum::Int(c),
                Datum::Text(format!("Customer#{c:09}")),
                Datum::Text(format!("addr-{c}")),
                Datum::Int(rng.random_range(0..25)),
                Datum::Text(format!("{}-555-{c:04}", rng.random_range(10..35))),
                Datum::Float(rng.random_range(-99999..999999) as f64 / 100.0),
                Datum::Text(SEGMENTS[rng.random_range(0..SEGMENTS.len())].to_string()),
                Datum::Text(format!("customer comment {c}")),
            ]
        })
        .collect();
    r.copy("customer", &[], customers)?;

    let parts: Vec<Row> = (0..card.parts as i64)
        .map(|p| {
            let ty = format!(
                "{} {} {}",
                TYPES_S1[rng.random_range(0..TYPES_S1.len())],
                TYPES_S2[rng.random_range(0..TYPES_S2.len())],
                TYPES_S3[rng.random_range(0..TYPES_S3.len())],
            );
            vec![
                Datum::Int(p),
                Datum::Text(format!("part name {} {p}", TYPES_S3[(p % 5) as usize].to_lowercase())),
                Datum::Text(format!("Manufacturer#{}", p % 5 + 1)),
                Datum::Text(format!("Brand#{}{}", p % 5 + 1, p % 4 + 1)),
                Datum::Text(ty),
                Datum::Int(rng.random_range(1..=50)),
                Datum::Text(CONTAINERS[rng.random_range(0..CONTAINERS.len())].to_string()),
                Datum::Float(900.0 + (p % 1000) as f64 / 10.0),
            ]
        })
        .collect();
    r.copy("part", &[], parts)?;

    let mut partsupp: Vec<Row> = Vec::new();
    for p in 0..card.parts as i64 {
        for k in 0..4i64 {
            partsupp.push(vec![
                Datum::Int(p),
                Datum::Int((p + k * (card.suppliers as i64 / 4).max(1)) % card.suppliers as i64),
                Datum::Int(rng.random_range(1..10000)),
                Datum::Float(rng.random_range(100..100000) as f64 / 100.0),
            ]);
        }
        if partsupp.len() >= 4000 {
            r.copy("partsupp", &[], std::mem::take(&mut partsupp))?;
        }
    }
    if !partsupp.is_empty() {
        r.copy("partsupp", &[], partsupp)?;
    }

    // orders + lineitem, streamed in batches
    let mut orders: Vec<Row> = Vec::new();
    let mut lineitems: Vec<Row> = Vec::new();
    let mut lineitem_count = 0u64;
    for o in 0..card.orders as i64 {
        let orderdate = date(&mut rng, 1992, 1998);
        let line_count = rng.random_range(1..=7i64);
        let mut total = 0.0;
        for l in 1..=line_count {
            let qty = rng.random_range(1..=50i64) as f64;
            let price = rng.random_range(90000..200000) as f64 / 100.0;
            let discount = rng.random_range(0..=10i64) as f64 / 100.0;
            let tax = rng.random_range(0..=8i64) as f64 / 100.0;
            total += price * qty * (1.0 - discount);
            let shipdate = date(&mut rng, 1992, 1998);
            let commit_offset = rng.random_range(-30..60i64);
            let receipt_offset = rng.random_range(1..30i64);
            let returnflag = match rng.random_range(0..3u8) {
                0 => "R",
                1 => "A",
                _ => "N",
            };
            lineitems.push(vec![
                Datum::Int(o),
                Datum::Int(rng.random_range(0..card.parts as i64)),
                Datum::Int(rng.random_range(0..card.suppliers as i64)),
                Datum::Int(l),
                Datum::Float(qty),
                Datum::Float(price),
                Datum::Float(discount),
                Datum::Float(tax),
                Datum::Text(returnflag.to_string()),
                Datum::Text(if rng.random_bool(0.5) { "O" } else { "F" }.to_string()),
                Datum::Text(shipdate.clone()),
                Datum::Text(offset_date(&shipdate, commit_offset)),
                Datum::Text(offset_date(&shipdate, receipt_offset)),
                Datum::Text(if rng.random_bool(0.25) {
                    "DELIVER IN PERSON"
                } else {
                    "NONE"
                }
                .to_string()),
                Datum::Text(SHIP_MODES[rng.random_range(0..SHIP_MODES.len())].to_string()),
            ]);
            lineitem_count += 1;
        }
        orders.push(vec![
            Datum::Int(o),
            Datum::Int(rng.random_range(0..card.customers as i64)),
            Datum::Text(if rng.random_bool(0.5) { "O" } else { "F" }.to_string()),
            Datum::Float(total),
            Datum::Text(orderdate),
            Datum::Text(PRIORITIES[rng.random_range(0..PRIORITIES.len())].to_string()),
            Datum::Int(0),
        ]);
        // each COPY becomes one columnar stripe per target shard: flush in
        // large chunks so per-shard stripes fill whole execution batches
        // instead of fragmenting into kernel-dispatch-sized slivers
        if orders.len() >= 10_000 {
            r.copy("orders", &[], std::mem::take(&mut orders))?;
            r.copy("lineitem", &[], std::mem::take(&mut lineitems))?;
        }
    }
    if !orders.is_empty() {
        r.copy("orders", &[], orders)?;
        r.copy("lineitem", &[], lineitems)?;
    }
    Ok(lineitem_count)
}

/// Shift a YYYY-MM-DD date by `days` (string-level, via the engine's civil
/// math so generated dates stay valid).
fn offset_date(base: &str, days: i64) -> String {
    use pgmini::types::time;
    let micros = time::parse_timestamp(base).unwrap_or(0) + days * time::MICROS_PER_DAY;
    time::format_timestamp(micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let c = cardinalities(0.01);
        assert_eq!(c.customers, 1500);
        assert_eq!(c.orders, 15_000);
        let tiny = cardinalities(0.0);
        assert!(tiny.customers >= 20, "floors apply");
    }

    #[test]
    fn offset_dates_stay_valid() {
        assert_eq!(offset_date("1994-01-31", 1), "1994-02-01");
        assert_eq!(offset_date("1994-01-01", -1), "1993-12-31");
    }
}
