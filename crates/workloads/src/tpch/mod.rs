//! TPC-H-derived data-warehousing workload (§4.4).
//!
//! The paper distributes and co-locates `lineitem` and `orders` by order key
//! and converts the smaller tables to reference tables, then runs the 18 of
//! 22 TPC-H queries Citus 9.5 supported over a single session. This module
//! provides the schema, a dbgen-lite generator, and the same 18/22 split
//! (the four unsupported queries need correlated subqueries or nested
//! non-distribution-key aggregation).

pub mod gen;
pub mod queries;

/// CREATE TABLE statements for the TPC-H schema.
pub fn schema_statements() -> Vec<String> {
    vec![
        "CREATE TABLE region (r_regionkey bigint PRIMARY KEY, r_name text)".into(),
        "CREATE TABLE nation (n_nationkey bigint PRIMARY KEY, n_name text, \
         n_regionkey bigint)"
            .into(),
        "CREATE TABLE supplier (s_suppkey bigint PRIMARY KEY, s_name text, s_address text, \
         s_nationkey bigint, s_phone text, s_acctbal float, s_comment text)"
            .into(),
        "CREATE TABLE customer (c_custkey bigint PRIMARY KEY, c_name text, c_address text, \
         c_nationkey bigint, c_phone text, c_acctbal float, c_mktsegment text, c_comment text)"
            .into(),
        "CREATE TABLE part (p_partkey bigint PRIMARY KEY, p_name text, p_mfgr text, \
         p_brand text, p_type text, p_size bigint, p_container text, p_retailprice float)"
            .into(),
        "CREATE TABLE partsupp (ps_partkey bigint, ps_suppkey bigint, ps_availqty bigint, \
         ps_supplycost float, PRIMARY KEY (ps_partkey, ps_suppkey))"
            .into(),
        // the fact tables are append-only analytics targets: columnar
        // storage (no primary keys — columnar tables reject constraints)
        // puts them on the vectorized scan→filter→aggregate path
        "CREATE TABLE orders (o_orderkey bigint, o_custkey bigint, \
         o_orderstatus text, o_totalprice float, o_orderdate timestamp, \
         o_orderpriority text, o_shippriority bigint) USING columnar"
            .into(),
        "CREATE TABLE lineitem (l_orderkey bigint, l_partkey bigint, l_suppkey bigint, \
         l_linenumber bigint, l_quantity float, l_extendedprice float, l_discount float, \
         l_tax float, l_returnflag text, l_linestatus text, l_shipdate timestamp, \
         l_commitdate timestamp, l_receiptdate timestamp, l_shipinstruct text, \
         l_shipmode text) USING columnar"
            .into(),
    ]
}

/// The paper's distribution: `lineitem` + `orders` co-located by order key,
/// everything else replicated.
pub fn distribution_statements() -> Vec<String> {
    vec![
        "SELECT create_reference_table('region')".into(),
        "SELECT create_reference_table('nation')".into(),
        "SELECT create_reference_table('supplier')".into(),
        "SELECT create_reference_table('customer')".into(),
        "SELECT create_reference_table('part')".into(),
        "SELECT create_reference_table('partsupp')".into(),
        "SELECT create_distributed_table('orders', 'o_orderkey')".into(),
        "SELECT create_distributed_table('lineitem', 'l_orderkey', 'orders')".into(),
    ]
}

/// Simulated row widths of the full-size tables (SF100 ≈ 135 GB).
pub const SIM_WIDTHS: &[(&str, u32)] = &[
    ("lineitem", 130),
    ("orders", 110),
    ("customer", 160),
    ("part", 160),
    ("partsupp", 145),
    ("supplier", 160),
    ("nation", 120),
    ("region", 120),
];

#[cfg(test)]
mod tests {
    #[test]
    fn schema_and_distribution_parse() {
        for s in super::schema_statements() {
            sqlparse::parse(&s).unwrap();
        }
        for s in super::distribution_statements() {
            sqlparse::parse(&s).unwrap();
        }
    }
}
