//! The 22 TPC-H queries, adapted to the engine's SQL dialect. 18 are
//! supported (the paper's Citus 9.5 count); Q2, Q13, Q17, and Q20 are not —
//! they need correlated subqueries or nested aggregation on a
//! non-distribution key, the §7 "future work" features. Where the standard
//! text uses a correlated form that has a well-known uncorrelated rewrite
//! (Q4, Q21, Q22), the rewrite is used, as analysts do in practice.
//!
//! Interval arithmetic is resolved to literal dates (the parameters are the
//! TPC-H validation defaults).

/// Queries Citus-style planning supports (18 of 22, like the paper).
pub const SUPPORTED: [u32; 18] =
    [1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15, 16, 18, 19, 21, 22];

/// Queries requiring correlated subqueries / nested non-distribution-key
/// aggregation.
pub const UNSUPPORTED: [u32; 4] = [2, 13, 17, 20];

/// The SQL text of query `n` (1-22), or `None` when unsupported.
pub fn query(n: u32) -> Option<String> {
    let q = match n {
        1 => {
            "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
                    sum(l_extendedprice) AS sum_base_price, \
                    sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
                    avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, \
                    avg(l_discount) AS avg_disc, count(*) AS count_order \
             FROM lineitem \
             WHERE l_shipdate <= date '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus"
        }
        3 => {
            "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue, \
                    o_orderdate, o_shippriority \
             FROM customer, orders, lineitem \
             WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey \
               AND l_orderkey = o_orderkey \
               AND o_orderdate < date '1995-03-15' AND l_shipdate > date '1995-03-15' \
             GROUP BY l_orderkey, o_orderdate, o_shippriority \
             ORDER BY revenue DESC, o_orderdate LIMIT 10"
        }
        4 => {
            // decorrelated EXISTS → IN over the distributed subplan
            "SELECT o_orderpriority, count(*) AS order_count \
             FROM orders \
             WHERE o_orderdate >= date '1993-07-01' AND o_orderdate < date '1993-10-01' \
               AND o_orderkey IN \
                   (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate) \
             GROUP BY o_orderpriority ORDER BY o_orderpriority"
        }
        5 => {
            "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM customer, orders, lineitem, supplier, nation, region \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
               AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
               AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
               AND r_name = 'ASIA' \
               AND o_orderdate >= date '1994-01-01' AND o_orderdate < date '1995-01-01' \
             GROUP BY n_name ORDER BY revenue DESC"
        }
        6 => {
            "SELECT sum(l_extendedprice * l_discount) AS revenue \
             FROM lineitem \
             WHERE l_shipdate >= date '1994-01-01' AND l_shipdate < date '1995-01-01' \
               AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
        }
        7 => {
            // flattened form of the shipping-volume query
            "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
                    extract(year FROM l_shipdate) AS l_year, \
                    sum(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM supplier, lineitem, orders, customer, nation n1, nation n2 \
             WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey \
               AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey \
               AND c_nationkey = n2.n_nationkey \
               AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
                 OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) \
               AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31' \
             GROUP BY 1, 2, 3 ORDER BY 1, 2, 3"
        }
        8 => {
            "SELECT extract(year FROM o_orderdate) AS o_year, \
                    sum(CASE WHEN n2.n_name = 'BRAZIL' \
                             THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) \
                    / sum(l_extendedprice * (1 - l_discount)) AS mkt_share \
             FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
             WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey \
               AND l_orderkey = o_orderkey AND o_custkey = c_custkey \
               AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey \
               AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey \
               AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31' \
               AND p_type = 'ECONOMY ANODIZED STEEL' \
             GROUP BY 1 ORDER BY 1"
        }
        9 => {
            "SELECT n_name AS nation, extract(year FROM o_orderdate) AS o_year, \
                    sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) \
                      AS sum_profit \
             FROM part, supplier, lineitem, partsupp, orders, nation \
             WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey \
               AND ps_partkey = l_partkey AND p_partkey = l_partkey \
               AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey \
               AND p_name LIKE '%tin%' \
             GROUP BY 1, 2 ORDER BY 1, 2 DESC"
        }
        10 => {
            "SELECT c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) AS revenue, \
                    c_acctbal, n_name, c_address, c_phone \
             FROM customer, orders, lineitem, nation \
             WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
               AND o_orderdate >= date '1993-10-01' AND o_orderdate < date '1994-01-01' \
               AND l_returnflag = 'R' AND c_nationkey = n_nationkey \
             GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address \
             ORDER BY revenue DESC LIMIT 20"
        }
        11 => {
            "SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value \
             FROM partsupp, supplier, nation \
             WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey \
               AND n_name = 'GERMANY' \
             GROUP BY ps_partkey \
             HAVING sum(ps_supplycost * ps_availqty) > \
                    (SELECT sum(ps_supplycost * ps_availqty) * 0.0001 \
                     FROM partsupp, supplier, nation \
                     WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey \
                       AND n_name = 'GERMANY') \
             ORDER BY value DESC"
        }
        12 => {
            "SELECT l_shipmode, \
                    sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' \
                             THEN 1 ELSE 0 END) AS high_line_count, \
                    sum(CASE WHEN o_orderpriority <> '1-URGENT' \
                              AND o_orderpriority <> '2-HIGH' \
                             THEN 1 ELSE 0 END) AS low_line_count \
             FROM orders, lineitem \
             WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') \
               AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate \
               AND l_receiptdate >= date '1994-01-01' AND l_receiptdate < date '1995-01-01' \
             GROUP BY l_shipmode ORDER BY l_shipmode"
        }
        14 => {
            "SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%' \
                                     THEN l_extendedprice * (1 - l_discount) \
                                     ELSE 0.0 END) \
                    / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue \
             FROM lineitem, part \
             WHERE l_partkey = p_partkey \
               AND l_shipdate >= date '1995-09-01' AND l_shipdate < date '1995-10-01'"
        }
        15 => {
            // top-revenue supplier via ORDER BY .. LIMIT (the view + max()
            // formulation needs nested aggregation; ties resolved arbitrarily)
            "SELECT l_suppkey AS supplier_no, \
                    sum(l_extendedprice * (1 - l_discount)) AS total_revenue \
             FROM lineitem \
             WHERE l_shipdate >= date '1996-01-01' AND l_shipdate < date '1996-04-01' \
             GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 1"
        }
        16 => {
            "SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt \
             FROM partsupp, part \
             WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45' \
               AND p_type NOT LIKE 'MEDIUM POLISHED%' \
               AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
               AND ps_suppkey NOT IN \
                   (SELECT s_suppkey FROM supplier \
                    WHERE s_comment LIKE '%Customer%Complaints%') \
             GROUP BY p_brand, p_type, p_size \
             ORDER BY supplier_cnt DESC, p_brand, p_type, p_size LIMIT 50"
        }
        18 => {
            "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
                    sum(l_quantity) \
             FROM customer, orders, lineitem \
             WHERE o_orderkey IN \
                   (SELECT l_orderkey FROM lineitem \
                    GROUP BY l_orderkey HAVING sum(l_quantity) > 300) \
               AND c_custkey = o_custkey AND o_orderkey = l_orderkey \
             GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
             ORDER BY o_totalprice DESC, o_orderdate LIMIT 100"
        }
        19 => {
            "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue \
             FROM lineitem, part \
             WHERE p_partkey = l_partkey \
               AND ((p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11 \
                     AND p_size BETWEEN 1 AND 5) \
                 OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20 \
                     AND p_size BETWEEN 1 AND 10) \
                 OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30 \
                     AND p_size BETWEEN 1 AND 15))"
        }
        21 => {
            // decorrelated: "another supplier on the order" → the order has
            // >1 distinct suppliers; "no other supplier was late" → exactly
            // one distinct late supplier (l1 itself is late)
            "SELECT s_name, count(*) AS numwait \
             FROM supplier, lineitem l1, orders, nation \
             WHERE s_suppkey = l1.l_suppkey AND o_orderkey = l1.l_orderkey \
               AND o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
               AND l1.l_orderkey IN \
                   (SELECT l_orderkey FROM lineitem \
                    GROUP BY l_orderkey HAVING count(DISTINCT l_suppkey) > 1) \
               AND l1.l_orderkey NOT IN \
                   (SELECT l_orderkey FROM lineitem \
                    WHERE l_receiptdate > l_commitdate \
                    GROUP BY l_orderkey HAVING count(DISTINCT l_suppkey) > 1) \
               AND s_nationkey = n_nationkey AND n_name = 'SAUDI ARABIA' \
             GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100"
        }
        22 => {
            // decorrelated NOT EXISTS → NOT IN over the orders subplan
            "SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal FROM \
               (SELECT substr(c_phone, 1, 2) AS cntrycode, c_acctbal FROM customer \
                WHERE substr(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17') \
                  AND c_acctbal > (SELECT avg(c_acctbal) FROM customer \
                                   WHERE c_acctbal > 0.0 AND substr(c_phone, 1, 2) IN \
                                         ('13', '31', '23', '29', '30', '18', '17')) \
                  AND c_custkey NOT IN (SELECT o_custkey FROM orders)) AS custsale \
             GROUP BY cntrycode ORDER BY cntrycode"
        }
        2 | 13 | 17 | 20 => return None,
        _ => return None,
    };
    Some(q.to_string())
}

/// Why each unsupported query is unsupported (for EXPERIMENTS.md).
pub fn unsupported_reason(n: u32) -> Option<&'static str> {
    Some(match n {
        2 => "correlated subquery (min supplycost per part)",
        13 => "nested aggregation over a non-distribution-key group (order counts per customer, then a histogram)",
        17 => "correlated subquery (average quantity per part)",
        20 => "doubly-nested correlated subqueries (available quantity per part/supplier)",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_supported_four_not() {
        assert_eq!(SUPPORTED.len(), 18);
        assert_eq!(UNSUPPORTED.len(), 4);
        let mut all: Vec<u32> = SUPPORTED.iter().chain(UNSUPPORTED.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (1..=22).collect::<Vec<u32>>());
        for n in SUPPORTED {
            assert!(query(n).is_some(), "q{n} should have text");
        }
        for n in UNSUPPORTED {
            assert!(query(n).is_none());
            assert!(unsupported_reason(n).is_some());
        }
    }

    #[test]
    fn all_supported_queries_parse() {
        for n in SUPPORTED {
            let text = query(n).unwrap();
            sqlparse::parse(&text).unwrap_or_else(|e| panic!("q{n}: {e}"));
        }
    }
}
