//! YCSB — the Yahoo! Cloud Serving Benchmark (§4.3) for high-performance
//! CRUD. Workload A (50% reads / 50% updates, the paper's Figure 10 setup)
//! plus the other standard mixes, with uniform and zipfian key choosers.

use crate::runner::SqlRunner;
use pgmini::error::PgResult;
use pgmini::types::{Datum, Row};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub const FIELD_COUNT: usize = 10;

/// The standard YCSB workload mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 50% read / 50% update.
    A,
    /// 95% read / 5% update.
    B,
    /// 100% read.
    C,
    /// 95% read / 5% insert (read latest).
    D,
    /// 95% scan / 5% insert.
    E,
    /// 50% read / 50% read-modify-write.
    F,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Read,
    Update,
    Insert,
    Scan,
    ReadModifyWrite,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    Uniform,
    Zipfian,
}

#[derive(Debug, Clone)]
pub struct YcsbConfig {
    pub record_count: u64,
    pub workload: Workload,
    pub distribution: Distribution,
    /// Zipf exponent (YCSB default 0.99).
    pub zipf_theta: f64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            record_count: 10_000,
            workload: Workload::A,
            distribution: Distribution::Uniform,
            zipf_theta: 0.99,
        }
    }
}

/// `usertable` schema: text key + 10 text fields, like the JDBC binding.
pub fn schema_statement() -> String {
    let fields: Vec<String> =
        (0..FIELD_COUNT).map(|i| format!("field{i} text")).collect();
    format!("CREATE TABLE usertable (ycsb_key text PRIMARY KEY, {})", fields.join(", "))
}

pub fn distribution_statement() -> String {
    "SELECT create_distributed_table('usertable', 'ycsb_key')".to_string()
}

/// The full-size benchmark has 100M × ~1 KB rows (~100 GB).
pub const SIM_ROW_WIDTH: u32 = 1100;

pub fn key_name(id: u64) -> String {
    format!("user{id:012}")
}

fn field_value(rng: &mut StdRng) -> String {
    // 100-byte fields like YCSB's default
    let len = 100;
    (0..len).map(|_| (b'a' + rng.random_range(0..26u8)) as char).collect()
}

/// Load `record_count` rows via COPY.
pub fn load(r: &mut dyn SqlRunner, cfg: &YcsbConfig, seed: u64) -> PgResult<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch: Vec<Row> = Vec::with_capacity(1000);
    for id in 0..cfg.record_count {
        let mut row = vec![Datum::Text(key_name(id))];
        for _ in 0..FIELD_COUNT {
            row.push(Datum::Text(field_value(&mut rng)));
        }
        batch.push(row);
        if batch.len() == 1000 {
            r.copy("usertable", &[], std::mem::take(&mut batch))?;
        }
    }
    if !batch.is_empty() {
        r.copy("usertable", &[], batch)?;
    }
    Ok(())
}

/// One client's operation generator.
pub struct YcsbDriver {
    pub cfg: YcsbConfig,
    rng: StdRng,
    insert_seq: u64,
    zipf_zeta: f64,
    pub ops: u64,
}

impl YcsbDriver {
    pub fn new(cfg: YcsbConfig, seed: u64) -> Self {
        let zipf_zeta = match cfg.distribution {
            Distribution::Zipfian => zeta(cfg.record_count, cfg.zipf_theta),
            Distribution::Uniform => 0.0,
        };
        let insert_seq = cfg.record_count;
        YcsbDriver { cfg, rng: StdRng::seed_from_u64(seed), insert_seq, zipf_zeta, ops: 0 }
    }

    pub fn next_op(&mut self) -> Op {
        let x = self.rng.random_range(0..100u32);
        match self.cfg.workload {
            Workload::A => {
                if x < 50 {
                    Op::Read
                } else {
                    Op::Update
                }
            }
            Workload::B => {
                if x < 95 {
                    Op::Read
                } else {
                    Op::Update
                }
            }
            Workload::C => Op::Read,
            Workload::D => {
                if x < 95 {
                    Op::Read
                } else {
                    Op::Insert
                }
            }
            Workload::E => {
                if x < 95 {
                    Op::Scan
                } else {
                    Op::Insert
                }
            }
            Workload::F => {
                if x < 50 {
                    Op::Read
                } else {
                    Op::ReadModifyWrite
                }
            }
        }
    }

    fn next_key(&mut self) -> u64 {
        match self.cfg.distribution {
            Distribution::Uniform => self.rng.random_range(0..self.cfg.record_count),
            Distribution::Zipfian => {
                // Gray et al. quick zipfian over [0, n)
                let n = self.cfg.record_count;
                let theta = self.cfg.zipf_theta;
                let alpha = 1.0 / (1.0 - theta);
                let zetan = self.zipf_zeta;
                let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta))
                    / (1.0 - zeta(2, theta) / zetan);
                let u: f64 = self.rng.random();
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(theta) {
                    1
                } else {
                    ((n as f64) * (eta * u - eta + 1.0).powf(alpha)) as u64 % n
                }
            }
        }
    }

    /// Run one operation. Returns the op kind executed.
    pub fn run(&mut self, r: &mut dyn SqlRunner) -> PgResult<Op> {
        let op = self.next_op();
        self.ops += 1;
        let mut rng_field = self.rng.random_range(0..FIELD_COUNT);
        match op {
            Op::Read => {
                let k = key_name(self.next_key());
                r.run(&format!("SELECT * FROM usertable WHERE ycsb_key = '{k}'"))?;
            }
            Op::Update => {
                let k = key_name(self.next_key());
                let v = field_value(&mut self.rng);
                r.run(&format!(
                    "UPDATE usertable SET field{rng_field} = '{v}' WHERE ycsb_key = '{k}'"
                ))?;
            }
            Op::Insert => {
                self.insert_seq += 1;
                let k = key_name(self.insert_seq);
                let mut values = vec![format!("'{k}'")];
                for _ in 0..FIELD_COUNT {
                    values.push(format!("'{}'", field_value(&mut self.rng)));
                }
                r.run(&format!("INSERT INTO usertable VALUES ({})", values.join(", ")))?;
            }
            Op::Scan => {
                let k = key_name(self.next_key());
                let len = self.rng.random_range(1..=100u32);
                r.run(&format!(
                    "SELECT * FROM usertable WHERE ycsb_key >= '{k}' ORDER BY ycsb_key LIMIT {len}"
                ))?;
            }
            Op::ReadModifyWrite => {
                let k = key_name(self.next_key());
                r.run(&format!("SELECT * FROM usertable WHERE ycsb_key = '{k}'"))?;
                let v = field_value(&mut self.rng);
                rng_field = self.rng.random_range(0..FIELD_COUNT);
                r.run(&format!(
                    "UPDATE usertable SET field{rng_field} = '{v}' WHERE ycsb_key = '{k}'"
                ))?;
            }
        }
        Ok(op)
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    let cap = n.min(10_000);
    let mut sum = 0.0;
    for i in 1..=cap {
        sum += 1.0 / (i as f64).powf(theta);
    }
    // extrapolate the tail for large n (integral approximation)
    if n > cap {
        sum += ((n as f64).powf(1.0 - theta) - (cap as f64).powf(1.0 - theta)) / (1.0 - theta);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_a_mix_is_half_half() {
        let mut d = YcsbDriver::new(YcsbConfig::default(), 7);
        let mut reads = 0;
        for _ in 0..10_000 {
            if d.next_op() == Op::Read {
                reads += 1;
            }
        }
        assert!((reads as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn zipfian_skews_towards_low_keys() {
        let cfg = YcsbConfig {
            distribution: Distribution::Zipfian,
            record_count: 1000,
            ..Default::default()
        };
        let mut d = YcsbDriver::new(cfg, 11);
        let mut low = 0;
        for _ in 0..10_000 {
            if d.next_key() < 100 {
                low += 1;
            }
        }
        // zipf(0.99): the first 10% of keys draw far more than 10% of accesses
        assert!(low > 4_000, "zipfian skew too weak: {low}");
    }

    #[test]
    fn uniform_covers_the_space() {
        let mut d = YcsbDriver::new(YcsbConfig::default(), 13);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(d.next_key() / 1000);
        }
        assert_eq!(seen.len(), 10, "all deciles hit");
    }

    #[test]
    fn schema_parses() {
        sqlparse::parse(&schema_statement()).unwrap();
        sqlparse::parse(&distribution_statement()).unwrap();
    }

    #[test]
    fn keys_are_fixed_width_ordered() {
        assert!(key_name(5) < key_name(10));
        assert!(key_name(99) < key_name(100));
    }
}
