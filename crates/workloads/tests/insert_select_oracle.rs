//! Differential-oracle coverage for distributed INSERT .. SELECT (all three
//! §3.8 strategies) and TPC-C stored-procedure delegation (§4.1).
//!
//! Every write goes through [`MirrorRunner`], which executes it on the
//! cluster and on a single-node pgmini oracle and compares affected counts;
//! verification reads compare full result sets. Procedure calls only exist
//! on the cluster, so their bodies are mirrored on the oracle as the
//! equivalent inline SQL with the same fixed parameters.

use citrus::cluster::{Cluster, ClusterConfig};
use citrus::insert_select::InsertSelectStrategy;
use citrus::metadata::NodeId;
use pgmini::engine::Engine;
use std::sync::Arc;
use workloads::runner::{ClusterRunner, LocalRunner, SqlRunner};
use workloads::sim::MirrorRunner;
use workloads::tpcc::{self, TpccConfig};

fn mirror(workers: usize) -> (Arc<Cluster>, MirrorRunner) {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = 8;
    let c = Cluster::new(cfg);
    for _ in 0..workers {
        c.add_worker().unwrap();
    }
    let oracle = Engine::new_default();
    let dist = ClusterRunner { session: c.session().unwrap() };
    let local = LocalRunner { session: oracle.session().unwrap() };
    (c, MirrorRunner::new(dist, local))
}

fn strategy(c: &Arc<Cluster>, m: &mut MirrorRunner) -> Option<InsertSelectStrategy> {
    let ext = c.extension(NodeId(0)).unwrap();
    ext.last_insert_select_strategy(m.dist.session_id().expect("cluster runner has a session"))
}

#[test]
fn insert_select_strategies_match_oracle() {
    let (c, mut m) = mirror(2);
    m.run("CREATE TABLE src (k bigint, v bigint)").unwrap();
    m.run("SELECT create_distributed_table('src', 'k')").unwrap();
    m.run("CREATE TABLE dst (k bigint, v bigint)").unwrap();
    m.run("SELECT create_distributed_table('dst', 'k', 'src')").unwrap();
    m.run("CREATE TABLE agg (v bigint, total bigint)").unwrap();
    m.run("SELECT create_distributed_table('agg', 'v')").unwrap();
    for k in 0..50i64 {
        m.run(&format!("INSERT INTO src VALUES ({k}, {})", k % 7)).unwrap();
    }

    // 1. co-located pushdown: dist column fed by the source's dist column
    let r = m.run("INSERT INTO dst SELECT k, v FROM src").unwrap();
    assert_eq!(r.affected(), 50);
    assert_eq!(strategy(&c, &mut m), Some(InsertSelectStrategy::ColocatedPushdown));
    m.run("SELECT k, v FROM dst ORDER BY k").unwrap();

    // 2. repartition: co-located source, but the target's dist column is fed
    // by a non-distribution column, so rows land in foreign shards
    let r = m.run("INSERT INTO dst (k, v) SELECT v, k FROM src").unwrap();
    assert_eq!(r.affected(), 50);
    assert_eq!(strategy(&c, &mut m), Some(InsertSelectStrategy::Repartition));
    m.run("SELECT k, count(*) FROM dst GROUP BY k ORDER BY k").unwrap();

    // 3. pull to coordinator: grouping on a non-dist column forces a
    // coordinator merge before the rows can be distributed again
    let r = m.run("INSERT INTO agg (v, total) SELECT v, sum(k) FROM src GROUP BY v").unwrap();
    assert_eq!(r.affected(), 7);
    assert_eq!(strategy(&c, &mut m), Some(InsertSelectStrategy::PullToCoordinator));
    m.run("SELECT v, total FROM agg ORDER BY v").unwrap();
    m.run("SELECT sum(total) FROM agg").unwrap();

    assert!(m.divergence.is_none(), "divergence: {:?}", m.divergence);
    assert!(m.reads_checked >= 4 && m.writes_checked >= 53);
}

/// The §4.1 delegation path: whole TPC-C transactions run as one delegated
/// procedure call on the warehouse's node. The oracle executes the same
/// transaction bodies inline with the same fixed parameters; aggregate
/// probes over every table the procedures touch must agree.
#[test]
fn delegated_procedures_match_inline_oracle() {
    let (c, mut m) = mirror(2);
    let cfg = TpccConfig { warehouses: 2, ..TpccConfig::default() };
    for s in tpcc::schema_statements() {
        m.run(&s).unwrap();
    }
    for s in tpcc::distribution_statements() {
        m.run(&s).unwrap();
    }
    tpcc::load(&mut m, &cfg, 42).unwrap();
    assert!(m.divergence.is_none(), "divergence during load: {:?}", m.divergence);
    tpcc::register_procedures(&c).unwrap();

    // -- new order: w=1 d=1 c=5, two lines, the second supplied remotely
    // (supply_w=2) so the delegated transaction spans both workers (2PC)
    m.dist.run("SELECT tpcc_new_order(1, 1, 5, '[[1,3,1,7],[2,8,2,4]]')").unwrap();
    let o = &mut m.oracle;
    o.run("BEGIN").unwrap();
    let o_id = o
        .run("SELECT d_next_o_id FROM district WHERE d_w_id = 1 AND d_id = 1 FOR UPDATE")
        .unwrap()
        .scalar()
        .and_then(|v| v.as_i64().ok())
        .unwrap();
    o.run(&format!(
        "UPDATE district SET d_next_o_id = {} WHERE d_w_id = 1 AND d_id = 1",
        o_id + 1
    ))
    .unwrap();
    o.run(&format!("INSERT INTO orders VALUES (1, 1, {o_id}, 5, '2020-06-01', NULL, 2)"))
        .unwrap();
    o.run(&format!("INSERT INTO new_order VALUES (1, 1, {o_id})")).unwrap();
    for (n, item, supply_w, qty) in [(1i64, 3i64, 1i64, 7i64), (2, 8, 2, 4)] {
        let price = o
            .run(&format!("SELECT i_price FROM item WHERE i_id = {item}"))
            .unwrap()
            .scalar()
            .and_then(|v| v.as_f64().ok())
            .unwrap();
        o.run(&format!(
            "UPDATE stock SET s_quantity = s_quantity - {qty}, s_ytd = s_ytd + {qty} \
             WHERE s_w_id = {supply_w} AND s_i_id = {item}"
        ))
        .unwrap();
        o.run(&format!(
            "INSERT INTO order_line VALUES (1, 1, {o_id}, {n}, {item}, {supply_w}, {qty}, {})",
            price * qty as f64
        ))
        .unwrap();
    }
    o.run("COMMIT").unwrap();

    // -- payment: w=1 pays for a customer of warehouse 2 (cross-warehouse)
    m.dist.run("SELECT tpcc_payment(1, 1, 2, 1, 7, 123.45)").unwrap();
    let o = &mut m.oracle;
    o.run("BEGIN").unwrap();
    o.run("UPDATE warehouse SET w_ytd = w_ytd + 123.45 WHERE w_id = 1").unwrap();
    o.run("UPDATE district SET d_ytd = d_ytd + 123.45 WHERE d_w_id = 1 AND d_id = 1").unwrap();
    o.run(
        "UPDATE customer SET c_balance = c_balance - 123.45, \
         c_ytd_payment = c_ytd_payment + 123.45 \
         WHERE c_w_id = 2 AND c_d_id = 1 AND c_id = 7",
    )
    .unwrap();
    o.run("INSERT INTO history VALUES (1, 1, 7, 123.45, '2020-06-01')").unwrap();
    o.run("COMMIT").unwrap();

    // -- delivery: drains the oldest new_order of (w=1, d=1) — the one the
    // new-order call above created
    m.dist.run("SELECT tpcc_delivery(1, 1, 9)").unwrap();
    let o = &mut m.oracle;
    o.run("BEGIN").unwrap();
    let oldest = o
        .run("SELECT no_o_id FROM new_order WHERE no_w_id = 1 AND no_d_id = 1 \
              ORDER BY no_o_id LIMIT 1")
        .unwrap()
        .scalar()
        .and_then(|v| v.as_i64().ok())
        .unwrap();
    o.run(&format!(
        "DELETE FROM new_order WHERE no_w_id = 1 AND no_d_id = 1 AND no_o_id = {oldest}"
    ))
    .unwrap();
    o.run(&format!(
        "UPDATE orders SET o_carrier_id = 9 WHERE o_w_id = 1 AND o_d_id = 1 AND o_id = {oldest}"
    ))
    .unwrap();
    o.run("COMMIT").unwrap();

    // -- stock level: read-only, no oracle writes to mirror
    m.dist.run("SELECT tpcc_stock_level(1, 15)").unwrap();

    // aggregate probes over every table the procedures touched
    for probe in [
        "SELECT sum(d_next_o_id), sum(d_ytd) FROM district",
        "SELECT sum(w_ytd) FROM warehouse",
        "SELECT count(*), sum(o_ol_cnt) FROM orders",
        "SELECT count(*) FROM new_order",
        "SELECT sum(s_quantity), sum(s_ytd) FROM stock",
        "SELECT count(*), sum(ol_quantity), sum(ol_amount) FROM order_line",
        "SELECT sum(c_balance), sum(c_ytd_payment) FROM customer",
        "SELECT count(*), sum(h_amount) FROM history",
    ] {
        m.run(probe).unwrap_or_else(|e| panic!("probe `{probe}`: {e:?}"));
    }
    assert!(m.divergence.is_none(), "divergence: {:?}", m.divergence);
    assert!(m.reads_checked >= 8);
}
