//! Seed determinism of the workload drivers: the same seed must produce a
//! byte-identical statement stream — SQL text and COPY batch fingerprints —
//! and different seeds must not. This is the foundation the simulation
//! harness's replay-by-seed contract rests on: if the drivers ever consult
//! wall-clock time, thread identity, or an unseeded RNG, these tests go red
//! before the chaos corpus starts flaking.

use workloads::gharchive;
use workloads::pgbench::{self, PgbenchConfig, PgbenchDriver};
use workloads::sim::RecordingRunner;
use workloads::tpcc::{self, TpccConfig, TpccDriver};
use workloads::tpch;
use workloads::ycsb::{self, YcsbConfig, YcsbDriver};

fn tpcc_stream(seed: u64) -> Vec<String> {
    let mut r = RecordingRunner::default();
    let cfg = TpccConfig { warehouses: 2, ..TpccConfig::default() };
    tpcc::load(&mut r, &cfg, seed).expect("recording load never fails");
    let mut d = TpccDriver::new(cfg, seed);
    for _ in 0..50 {
        let kind = d.next_kind();
        // against a recording runner every read comes back empty; drivers
        // must still behave deterministically (abort or skip the same way)
        let _ = d.run(&mut r, kind);
    }
    r.log
}

fn ycsb_stream(seed: u64) -> Vec<String> {
    let mut r = RecordingRunner::default();
    let cfg = YcsbConfig { record_count: 500, ..YcsbConfig::default() };
    ycsb::load(&mut r, &cfg, seed).expect("recording load never fails");
    let mut d = YcsbDriver::new(cfg, seed);
    for _ in 0..100 {
        let _ = d.run(&mut r);
    }
    r.log
}

fn gharchive_stream(seed: u64) -> Vec<String> {
    let mut r = RecordingRunner::default();
    gharchive::load_day(&mut r, 1, 300, seed).expect("recording load never fails");
    gharchive::load_day(&mut r, 2, 300, seed).expect("recording load never fails");
    r.log
}

fn pgbench_stream(seed: u64) -> Vec<String> {
    let mut r = RecordingRunner::default();
    let cfg = PgbenchConfig { rows_per_table: 200, ..PgbenchConfig::default() };
    pgbench::load(&mut r, &cfg).expect("recording load never fails");
    let mut d = PgbenchDriver::new(cfg, seed);
    for _ in 0..50 {
        let _ = d.run(&mut r);
    }
    r.log
}

fn tpch_stream(seed: u64) -> Vec<String> {
    let mut r = RecordingRunner::default();
    tpch::gen::load(&mut r, 0.01, seed).expect("recording load never fails");
    r.log
}

fn check(name: &str, stream: fn(u64) -> Vec<String>) {
    let a = stream(42);
    let b = stream(42);
    // COPY-heavy loaders emit one log line per batch, so even two lines
    // carry full row fingerprints; interactive drivers should emit plenty
    let min_len = if name == "gharchive" { 2 } else { 10 };
    assert!(a.len() >= min_len, "{name}: stream suspiciously short ({} statements)", a.len());
    assert_eq!(a, b, "{name}: same seed must give a byte-identical statement stream");
    let c = stream(43);
    assert_ne!(a, c, "{name}: different seeds must give different statement streams");
}

#[test]
fn tpcc_statement_stream_is_seed_deterministic() {
    check("tpcc", tpcc_stream);
}

#[test]
fn ycsb_statement_stream_is_seed_deterministic() {
    check("ycsb", ycsb_stream);
}

#[test]
fn gharchive_statement_stream_is_seed_deterministic() {
    check("gharchive", gharchive_stream);
}

#[test]
fn pgbench_statement_stream_is_seed_deterministic() {
    check("pgbench", pgbench_stream);
}

#[test]
fn tpch_statement_stream_is_seed_deterministic() {
    check("tpch", tpch_stream);
}
