//! The deterministic cluster simulation suite: a fixed seed corpus of
//! chaos schedules (shard moves, failovers, DDL, maintenance passes, and a
//! seeded fault plan interleaved with the §4 workload mix), every committed
//! read checked against the single-node pgmini oracle, plus mutation tests
//! proving a planted metadata bug is caught and shrunk to a tiny repro.
//!
//! Environment knobs (the replay-by-seed contract):
//!
//! * `CITRUS_SIM_SEEDS=N`  — widen the corpus to N seeds (ci.sh --long);
//! * `CITRUS_SIM_SEED=S`   — replay exactly seed S via `replay_env_seed`.

use workloads::sim::{
    self, CorruptKind, MxInterleaveKind, SimConfig, SimEvent,
};

fn corpus_size() -> u64 {
    std::env::var("CITRUS_SIM_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(25)
}

fn check_seed(seed: u64) {
    let cfg = SimConfig::new(seed);
    let report = sim::run_seed(&cfg).unwrap_or_else(|e| panic!("{e}"));
    if cfg.mx_routing {
        assert!(
            report.mx_routed >= 1,
            "seed {seed}: MX run routed no statement off the coordinator"
        );
    } else {
        assert_eq!(report.mx_routed, 0, "seed {seed}: coordinator run reported MX routing");
    }
    assert!(report.moves_attempted >= 1, "seed {seed}: no shard move attempted");
    assert!(report.failovers >= 1, "seed {seed}: no failover exercised");
    assert!(report.fault_errors >= 1, "seed {seed}: no faulted statement");
    assert!(report.txns_attempted >= 1, "seed {seed}: no workload transaction");
    assert!(report.reads_checked >= 1, "seed {seed}: no oracle-checked read");
    assert!(report.writes_checked >= 1, "seed {seed}: no oracle-checked write");
    assert!(
        report.txns_failed < report.txns_attempted || report.txns_attempted == 0,
        "seed {seed}: every transaction failed ({}/{})",
        report.txns_failed,
        report.txns_attempted
    );
    // the generation fence is free when no metadata change lands inside an
    // open MX transaction: the standard corpus never fences or escalates
    assert_eq!(
        report.mx_generation_aborts, 0,
        "seed {seed}: generation fence fired outside the drill arm"
    );
    assert_eq!(
        report.mx_midtxn_escalations, 0,
        "seed {seed}: mid-transaction escalation outside the drill arm"
    );
}

/// The CI corpus: every seed runs a full chaos schedule — at least one
/// shard move, one crash+promotion failover, and one faulted statement —
/// with every committed read differentially checked against the oracle.
#[test]
fn seed_corpus_passes_with_full_coverage() {
    for seed in 0..corpus_size() {
        check_seed(seed);
    }
}

/// Replay hook: `CITRUS_SIM_SEED=S cargo test -p workloads --test sim_chaos
/// replay_env_seed -- --nocapture` reruns exactly one seed.
#[test]
fn replay_env_seed() {
    let Ok(seed) = std::env::var("CITRUS_SIM_SEED") else { return };
    let seed: u64 = seed.parse().expect("CITRUS_SIM_SEED must be a u64");
    eprintln!("replaying sim seed {seed}");
    check_seed(seed);
    eprintln!("seed {seed} OK");
}

/// The standing determinism invariant: the same seed produces byte-identical
/// statement traces at 1 and 8 executor threads — with chaos on AND off. The
/// §3.6 contract extended to shard moves, failovers, DDL, and fault firings.
///
/// This holds because parallel read fan-out is partitioned per node (an
/// engine's buffer pool sees one access order at any thread count), fault
/// draws are keyed hashes rather than arrival-order draws, and scripted
/// fault budgets are scope-pinned.
#[test]
fn reports_identical_at_1_and_8_threads() {
    for seed in [3u64, 8, 17] {
        for faults in [false, true] {
            let run = |threads: usize| {
                let mut cfg = SimConfig::new(seed);
                cfg.executor_threads = threads;
                cfg.tracing = true;
                cfg.faults = faults;
                sim::run_seed(&cfg)
                    .unwrap_or_else(|e| panic!("threads={threads} faults={faults}: {e}"))
            };
            let (a, b) = (run(1), run(8));
            assert_eq!(
                a.trace_fingerprint, b.trace_fingerprint,
                "seed {seed} faults={faults}: traces differ between 1 and 8 threads"
            );
            assert_eq!(a.reads_checked, b.reads_checked, "seed {seed} faults={faults}");
            assert_eq!(a.writes_checked, b.writes_checked, "seed {seed} faults={faults}");
            assert_eq!(a.txns_failed, b.txns_failed, "seed {seed} faults={faults}");
            assert_eq!(a.moves_completed, b.moves_completed, "seed {seed} faults={faults}");
            assert_eq!(a.faults_fired, b.faults_fired, "seed {seed} faults={faults}");
            assert_eq!(a.fault_errors, b.fault_errors, "seed {seed} faults={faults}");
        }
    }
}

/// Both routing modes of the same seed pass the full differential wall: the
/// MX coordinator bypass may change *where* statements plan and execute,
/// never what they return. A routing bug that corrupts results on either
/// path shows up here as an oracle divergence.
#[test]
fn mx_and_coordinator_routing_agree_with_the_oracle() {
    // Seeds whose workload mix contains routable single-tenant statements
    // (some seeds draw an all-analytics mix where everything escalates).
    for seed in [2u64, 4] {
        for mx in [false, true] {
            let mut cfg = SimConfig::new(seed);
            cfg.mx_routing = mx;
            let report =
                sim::run_seed(&cfg).unwrap_or_else(|e| panic!("seed {seed} mx={mx}: {e}"));
            assert!(report.reads_checked >= 1, "seed {seed} mx={mx}: no checked read");
            if mx {
                assert!(report.mx_routed >= 1, "seed {seed} mx={mx}: nothing routed");
            }
        }
    }
}

/// The generation-fence drill corpus: schedules grown with MxInterleave
/// events — open MX transactions that propagated DDL, frozen-mid-fan-out
/// DDL, and shard moves interleave into at statement boundaries, under the
/// full chaos fault plan. Every drill transaction must either escalate and
/// commit or fence with a retryable 40001 and commit on retry; the drill
/// model catches lost/duplicated writes and the standing invariants
/// (one-live-placement, no orphans, no stuck sessions) hold after every
/// event.
#[test]
fn mx_ddl_interleave_drill_corpus() {
    for seed in [0u64, 2, 5, 9] {
        let mut cfg = SimConfig::new(seed);
        cfg.mx_ddl_interleave = true;
        let report = sim::run_seed(&cfg).unwrap_or_else(|e| panic!("drill seed {seed}: {e}"));
        assert_eq!(report.drill_commits, 4, "seed {seed}: every drill flavor commits once");
        assert!(
            report.mx_generation_aborts >= 1,
            "seed {seed}: no drill transaction was fenced"
        );
        assert!(
            report.mx_midtxn_escalations >= 1,
            "seed {seed}: no drill transaction escalated mid-flight"
        );
    }
}

/// Flag-off schedules are byte-identical to the historical corpus: the
/// drill mode must not perturb existing seeds' replay contract.
#[test]
fn drill_flag_off_leaves_schedules_unchanged() {
    for seed in 0..20u64 {
        let cfg = SimConfig::new(seed);
        let mut on = cfg.clone();
        on.mx_ddl_interleave = true;
        let (base, drilled) = (sim::derive_schedule(&cfg), sim::derive_schedule(&on));
        assert_eq!(
            base,
            sim::derive_schedule(&cfg),
            "seed {seed}: flag-off schedule not deterministic"
        );
        let stripped: Vec<SimEvent> = drilled
            .iter()
            .filter(|e| !matches!(e, SimEvent::MxInterleave { .. }))
            .copied()
            .collect();
        assert_eq!(stripped.len(), base.len(), "seed {seed}: drill mode altered base events");
        let kinds: Vec<MxInterleaveKind> = drilled
            .iter()
            .filter_map(|e| match e {
                SimEvent::MxInterleave { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds.len(), 4, "seed {seed}: one drill of every flavor");
    }
}

/// The drill schedules keep the §3.6 determinism contract: byte-identical
/// statement traces and identical fence/escalation counts at 1 and 8
/// executor threads.
#[test]
fn drill_reports_identical_at_1_and_8_threads() {
    for seed in [2u64, 9] {
        let run = |threads: usize| {
            let mut cfg = SimConfig::new(seed);
            cfg.executor_threads = threads;
            cfg.tracing = true;
            cfg.mx_ddl_interleave = true;
            sim::run_seed(&cfg).unwrap_or_else(|e| panic!("drill threads={threads}: {e}"))
        };
        let (a, b) = (run(1), run(8));
        assert_eq!(
            a.trace_fingerprint, b.trace_fingerprint,
            "drill seed {seed}: traces differ between 1 and 8 threads"
        );
        assert_eq!(a.mx_generation_aborts, b.mx_generation_aborts, "drill seed {seed}");
        assert_eq!(a.mx_midtxn_escalations, b.mx_midtxn_escalations, "drill seed {seed}");
        assert_eq!(a.drill_commits, b.drill_commits, "drill seed {seed}");
    }
}

/// Rollup-maintenance seeds: odd seeds whose mix includes the RTA pattern
/// create an incrementally maintained rollup over `push_commits`, drain it
/// on every maintenance pass under the full chaos plan, and hold it
/// byte-equal to a from-scratch recompute after every event (the
/// `check_invariants` extension). Seed 1, 5, 9 have RTA as the primary
/// pattern (`seed % 4 == 1`) and the rollups flag on (`seed % 2 == 1`).
#[test]
fn rollup_seeds_maintain_and_verify() {
    for seed in [1u64, 5, 9] {
        let cfg = SimConfig::new(seed);
        assert!(cfg.rollups, "seed {seed} should derive rollups on");
        let report = sim::run_seed(&cfg).unwrap_or_else(|e| panic!("rollup seed {seed}: {e}"));
        assert!(
            report.rollup_refreshes >= 1,
            "seed {seed}: rollup was never refreshed (refreshes=0)"
        );
    }
}

/// The rollups flag adds no schedule events and no rng draws: derived
/// schedules are byte-identical with the flag forced either way, so the
/// replay-by-seed contract of the historical corpus is untouched.
#[test]
fn rollup_flag_leaves_schedules_unchanged() {
    for seed in 0..20u64 {
        let mut on = SimConfig::new(seed);
        on.rollups = true;
        let mut off = SimConfig::new(seed);
        off.rollups = false;
        assert_eq!(
            sim::derive_schedule(&on),
            sim::derive_schedule(&off),
            "seed {seed}: rollups flag perturbed the schedule"
        );
    }
}

/// Mutation test: plant a duplicate-placement metadata bug mid-schedule.
/// The invariant checker must catch it, and the shrinker must reduce the
/// schedule to a <= 10-event reproducer that still fails.
#[test]
fn planted_metadata_bug_is_caught_and_shrunk() {
    let cfg = SimConfig::new(7);
    let mut events = sim::derive_schedule(&cfg);
    let mid = events.len() / 2;
    events.insert(mid, SimEvent::Corrupt { kind: CorruptKind::DuplicatePlacement });
    let first = sim::run_schedule(&cfg, &events)
        .err()
        .expect("planted duplicate placement must fail the invariant check");
    assert!(
        first.detail.contains("placements"),
        "failure should name the placement invariant: {}",
        first.detail
    );
    let (minimal, failure) = sim::shrink_schedule(&cfg, &events, first);
    assert!(
        minimal.len() <= 10,
        "shrunk reproducer has {} events (want <= 10): {minimal:?}",
        minimal.len()
    );
    assert!(
        minimal.iter().any(|e| matches!(e, SimEvent::Corrupt { .. })),
        "minimal repro must keep the corruption event: {minimal:?}"
    );
    // the minimal schedule still fails, deterministically
    let replayed = sim::run_schedule(&cfg, &minimal).err().expect("minimal repro must still fail");
    assert_eq!(replayed.detail, failure.detail);
}

/// Second mutation: a stray physical shard table on a worker is reported as
/// an orphan.
#[test]
fn planted_orphan_table_is_caught() {
    let cfg = SimConfig::new(11);
    let events = vec![SimEvent::Corrupt { kind: CorruptKind::OrphanShardTable }];
    let failure = sim::run_schedule(&cfg, &events)
        .err()
        .expect("planted orphan shard table must fail the invariant check");
    assert!(failure.detail.contains("orphan"), "unexpected failure: {}", failure.detail);
}

/// The failure report is a usable one-line repro: it prints the seed, the
/// minimal schedule, and the replay command.
#[test]
fn failure_message_contains_replay_recipe() {
    // force a failure by running a corrupted schedule through run_seed's
    // formatting path: use a seed whose derived schedule we corrupt via the
    // public pieces, then format as run_seed would
    let cfg = SimConfig::new(5);
    let mut events = sim::derive_schedule(&cfg);
    events.insert(0, SimEvent::Corrupt { kind: CorruptKind::DuplicatePlacement });
    let first = sim::run_schedule(&cfg, &events).err().unwrap();
    let (minimal, failure) = sim::shrink_schedule(&cfg, &events, first);
    assert!(minimal.len() <= 10);
    assert!(!failure.detail.is_empty());
}
