//! The workload drivers must actually run — against single-node pgmini (the
//! PostgreSQL baseline) and against a citrus cluster — and where both can
//! run the same queries, produce identical answers.

use citrus::cluster::{Cluster, ClusterConfig};
use pgmini::engine::Engine;
use pgmini::types::Datum;
use std::sync::Arc;
use workloads::runner::{ClusterRunner, LocalRunner, SqlRunner};
use workloads::{gharchive, pgbench, tpcc, tpch, ycsb};

fn cluster(workers: u32, shards: u32) -> Arc<Cluster> {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = shards;
    let c = Cluster::new(cfg);
    for _ in 0..workers {
        c.add_worker().unwrap();
    }
    c
}

fn local_runner() -> LocalRunner {
    LocalRunner { session: Engine::new_default().session().unwrap() }
}

fn cluster_runner(c: &Arc<Cluster>) -> ClusterRunner {
    ClusterRunner { session: c.session().unwrap() }
}

#[test]
fn tpcc_runs_on_both_targets() {
    let cfg = tpcc::TpccConfig {
        warehouses: 4,
        items: 50,
        districts_per_warehouse: 3,
        customers_per_district: 5,
        ..Default::default()
    };
    // local baseline
    let mut local = local_runner();
    for s in tpcc::schema_statements() {
        local.run(&s).unwrap();
    }
    tpcc::load(&mut local, &cfg, 1).unwrap();
    let mut driver = tpcc::TpccDriver::new(cfg.clone(), 2);
    for _ in 0..60 {
        let kind = driver.next_kind();
        driver.run(&mut local, kind).unwrap();
    }
    assert!(driver.new_orders > 0);

    // distributed
    let c = cluster(3, 8);
    let mut dist = cluster_runner(&c);
    for s in tpcc::schema_statements() {
        dist.run(&s).unwrap();
    }
    for s in tpcc::distribution_statements() {
        dist.run(&s).unwrap();
    }
    tpcc::load(&mut dist, &cfg, 1).unwrap();
    let mut driver = tpcc::TpccDriver::new(cfg, 2);
    for _ in 0..60 {
        let kind = driver.next_kind();
        driver.run(&mut dist, kind).unwrap();
    }
    assert!(driver.new_orders > 0);
    // the two targets loaded identical data, and the drivers were seeded
    // identically: spot-check an aggregate
    let l = local.run("SELECT count(*), sum(s_ytd) FROM stock").unwrap();
    let d = dist.run("SELECT count(*), sum(s_ytd) FROM stock").unwrap();
    assert_eq!(l.rows(), d.rows());
}

#[test]
fn tpcc_cross_warehouse_fraction_near_seven_percent() {
    let cfg = tpcc::TpccConfig { warehouses: 8, ..Default::default() };
    let mut d = tpcc::TpccDriver::new(cfg.clone(), 3);
    // probe the mix without a database: count what *would* cross
    let mut rng_cross = 0u32;
    let n = 20_000;
    for _ in 0..n {
        match d.next_kind() {
            tpcc::TxnKind::NewOrder => {
                // approximate: ~10 items, each remote with p
                let p_any = 1.0 - (1.0 - cfg.remote_item_fraction).powi(10);
                if (rng_cross as f64 / n as f64) < 0.0 {
                    unreachable!()
                }
                // deterministic expectation accumulation
                rng_cross += (p_any * 1000.0) as u32;
            }
            tpcc::TxnKind::Payment => {
                rng_cross += (cfg.remote_payment_fraction * 1000.0) as u32;
            }
            _ => {}
        }
    }
    let expected_fraction = rng_cross as f64 / (n as f64 * 1000.0);
    assert!(
        (0.04..0.10).contains(&expected_fraction),
        "cross-warehouse fraction ≈ 7%: {expected_fraction}"
    );
}

#[test]
fn ycsb_workload_a_runs_distributed() {
    let c = cluster(2, 8);
    let mut dist = cluster_runner(&c);
    dist.run(&ycsb::schema_statement()).unwrap();
    dist.run(&ycsb::distribution_statement()).unwrap();
    let cfg = ycsb::YcsbConfig { record_count: 500, ..Default::default() };
    ycsb::load(&mut dist, &cfg, 5).unwrap();
    let r = dist.run("SELECT count(*) FROM usertable").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(500));
    let mut driver = ycsb::YcsbDriver::new(cfg, 6);
    let mut reads = 0;
    for _ in 0..200 {
        if driver.run(&mut dist).unwrap() == ycsb::Op::Read {
            reads += 1;
        }
    }
    assert!(reads > 60 && reads < 140, "50/50 mix: {reads}");
}

#[test]
fn gharchive_microbenchmarks_match_local() {
    // local
    let mut local = local_runner();
    for s in gharchive::schema_statements() {
        local.run(&s).unwrap();
    }
    gharchive::load_day(&mut local, 1, 800, 9).unwrap();
    let l = local.run(&gharchive::dashboard_query()).unwrap();

    // distributed
    let c = cluster(2, 8);
    let mut dist = cluster_runner(&c);
    for s in gharchive::schema_statements() {
        dist.run(&s).unwrap();
    }
    dist.run(&gharchive::distribution_statement()).unwrap();
    gharchive::load_day(&mut dist, 1, 800, 9).unwrap();
    let d = dist.run(&gharchive::dashboard_query()).unwrap();
    assert_eq!(l.rows(), d.rows(), "dashboard query must agree");
    assert!(!d.rows().is_empty(), "some postgres mentions exist");

    // the INSERT..SELECT transformation (Figure 7c) runs co-located
    for s in gharchive::transformation_schema() {
        dist.run(&s).unwrap();
    }
    dist.run(&gharchive::transformation_distribution()).unwrap();
    let n = dist.run(&gharchive::transformation_query()).unwrap().affected();
    assert!(n > 0);
    let total = dist.run("SELECT count(*) FROM push_commits").unwrap();
    assert_eq!(total.rows()[0][0].as_i64().unwrap(), n as i64);
}

#[test]
fn pgbench_both_arms_run_and_balance() {
    let c = cluster(2, 8);
    let mut dist = cluster_runner(&c);
    for s in pgbench::schema_statements() {
        dist.run(&s).unwrap();
    }
    for s in pgbench::distribution_statements() {
        dist.run(&s).unwrap();
    }
    let cfg = pgbench::PgbenchConfig { rows_per_table: 200, same_key: true };
    pgbench::load(&mut dist, &cfg).unwrap();
    let mut same = pgbench::PgbenchDriver::new(cfg.clone(), 11);
    for _ in 0..30 {
        same.run(&mut dist).unwrap();
    }
    let mut diff = pgbench::PgbenchDriver::new(
        pgbench::PgbenchConfig { same_key: false, ..cfg },
        12,
    );
    for _ in 0..30 {
        diff.run(&mut dist).unwrap();
    }
    // invariant: the two-update transaction conserves the total
    let r = dist
        .run("SELECT (SELECT sum(v) FROM a1) + (SELECT sum(v) FROM a2)")
        .unwrap();
    assert_eq!(r.rows()[0][0].as_i64().unwrap(), 0, "transfers must balance");
    // no leftover prepared transactions
    for node in c.nodes() {
        assert!(node.engine().txns.prepared_gids().is_empty());
    }
}

#[test]
fn tpch_all_supported_queries_match_local() {
    let sf = 0.001;
    // local baseline: same schema, same data, no distribution
    let mut local = local_runner();
    for s in tpch::schema_statements() {
        local.run(&s).unwrap();
    }
    tpch::gen::load(&mut local, sf, 21).unwrap();

    let c = cluster(3, 8);
    let mut dist = cluster_runner(&c);
    for s in tpch::schema_statements() {
        dist.run(&s).unwrap();
    }
    for s in tpch::distribution_statements() {
        dist.run(&s).unwrap();
    }
    tpch::gen::load(&mut dist, sf, 21).unwrap();

    for n in tpch::queries::SUPPORTED {
        let q = tpch::queries::query(n).unwrap();
        let l = local.run(&q).unwrap_or_else(|e| panic!("q{n} local: {e}"));
        let d = dist.run(&q).unwrap_or_else(|e| panic!("q{n} distributed: {e}"));
        assert_eq!(
            rounded(l.rows()),
            rounded(d.rows()),
            "q{n} diverged between local and distributed"
        );
    }
    // the unsupported four fail cleanly
    for n in tpch::queries::UNSUPPORTED {
        assert!(tpch::queries::query(n).is_none());
    }
}

/// Round floats for comparison (aggregation order differs across shards).
fn rounded(rows: &[Vec<Datum>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            r.iter()
                .map(|d| match d {
                    Datum::Float(f) => format!("{:.4}", f),
                    other => other.to_text(),
                })
                .collect()
        })
        .collect()
}
