//! Data warehousing (§2.4): TPC-H-style ad-hoc analytics over co-located
//! fact tables and replicated dimensions, including a columnar variant and a
//! non-co-located (broadcast) join.

use citrus::cluster::Cluster;
use workloads::runner::{ClusterRunner, SqlRunner};
use workloads::tpch;

fn main() -> Result<(), pgmini::error::PgError> {
    let cluster = Cluster::new_default();
    for _ in 0..2 {
        cluster.add_worker()?;
    }
    let mut runner = ClusterRunner { session: cluster.session()? };
    for stmt in tpch::schema_statements() {
        runner.run(&stmt)?;
    }
    for stmt in tpch::distribution_statements() {
        runner.run(&stmt)?;
    }
    let lineitems = tpch::gen::load(&mut runner, 0.002, 5)?;
    println!("loaded TPC-H at SF 0.002 ({lineitems} lineitem rows)");

    // a handful of the supported queries
    for n in [1u32, 3, 5, 6, 12] {
        let q = tpch::queries::query(n).expect("supported");
        let result = runner.run(&q)?;
        println!("Q{n}: {} result rows", result.rows().len());
    }
    println!(
        "unsupported, like Citus 9.5 (correlated / nested-agg shapes): {:?}",
        tpch::queries::UNSUPPORTED
    );

    // columnar storage for an append-only fact table
    let mut s = cluster.session()?;
    s.execute("CREATE TABLE facts (k bigint, v float)")?;
    cluster.coordinator().engine().set_columnar("facts")?;
    s.execute("INSERT INTO facts VALUES (1, 1.0), (2, 2.0), (3, 3.0)")?;
    let rows = s.query("SELECT sum(v) FROM facts")?;
    println!("columnar local table sum: {}", rows[0][0].to_text());

    // a non-co-located join: the join-order planner broadcasts the smaller
    // relation as an intermediate result
    s.execute("CREATE TABLE dim_x (x bigint, label text)")?;
    s.execute("SELECT create_distributed_table('dim_x', 'x', 'none')")?;
    s.execute("INSERT INTO dim_x VALUES (1, 'one'), (2, 'two'), (3, 'three')")?;
    s.execute("CREATE TABLE fact_y (y bigint, x bigint)")?;
    s.execute("SELECT create_distributed_table('fact_y', 'y')")?;
    for y in 0..30i64 {
        s.execute(&format!("INSERT INTO fact_y VALUES ({y}, {})", y % 3 + 1))?;
    }
    let rows = s.query(
        "SELECT d.label, count(*) FROM fact_y f JOIN dim_x d ON f.x = d.x \
         GROUP BY d.label ORDER BY 1",
    )?;
    println!("non-co-located join result: {rows:?}");
    Ok(())
}
