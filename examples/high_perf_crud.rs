//! High-performance CRUD (§2.3): a YCSB-style key-value workload where every
//! node acts as a coordinator (metadata syncing / MX mode), clients load-
//! balance across nodes, and point operations route with minimal overhead.

use citrus::cluster::Cluster;
use workloads::runner::{ClusterRunner, SqlRunner};
use workloads::ycsb::{self, YcsbConfig, YcsbDriver};

fn main() -> Result<(), pgmini::error::PgError> {
    let cluster = Cluster::new_default();
    for _ in 0..3 {
        cluster.add_worker()?;
    }
    let mut runner = ClusterRunner { session: cluster.session()? };
    runner.run(&ycsb::schema_statement())?;
    runner.run(&ycsb::distribution_statement())?;

    let cfg = YcsbConfig { record_count: 2_000, ..Default::default() };
    ycsb::load(&mut runner, &cfg, 11)?;
    println!("loaded {} records", cfg.record_count);

    // MX mode: every node can coordinate, so clients spread connections
    cluster.enable_mx();
    let mut total_ops = 0u64;
    for (i, node) in cluster.node_ids().into_iter().enumerate() {
        let mut worker_runner = ClusterRunner { session: cluster.session_on(node)? };
        let mut driver = YcsbDriver::new(cfg.clone(), 100 + i as u64);
        for _ in 0..50 {
            driver.run(&mut worker_runner)?;
        }
        total_ops += driver.ops;
        println!("client via node {}: {} ops", node.0, driver.ops);
    }
    println!("total: {total_ops} ops across {} coordinators", cluster.node_ids().len());

    // a point read shows the fast-path route
    let rows = runner.run(&format!(
        "EXPLAIN SELECT * FROM usertable WHERE ycsb_key = '{}'",
        ycsb::key_name(42)
    ))?;
    for line in rows.rows() {
        println!("{}", line[0].to_text());
    }
    Ok(())
}
