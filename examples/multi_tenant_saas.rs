//! Multi-tenant SaaS (§2.1): co-located tables keyed by tenant, reference
//! tables for shared data, tenant-scoped transactions that stay on one node,
//! cross-tenant analytics, and tenant isolation via the shard rebalancer.

use citrus::cluster::Cluster;
use pgmini::types::Datum;

fn main() -> Result<(), pgmini::error::PgError> {
    let cluster = Cluster::new_default();
    for _ in 0..3 {
        cluster.add_worker()?;
    }
    let mut s = cluster.session()?;

    // the classic SaaS data model: everything carries tenant_id
    s.execute_script(
        "CREATE TABLE tenants (tenant_id bigint PRIMARY KEY, name text NOT NULL);
         CREATE TABLE projects (tenant_id bigint, project_id bigint, title text,
                                PRIMARY KEY (tenant_id, project_id));
         CREATE TABLE tasks (tenant_id bigint, task_id bigint, project_id bigint,
                             done bool, PRIMARY KEY (tenant_id, task_id));
         CREATE TABLE plan_catalog (plan text PRIMARY KEY, seats bigint);",
    )?;
    s.execute("SELECT create_distributed_table('tenants', 'tenant_id')")?;
    s.execute("SELECT create_distributed_table('projects', 'tenant_id', 'tenants')")?;
    s.execute("SELECT create_distributed_table('tasks', 'tenant_id', 'tenants')")?;
    s.execute("SELECT create_reference_table('plan_catalog')")?;

    s.execute("INSERT INTO plan_catalog VALUES ('free', 3), ('pro', 50)")?;
    for t in 1..=12i64 {
        s.execute(&format!("INSERT INTO tenants VALUES ({t}, 'tenant-{t}')"))?;
        for p in 1..=3i64 {
            s.execute(&format!("INSERT INTO projects VALUES ({t}, {p}, 'proj-{t}-{p}')"))?;
            for k in 1..=4i64 {
                s.execute(&format!(
                    "INSERT INTO tasks VALUES ({t}, {}, {p}, {})",
                    p * 10 + k,
                    k % 2 == 0
                ))?;
            }
        }
    }

    // a tenant-scoped transaction: all statements route to one worker, so
    // it gets single-node ACID without 2PC (§3.7.1)
    s.execute("BEGIN")?;
    s.execute("INSERT INTO projects VALUES (7, 99, 'urgent')")?;
    s.execute("UPDATE tasks SET done = TRUE WHERE tenant_id = 7 AND project_id = 1")?;
    s.execute("COMMIT")?;

    // a complex tenant-scoped join runs through the router planner
    let rows = s.query(
        "SELECT p.title, count(*) FROM projects p \
         JOIN tasks t ON p.tenant_id = t.tenant_id AND p.project_id = t.project_id \
         WHERE p.tenant_id = 7 GROUP BY p.title ORDER BY 1",
    )?;
    println!("tenant 7 projects: {rows:?}");

    // cross-tenant analytics fan out over all shards
    let rows = s.query(
        "SELECT count(*), sum(CASE WHEN done THEN 1 ELSE 0 END) FROM tasks",
    )?;
    println!("all-tenant tasks (total, done): {rows:?}");

    // a noisy tenant gets isolated onto its own node (§2.1's tenant
    // isolation feature, built on the shard rebalancer)
    let target = cluster.worker_ids()[2];
    let report =
        citrus::rebalancer::isolate_tenant(&cluster, "tenants", &Datum::Int(7), target)?;
    println!(
        "isolated tenant 7 → node {} ({} co-located shards, {} rows moved)",
        target.0, report.shards_moved, report.rows_moved
    );
    let rows = s.query("SELECT title FROM projects WHERE tenant_id = 7 ORDER BY project_id")?;
    println!("tenant 7 after move: {} projects, still online", rows.len());
    Ok(())
}
