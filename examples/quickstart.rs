//! Quickstart: spin up a cluster, distribute a table, query it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use citrus::cluster::Cluster;

fn main() -> Result<(), pgmini::error::PgError> {
    // a coordinator plus two workers (all in-process engines)
    let cluster = Cluster::new_default();
    cluster.add_worker()?;
    cluster.add_worker()?;

    let mut session = cluster.session()?;

    // tables start as regular (local) tables...
    session.execute("CREATE TABLE events (device_id bigint, at timestamp, payload text)")?;
    // ...and become distributed through the same UDF the paper describes
    session.execute("SELECT create_distributed_table('events', 'device_id')")?;

    session.execute(
        "INSERT INTO events VALUES \
         (1, '2020-06-01 10:00:00', 'boot'), \
         (1, '2020-06-01 10:05:00', 'ping'), \
         (2, '2020-06-01 11:00:00', 'boot'), \
         (3, '2020-06-01 12:00:00', 'crash')",
    )?;

    // single-key queries route to one shard (fast path planner)
    let rows = session.query("SELECT payload FROM events WHERE device_id = 1 ORDER BY at")?;
    println!("device 1 events: {rows:?}");

    // cross-shard aggregation fans out and merges on the coordinator
    let rows = session.query(
        "SELECT device_id, count(*) FROM events GROUP BY device_id ORDER BY 1",
    )?;
    println!("events per device: {rows:?}");

    // EXPLAIN shows the distributed plan
    for line in session.query("EXPLAIN SELECT count(*) FROM events")? {
        println!("{}", line[0].to_text());
    }
    Ok(())
}
