//! Real-time analytics (§2.2, Figure 2): ingest a JSON event stream with a
//! trigram GIN index, roll it up incrementally with a co-located
//! INSERT..SELECT, and serve dashboard queries from both raw and rollup
//! tables.

use citrus::cluster::Cluster;
use workloads::gharchive;
use workloads::runner::{ClusterRunner, SqlRunner};

fn main() -> Result<(), pgmini::error::PgError> {
    let cluster = Cluster::new_default();
    for _ in 0..2 {
        cluster.add_worker()?;
    }
    let mut runner = ClusterRunner { session: cluster.session()? };

    // raw events table + expression GIN index over commit messages
    for stmt in gharchive::schema_statements() {
        runner.run(&stmt)?;
    }
    runner.run(&gharchive::distribution_statement())?;

    // ingest two "days" of events through distributed COPY
    let loaded =
        gharchive::load_day(&mut runner, 1, 2_000, 7)? + gharchive::load_day(&mut runner, 2, 2_000, 7)?;
    println!("ingested {loaded} events");

    // the dashboard query: commits mentioning postgres, per day (GIN-pruned)
    for row in runner.run(&gharchive::dashboard_query())?.rows() {
        println!("{}: {} commits mention postgres", row[0].to_text(), row[1].to_text());
    }

    // incremental pre-aggregation into a co-located rollup (Figure 2)
    for stmt in gharchive::transformation_schema() {
        runner.run(&stmt)?;
    }
    runner.run(&gharchive::transformation_distribution())?;
    let n = runner.run(&gharchive::transformation_query())?.affected();
    println!("rolled up {n} push events (co-located INSERT..SELECT)");

    // dashboards can now hit the much smaller rollup
    let rows = runner.run(
        "SELECT day, sum(commit_count) FROM push_commits GROUP BY day ORDER BY day",
    )?;
    for row in rows.rows() {
        println!("{}: {} commits total", row[0].to_text(), row[1].to_text());
    }
    Ok(())
}
