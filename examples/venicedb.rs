//! The §5 VeniceDB case study in miniature: device telemetry distributed by
//! device id, incremental pre-aggregation into co-located report tables, and
//! the nested-subquery dashboard pattern where the inner GROUP BY deviceid
//! pushes down whole and the outer aggregation merges partials.

use citrus::cluster::Cluster;

fn main() -> Result<(), pgmini::error::PgError> {
    let cluster = Cluster::new_default();
    for _ in 0..4 {
        cluster.add_worker()?;
    }
    let mut s = cluster.session()?;

    s.execute(
        "CREATE TABLE measures (deviceid bigint, at timestamp, build text, metric float)",
    )?;
    s.execute("SELECT create_distributed_table('measures', 'deviceid')")?;
    s.execute(
        "CREATE TABLE reports (deviceid bigint, build text, day timestamp, \
         metric_sum float, metric_count bigint)",
    )?;
    s.execute("SELECT create_distributed_table('reports', 'deviceid', 'measures')")?;

    // telemetry from many devices across two builds
    for d in 1..=60i64 {
        for k in 0..4i64 {
            s.execute(&format!(
                "INSERT INTO measures VALUES ({d}, '2020-06-0{}', 'build-{}', {})",
                k % 3 + 1,
                d % 2,
                (d * 10 + k) as f64
            ))?;
        }
    }

    // device-level pre-aggregation: fully co-located INSERT..SELECT (§5)
    let n = s
        .execute(
            "INSERT INTO reports (deviceid, build, day, metric_sum, metric_count) \
             SELECT deviceid, build, date_trunc('day', at), sum(metric), count(*) \
             FROM measures GROUP BY deviceid, build, date_trunc('day', at)",
        )?
        .affected();
    println!("pre-aggregated {n} report rows (co-located INSERT..SELECT)");

    // the RQV dashboard query shape: per-device averages first (pushed down
    // because the subquery groups by the distribution column), then the
    // device-weighted overall average merged on the coordinator
    let rows = s.query(
        "SELECT build, avg(device_avg) FROM \
           (SELECT deviceid, build, avg(metric) AS device_avg \
            FROM measures GROUP BY deviceid, build) AS subq \
         GROUP BY build ORDER BY build",
    )?;
    for r in &rows {
        println!("build {} → device-weighted avg {}", r[0].to_text(), r[1].to_text());
    }

    // show the plan: pushdown with a coordinator merge step
    for line in s.query(
        "EXPLAIN SELECT build, avg(device_avg) FROM \
           (SELECT deviceid, build, avg(metric) AS device_avg \
            FROM measures GROUP BY deviceid, build) AS subq GROUP BY build",
    )? {
        println!("{}", line[0].to_text());
    }

    // atomic cross-node cleansing of bad data (a VeniceDB requirement)
    s.execute("BEGIN")?;
    let deleted = s.execute("DELETE FROM measures WHERE metric > 600.0")?.affected();
    s.execute("UPDATE reports SET metric_sum = 0.0 WHERE deviceid > 55")?;
    s.execute("COMMIT")?;
    println!("cleansed {deleted} bad measures atomically across nodes (2PC)");
    Ok(())
}
