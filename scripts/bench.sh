#!/usr/bin/env sh
# Executor performance baseline. Emits BENCH_executor.json in the repo root:
#
#   - wall-clock speedup of a 32-shard pushdown aggregate at 1/4/8 executor
#     threads (remote statements carry real_rtt_us of wire time, so the
#     fan-out's overlap is measured for real, not just in virtual time)
#   - plan-cache hit rate and per-statement latency (virtual ms, the
#     repo's deterministic metric, plus wall-clock) on a repeated-CRUD loop,
#     cache off (cold) vs on (warm)
#
# Thresholds (skipped with --smoke): speedup_t8 >= 2x, warm hit rate >= 90%,
# warm per-statement latency < cold.
set -eu

cd "$(dirname "$0")/.."

echo "==> build executor bench (release)"
cargo build --release -p citrus-bench --bin executor_bench

echo "==> run executor bench $*"
./target/release/executor_bench "$@"

case " $* " in
    *" --smoke "*) echo "==> wrote BENCH_executor_smoke.json" ;;
    *) echo "==> wrote BENCH_executor.json" ;;
esac
