#!/usr/bin/env sh
# Vectorized columnar execution bench: the batched scan→filter→aggregate
# path vs the row-at-a-time volcano path on otherwise identical clusters,
# over the columnar TPC-H fact tables, measured in deterministic virtual
# time. Emits BENCH_columnar.json in the repo root.
#
# Usage: scripts/bench_columnar.sh [--smoke]
#   --smoke   sf 0.002 / 2 reps, no speedup threshold beyond vectorized > volcano
#             (CI); default is sf 0.01 / 10 reps with the 3x speedup assertion
#             (override scale with CITRUS_COLUMNAR_SF). Smoke writes
#             BENCH_columnar_smoke.json, the committed CI regression baseline.
set -eu

cd "$(dirname "$0")/.."

echo "==> build columnar bench (release)"
cargo build --release -p citrus-bench --bin columnar_bench

echo "==> run columnar bench $*"
./target/release/columnar_bench "$@"

case " $* " in
    *" --smoke "*) echo "==> wrote BENCH_columnar_smoke.json" ;;
    *) echo "==> wrote BENCH_columnar.json" ;;
esac
