#!/usr/bin/env sh
# Incremental rollup maintenance bench: serving a grouped dashboard from an
# incrementally maintained rollup (changefeed drain + rollup read) vs
# recomputing the defining aggregate over the whole source table, measured in
# deterministic virtual time. Emits BENCH_rollup.json in the repo root.
#
# Usage: scripts/bench_rollup.sh [--smoke]
#   --smoke   1.5k base rows / 4 rounds, no speedup threshold beyond
#             incremental > recompute (CI); default is 20k base rows / 10
#             rounds with the 3x speedup assertion (override scale with
#             CITRUS_ROLLUP_ROWS). Smoke writes BENCH_rollup_smoke.json, the
#             committed CI regression baseline.
set -eu

cd "$(dirname "$0")/.."

echo "==> build rollup bench (release)"
cargo build --release -p citrus-bench --bin rollup_bench

echo "==> run rollup bench $*"
./target/release/rollup_bench "$@"

case " $* " in
    *" --smoke "*) echo "==> wrote BENCH_rollup_smoke.json" ;;
    *) echo "==> wrote BENCH_rollup.json" ;;
esac
