#!/usr/bin/env sh
# The §4 evaluation: all four usage-pattern workloads (Table 3) as identical
# seeded unit streams on a distributed cluster vs a single node, measured in
# deterministic virtual time by the simulation harness's fault-free bench
# mode. Emits BENCH_workloads.json in the repo root.
#
# Usage: scripts/bench_workloads.sh [--smoke]
#   --smoke   5 units per arm, no thresholds (CI); default is 1000 units/arm
#             (override with CITRUS_BENCH_UNITS). Smoke writes
#             BENCH_workloads_smoke.json, the committed CI regression baseline.
set -eu

cd "$(dirname "$0")/.."

echo "==> build workloads bench (release)"
cargo build --release -p citrus-bench --bin workloads_bench

echo "==> run workloads bench $*"
./target/release/workloads_bench "$@"

case " $* " in
    *" --smoke "*) echo "==> wrote BENCH_workloads_smoke.json" ;;
    *) echo "==> wrote BENCH_workloads.json" ;;
esac
