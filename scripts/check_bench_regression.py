#!/usr/bin/env python3
"""Bench regression gate (ci.sh step 15).

Compares the freshly generated smoke bench artifacts against the committed
baselines. The virtual-time fields in the smoke artifacts are deterministic
(fixed seed, fixed cost model), so a change here always means the executor,
planner, routing, or cost model changed behaviour — the 10% tolerance only
exists so a deliberate, small cost-model retune does not need a lockstep
baseline update.

Checks:
  * TPC-C (multi_tenant) and YCSB (high_performance_crud) distributed
    ``units_per_vsec`` in BENCH_workloads_smoke.json must not regress more
    than 10% against the committed baseline. Both arms run MX-routed with
    the generation fence on and no DDL in flight, so this gate is also
    what pins the fence's zero steady-state cost (DESIGN.md §9): a fence
    that started charging per-statement work would show up here directly.
  * The warm plan-cache arm in BENCH_executor_smoke.json must stay cheaper
    than cold on the virtual clock (wall-clock fields are noisy in smoke
    mode and are gated by the full bench + plan_cache_regression test
    instead).
  * The vectorized arm in BENCH_columnar_smoke.json must beat the volcano
    arm, and its ``units_per_vsec`` must not regress more than 10% against
    the committed baseline (the 3x full-run target is asserted by the full
    bench binary itself).
  * The incremental arm in BENCH_rollup_smoke.json must beat the recompute
    arm, and its ``units_per_vsec`` must not regress more than 10% against
    the committed baseline (the 3x full-run target is asserted by the full
    bench binary itself).
  * Snapshot isolation (BENCH_snapshot_smoke.json): the mode-off arm is the
    default everywhere else, so the mode-off/mode-on split gates both sides
    of the feature — mode-off ``units_per_vsec`` must not regress more than
    10% against the committed baseline (the token machinery must stay free
    when disabled), and mode-on must stay within 10% of the *fresh* mode-off
    arm (the token path adds no modelled cost; a gap here means tokens
    started charging wire or planner time).

The committed baseline is read from git HEAD so the smoke run that just
overwrote the working-tree file cannot compare against itself. If a baseline
file does not exist in HEAD yet (bootstrap), the corresponding check is
skipped with a warning.
"""

import json
import subprocess
import sys

TOLERANCE = 0.10


def committed(path):
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD:{path}"],
            capture_output=True,
            check=True,
        ).stdout
        return json.loads(out)
    except (subprocess.CalledProcessError, json.JSONDecodeError):
        return None


def fresh(path):
    try:
        with open(path) as f:
            return json.loads(f.read())
    except (OSError, json.JSONDecodeError):
        return None


def main():
    failures = []
    skipped = []

    new_wl = fresh("BENCH_workloads_smoke.json")
    if new_wl is None:
        failures.append("BENCH_workloads_smoke.json missing — run scripts/bench_workloads.sh --smoke first")
    base_wl = committed("BENCH_workloads_smoke.json")
    if base_wl is None:
        skipped.append("no committed BENCH_workloads_smoke.json baseline (bootstrap)")
    elif new_wl is not None:
        for section, label in [
            ("multi_tenant", "TPC-C"),
            ("high_performance_crud", "YCSB"),
        ]:
            baseline = base_wl[section]["distributed"]["units_per_vsec"]
            current = new_wl[section]["distributed"]["units_per_vsec"]
            floor = baseline * (1.0 - TOLERANCE)
            status = "ok" if current >= floor else "REGRESSED"
            print(
                f"  {label}: {current:.3f} units/vsec vs baseline {baseline:.3f} "
                f"(floor {floor:.3f}) {status}"
            )
            if current < floor:
                failures.append(
                    f"{label} distributed units_per_vsec regressed >10%: "
                    f"{current:.3f} < {floor:.3f} (baseline {baseline:.3f})"
                )

    new_ex = fresh("BENCH_executor_smoke.json")
    if new_ex is None:
        failures.append("BENCH_executor_smoke.json missing — run scripts/bench.sh --smoke first")
    else:
        warm = new_ex["plan_cache"]["warm_ms_per_stmt"]
        cold = new_ex["plan_cache"]["cold_ms_per_stmt"]
        status = "ok" if warm < cold else "REGRESSED"
        print(f"  plan cache: warm {warm:.5f} ms/stmt vs cold {cold:.5f} {status}")
        if not warm < cold:
            failures.append(
                f"warm plan-cache arm ({warm:.5f} ms/stmt) not cheaper than cold "
                f"({cold:.5f}) on the virtual clock"
            )

    new_col = fresh("BENCH_columnar_smoke.json")
    if new_col is None:
        failures.append(
            "BENCH_columnar_smoke.json missing — run scripts/bench_columnar.sh --smoke first"
        )
    else:
        vec = new_col["vectorized"]["units_per_vsec"]
        vol = new_col["volcano"]["units_per_vsec"]
        status = "ok" if vec > vol else "REGRESSED"
        print(f"  columnar: vectorized {vec:.3f} units/vsec vs volcano {vol:.3f} {status}")
        if not vec > vol:
            failures.append(
                f"vectorized columnar arm ({vec:.3f} units/vsec) not faster than "
                f"volcano ({vol:.3f}) on the virtual clock"
            )
        base_col = committed("BENCH_columnar_smoke.json")
        if base_col is None:
            skipped.append("no committed BENCH_columnar_smoke.json baseline (bootstrap)")
        else:
            baseline = base_col["vectorized"]["units_per_vsec"]
            floor = baseline * (1.0 - TOLERANCE)
            status = "ok" if vec >= floor else "REGRESSED"
            print(
                f"  columnar vectorized: {vec:.3f} units/vsec vs baseline {baseline:.3f} "
                f"(floor {floor:.3f}) {status}"
            )
            if vec < floor:
                failures.append(
                    f"columnar vectorized units_per_vsec regressed >10%: "
                    f"{vec:.3f} < {floor:.3f} (baseline {baseline:.3f})"
                )

    new_ru = fresh("BENCH_rollup_smoke.json")
    if new_ru is None:
        failures.append(
            "BENCH_rollup_smoke.json missing — run scripts/bench_rollup.sh --smoke first"
        )
    else:
        incr = new_ru["incremental"]["units_per_vsec"]
        rec = new_ru["recompute"]["units_per_vsec"]
        status = "ok" if incr > rec else "REGRESSED"
        print(f"  rollup: incremental {incr:.3f} units/vsec vs recompute {rec:.3f} {status}")
        if not incr > rec:
            failures.append(
                f"incremental rollup arm ({incr:.3f} units/vsec) not faster than "
                f"recompute ({rec:.3f}) on the virtual clock"
            )
        base_ru = committed("BENCH_rollup_smoke.json")
        if base_ru is None:
            skipped.append("no committed BENCH_rollup_smoke.json baseline (bootstrap)")
        else:
            baseline = base_ru["incremental"]["units_per_vsec"]
            floor = baseline * (1.0 - TOLERANCE)
            status = "ok" if incr >= floor else "REGRESSED"
            print(
                f"  rollup incremental: {incr:.3f} units/vsec vs baseline {baseline:.3f} "
                f"(floor {floor:.3f}) {status}"
            )
            if incr < floor:
                failures.append(
                    f"rollup incremental units_per_vsec regressed >10%: "
                    f"{incr:.3f} < {floor:.3f} (baseline {baseline:.3f})"
                )

    new_si = fresh("BENCH_snapshot_smoke.json")
    if new_si is None:
        failures.append(
            "BENCH_snapshot_smoke.json missing — run scripts/bench_workloads.sh --smoke first"
        )
    else:
        off = new_si["mode_off"]["units_per_vsec"]
        on = new_si["mode_on"]["units_per_vsec"]
        floor = off * (1.0 - TOLERANCE)
        status = "ok" if on >= floor else "REGRESSED"
        print(
            f"  snapshot isolation: mode-on {on:.3f} units/vsec vs mode-off {off:.3f} "
            f"(floor {floor:.3f}) {status}"
        )
        if on < floor:
            failures.append(
                f"snapshot-isolation mode-on overhead exceeds 10%: "
                f"{on:.3f} < {floor:.3f} (mode-off {off:.3f})"
            )
        base_si = committed("BENCH_snapshot_smoke.json")
        if base_si is None:
            skipped.append("no committed BENCH_snapshot_smoke.json baseline (bootstrap)")
        else:
            baseline = base_si["mode_off"]["units_per_vsec"]
            floor = baseline * (1.0 - TOLERANCE)
            status = "ok" if off >= floor else "REGRESSED"
            print(
                f"  snapshot mode-off: {off:.3f} units/vsec vs baseline {baseline:.3f} "
                f"(floor {floor:.3f}) {status}"
            )
            if off < floor:
                failures.append(
                    f"mode-off units_per_vsec regressed >10% (the disabled token "
                    f"machinery must stay free): {off:.3f} < {floor:.3f} "
                    f"(baseline {baseline:.3f})"
                )

    for s in skipped:
        print(f"  skipped: {s}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("  bench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
