#!/usr/bin/env sh
# Tier-1 CI gate. Mirrors what the driver runs, plus a warnings-as-errors
# pass over the paper-contribution crate and the fault-injection suite.
#
#   1. release build of the whole workspace
#   2. full test suite (quiet)
#   3. crates/core must compile warning-free (tests included)
#   4. deterministic fault-injection suite, run explicitly so a partial
#      test filter in step 2 can never silently skip it
#   5. parallel-executor equivalence + plan-cache suite, same reasoning
#   6. observability suite: golden EXPLAIN/trace snapshots (including the
#      executor_threads=1 vs =8 trace-fingerprint diff) + the differential
#      oracle against single-node pgmini under an active fault plan
#   7. rebalancer crash-safety drills: a move killed at every phase boundary
#      (error and crash+promote), move-journal recovery, and the
#      concurrent-writes-during-faulted-move oracle proptest
#   8. one-iteration smoke of the executor bench (exercises the wall-clock
#      fan-out and plan-cache paths end to end; no thresholds)
set -eu

cd "$(dirname "$0")/.."

echo "==> [1/8] cargo build --release"
cargo build --release

echo "==> [2/8] cargo test -q"
cargo test -q

echo "==> [3/8] warnings-as-errors check of crates/core"
RUSTFLAGS="-Dwarnings" cargo check -p citrus --all-targets

echo "==> [4/8] fault-injection suite"
cargo test -q -p citrus --test faults

echo "==> [5/8] parallel-executor equivalence suite"
cargo test -q -p citrus --test executor_parallel

echo "==> [6/8] trace-golden + differential-oracle suite (1 vs 8 threads)"
cargo test -q -p citrus --test trace_golden --test oracle_differential

echo "==> [7/8] rebalancer crash-safety drill suite"
cargo test -q -p citrus --test rebalance_faults

echo "==> [8/8] executor bench smoke"
sh scripts/bench.sh --smoke

echo "==> CI green"
