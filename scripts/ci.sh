#!/usr/bin/env sh
# Tier-1 CI gate. Mirrors what the driver runs, plus a warnings-as-errors
# pass over the paper-contribution crate and the fault-injection suite.
#
#   1. release build of the whole workspace
#   2. full test suite (quiet)
#   3. crates/core must compile warning-free (tests included)
#   4. deterministic fault-injection suite, run explicitly so a partial
#      test filter in step 2 can never silently skip it
set -eu

cd "$(dirname "$0")/.."

echo "==> [1/4] cargo build --release"
cargo build --release

echo "==> [2/4] cargo test -q"
cargo test -q

echo "==> [3/4] warnings-as-errors check of crates/core"
RUSTFLAGS="-Dwarnings" cargo check -p citrus --all-targets

echo "==> [4/4] fault-injection suite"
cargo test -q -p citrus --test faults

echo "==> CI green"
