#!/usr/bin/env sh
# Tier-1 CI gate. Mirrors what the driver runs, plus a warnings-as-errors
# pass over the paper-contribution crate and the fault-injection suite.
#
#   1. release build of the whole workspace
#   2. full test suite (quiet)
#   3. crates/core must compile warning-free (tests included)
#   4. deterministic fault-injection suite, run explicitly so a partial
#      test filter in step 2 can never silently skip it
#   5. parallel-executor equivalence + plan-cache suite, same reasoning
#   6. observability suite: golden EXPLAIN/trace snapshots (including the
#      executor_threads=1 vs =8 trace-fingerprint diff) + the differential
#      oracle against single-node pgmini under an active fault plan
#   7. vectorized-execution differential wall: batched columnar kernels vs
#      the volcano path on identical clusters (results, error codes, fault
#      fingerprints, and 1-vs-8-thread cost/trace invariance per mode)
#   8. rebalancer crash-safety drills: a move killed at every phase boundary
#      (error and crash+promote), move-journal recovery, and the
#      concurrent-writes-during-faulted-move oracle proptest
#   9. snapshot-isolation anomaly wall: the interleaver-driven read-skew
#      demonstrator/mirror pair (tests/semantics.rs) and the mode x thread
#      differential + MX frozen-window suite (mx_snapshot.rs), run
#      explicitly so a partial filter can never skip the anomaly tests
#  10. MX generation-fence escalation drills: concurrent DDL / frozen DDL /
#      shard moves / failover interleaved into open MX transactions
#      (mx_ddl_escalation.rs, with the pre-fix hang and silent-commit
#      anomalies kept as negative demonstrators), plus the sim's
#      mx_ddl_interleave drill mode under the full chaos plan — run
#      explicitly so a partial filter can never skip the fence wall
#  11. workloads suite, run explicitly: seeded-chaos sim corpus (every seed
#      oracle-checked with >= 1 move, failover, and faulted statement;
#      even seeds run with snapshot isolation on and the read-skew
#      invariant active), seed-determinism of the workload drivers, and the
#      INSERT..SELECT / stored-procedure differential tests
#  12. rollup/changefeed recompute-differential wall + chaos drills
#      (rollup_differential.rs, rollup_drills.rs): incremental maintenance
#      vs full recompute under proptest op streams at 1 and 8 threads with
#      and without a fault plan, plus crash+promote, per-phase faulted
#      moves with cursor handoff, and the frozen-2PC window — run
#      explicitly so a partial filter can never skip the differential wall
#  13. one-iteration smoke of the executor bench (exercises the wall-clock
#      fan-out and plan-cache paths end to end; no thresholds)
#  14. one-iteration smoke of the §4 workloads evaluation (also writes the
#      snapshot-isolation mode-off vs mode-on overhead artifact; the
#      distributed real-time-analytics arm serves its dashboard from the
#      incrementally maintained commit rollup)
#  15. smoke of the columnar vectorized-vs-volcano bench
#  16. smoke of the incremental-rollup-vs-recompute bench
#  17. bench regression gate: the smoke artifacts' virtual-time numbers are
#      deterministic, so they are compared against the committed
#      BENCH_*_smoke.json baselines — TPC-C / YCSB / columnar-vectorized
#      units_per_vsec must not regress more than 10%, the warm plan-cache arm
#      must stay cheaper than cold, the vectorized columnar arm must beat
#      volcano on the virtual clock, and snapshot isolation must cost
#      nothing when off (mode-off vs committed baseline) and <=10% when on
#      (mode-on vs fresh mode-off); the incremental rollup arm must beat
#      recompute and not regress more than 10% against its baseline
#
# Usage: scripts/ci.sh [--long]
#   --long   widen the sim chaos corpus (CITRUS_SIM_SEEDS=60; default 25)
set -eu

cd "$(dirname "$0")/.."

SIM_SEEDS=25
for arg in "$@"; do
    case "$arg" in
        --long) SIM_SEEDS=60 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> [1/17] cargo build --release"
cargo build --release

echo "==> [2/17] cargo test -q"
cargo test -q

echo "==> [3/17] warnings-as-errors check of crates/core"
RUSTFLAGS="-Dwarnings" cargo check -p citrus --all-targets

echo "==> [4/17] fault-injection suite"
cargo test -q -p citrus --test faults

echo "==> [5/17] parallel-executor equivalence suite"
cargo test -q -p citrus --test executor_parallel

echo "==> [6/17] trace-golden + differential-oracle suite (1 vs 8 threads)"
cargo test -q -p citrus --test trace_golden --test oracle_differential

echo "==> [7/17] vectorized-vs-volcano differential wall"
cargo test -q -p citrus --test executor_vectorized

echo "==> [8/17] rebalancer crash-safety drill suite"
cargo test -q -p citrus --test rebalance_faults

echo "==> [9/17] snapshot-isolation anomaly wall (demonstrator/mirror + MX differential)"
cargo test -q --test semantics
cargo test -q -p citrus --test mx_snapshot

echo "==> [10/17] MX generation-fence escalation drills"
cargo test -q -p citrus --test mx_ddl_escalation
cargo test -q -p workloads --test sim_chaos mx_ddl_interleave_drill_corpus
cargo test -q -p workloads --test sim_chaos drill_

echo "==> [11/17] workloads suite: sim chaos corpus (${SIM_SEEDS} seeds) + oracle tests"
CITRUS_SIM_SEEDS="$SIM_SEEDS" cargo test -q -p workloads

echo "==> [12/17] rollup recompute-differential wall + chaos drills"
cargo test -q -p citrus --test rollup_differential --test rollup_drills

echo "==> [13/17] executor bench smoke"
sh scripts/bench.sh --smoke

echo "==> [14/17] workloads bench smoke"
sh scripts/bench_workloads.sh --smoke

echo "==> [15/17] columnar vectorized bench smoke"
sh scripts/bench_columnar.sh --smoke

echo "==> [16/17] rollup incremental-vs-recompute bench smoke"
sh scripts/bench_rollup.sh --smoke

echo "==> [17/17] bench regression gate (vs committed smoke baselines)"
python3 scripts/check_bench_regression.py

echo "==> CI green"
