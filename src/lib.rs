//! Umbrella crate for the Citus (SIGMOD 2021) reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

pub use citrus;
pub use netsim;
pub use pgmini;
pub use sqlparse;
pub use workloads;
