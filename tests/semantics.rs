//! Cross-crate semantic checks: the §3.7.4 trade-offs the paper accepts,
//! failure handling, and end-to-end consistency properties.

use citrus::cluster::{Cluster, ClusterConfig};
use pgmini::error::ErrorCode;
use pgmini::types::Datum;
use std::sync::Arc;

fn cluster(workers: u32) -> Arc<Cluster> {
    cluster_with(workers, false)
}

fn cluster_with(workers: u32, snapshot_isolation: bool) -> Arc<Cluster> {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = 8;
    cfg.snapshot_isolation = snapshot_isolation;
    let c = Cluster::new(cfg);
    for _ in 0..workers {
        c.add_worker().unwrap();
    }
    c
}

/// Two keys of `pairs` whose shards live on different nodes, plus the node
/// holding the second key (the interleaver's freeze victim).
fn keys_on_two_nodes(c: &Arc<Cluster>) -> (i64, i64, citrus::NodeId) {
    let meta = c.metadata.read();
    let dt = meta.table("pairs").unwrap();
    for a in 0..16i64 {
        for b in 0..16i64 {
            let ba = meta.shard_index_for_value("pairs", &Datum::Int(a)).unwrap();
            let bb = meta.shard_index_for_value("pairs", &Datum::Int(b)).unwrap();
            let na = meta.shard(dt.shards[ba]).unwrap().placements[0];
            let nb = meta.shard(dt.shards[bb]).unwrap().placements[0];
            if na != nb {
                return (a, b, nb);
            }
        }
    }
    panic!("no two keys on different nodes");
}

/// Seed `pairs` and run a two-node value transfer (+5/-5) to COMMIT while
/// the second key's node has its `COMMIT PREPARED` frozen. Returns the split
/// handle and the two keys: the cluster sits in the half-applied window.
fn transfer_under_frozen_commit(
    c: &Arc<Cluster>,
) -> (citrus::interleave::SplitCommit, i64, i64) {
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE pairs (k bigint PRIMARY KEY, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('pairs', 'k')").unwrap();
    for k in 0..16i64 {
        s.execute(&format!("INSERT INTO pairs VALUES ({k}, 0)")).unwrap();
    }
    let (ka, kb, victim) = keys_on_two_nodes(c);
    let split = citrus::interleave::freeze_commit_prepared(c, victim);
    s.execute("BEGIN").unwrap();
    s.execute(&format!("UPDATE pairs SET v = v + 5 WHERE k = {ka}")).unwrap();
    s.execute(&format!("UPDATE pairs SET v = v - 5 WHERE k = {kb}")).unwrap();
    // the client's COMMIT succeeds: the decision is durable, recovery owns
    // the frozen half (§3.7.2)
    s.execute("COMMIT").unwrap();
    assert_eq!(split.frozen_gids().len(), 1, "one half held open on the victim");
    (split, ka, kb)
}

/// §3.7.4 read-skew *demonstrator*: with `snapshot_isolation` off, a
/// concurrent multi-node read observes a committed multi-node write
/// half-applied — the anomaly the paper explicitly accepts. The interleaver
/// holds a two-node transfer's COMMIT between its `COMMIT PREPARED` steps;
/// a reader in the window sees money created out of thin air. This test is
/// kept deliberately as the negative/anomaly-documenting half of the pair:
/// it proves the window is real, and that atomicity still holds *eventually*
/// (after release, no reader ever sees a partial state).
#[test]
fn read_skew_demonstrated_without_snapshot_isolation() {
    let c = cluster(3);
    let (split, ka, kb) = transfer_under_frozen_commit(&c);
    // the anomaly: +5 applied, -5 still held prepared on the victim
    let mut reader = c.session().unwrap();
    let r = reader.execute("SELECT sum(v) FROM pairs").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(5), "reader sees the transfer half-applied");
    let r = reader.execute(&format!("SELECT v FROM pairs WHERE k = {ka}")).unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(5));
    let r = reader.execute(&format!("SELECT v FROM pairs WHERE k = {kb}")).unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(0), "victim's half not yet applied");
    // the sim invariant flags exactly this window
    let err = workloads::sim::check_read_skew(&c).unwrap_err();
    assert!(err.contains("read skew"), "{err}");
    // release: recovery finishes the frozen half, atomicity is restored
    split.release().unwrap();
    assert!(workloads::sim::check_read_skew(&c).is_ok());
    let r = reader.execute("SELECT sum(v) FROM pairs").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(0));
    let r = reader.execute(&format!("SELECT v FROM pairs WHERE k = {kb}")).unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(-5));
}

/// The mirror: with `snapshot_isolation` on, the same interleaving cannot
/// produce the anomaly. The 2PC published its decided commit timestamp for
/// every participant before any `COMMIT PREPARED` went out, so a token
/// reader sees the transfer atomically — the frozen, still-prepared half
/// included — and the sim invariant stays green inside the window.
#[test]
fn snapshot_isolation_makes_the_anomaly_impossible() {
    let c = cluster_with(3, true);
    let (split, ka, kb) = transfer_under_frozen_commit(&c);
    let mut reader = c.session().unwrap();
    let r = reader.execute("SELECT sum(v) FROM pairs").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(0), "no token reader sees a partial commit");
    let r = reader.execute(&format!("SELECT v FROM pairs WHERE k = {ka}")).unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(5));
    // the frozen half is decided: token visibility reads it through the
    // commit-clock registry even though the node still holds it prepared
    let r = reader.execute(&format!("SELECT v FROM pairs WHERE k = {kb}")).unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(-5));
    assert!(workloads::sim::check_read_skew(&c).is_ok(), "no skew window under tokens");
    split.release().unwrap();
    let r = reader.execute("SELECT sum(v) FROM pairs").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(0));
}

/// A failed statement inside a distributed transaction aborts everything on
/// every node (no partial effects).
#[test]
fn distributed_transaction_aborts_cleanly_on_error() {
    let c = cluster(2);
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint NOT NULL)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    for k in 0..8i64 {
        s.execute(&format!("INSERT INTO t VALUES ({k}, 0)")).unwrap();
    }
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 1").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 2").unwrap();
    // constraint violation dooms the transaction
    let err = s.execute("UPDATE t SET v = NULL WHERE k = 3").unwrap_err();
    assert_eq!(err.code, ErrorCode::NotNullViolation);
    let err = s.execute("SELECT 1").unwrap_err();
    assert_eq!(err.code, ErrorCode::InvalidTransactionState);
    s.execute("ROLLBACK").unwrap();
    let mut r = c.session().unwrap();
    let sum = r.execute("SELECT sum(v) FROM t").unwrap();
    assert_eq!(sum.rows()[0][0], Datum::Int(0), "nothing leaked from the aborted txn");
}

/// Worker failure mid-transaction rolls the distributed transaction back;
/// after failover the cluster serves committed data.
#[test]
fn node_failure_mid_transaction_then_failover() {
    let c = cluster(3);
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    for k in 0..24i64 {
        s.execute(&format!("INSERT INTO t VALUES ({k}, {k})")).unwrap();
    }
    // find two keys on different nodes
    let (k1, k2, victim) = {
        let meta = c.metadata.read();
        let dt = meta.table("t").unwrap();
        let mut found = None;
        'outer: for a in 0..24i64 {
            for b in 0..24i64 {
                let ba = meta.shard_index_for_value("t", &Datum::Int(a)).unwrap();
                let bb = meta.shard_index_for_value("t", &Datum::Int(b)).unwrap();
                let na = meta.shard(dt.shards[ba]).unwrap().placements[0];
                let nb = meta.shard(dt.shards[bb]).unwrap().placements[0];
                if na != nb {
                    found = Some((a, b, nb));
                    break 'outer;
                }
            }
        }
        found.expect("keys on two nodes")
    };
    s.execute("BEGIN").unwrap();
    s.execute(&format!("UPDATE t SET v = 999 WHERE k = {k1}")).unwrap();
    // the second node dies before we touch it
    citrus::ha::crash_node(&c, victim).unwrap();
    let err = s.execute(&format!("UPDATE t SET v = 999 WHERE k = {k2}")).unwrap_err();
    assert_eq!(err.code, ErrorCode::ConnectionFailure);
    s.execute("ROLLBACK").unwrap();
    // promote the standby; all committed data survives, the aborted write
    // is gone
    citrus::ha::promote_standby(&c, victim).unwrap();
    // the ORIGINAL session must recover too: its broken pooled connection
    // is evicted and the next statement reconnects
    let row = s.execute(&format!("SELECT v FROM t WHERE k = {k2}")).unwrap();
    assert_eq!(row.rows()[0][0], Datum::Int(k2));
    let mut r = c.session().unwrap();
    let row = r.execute(&format!("SELECT v FROM t WHERE k = {k1}")).unwrap();
    assert_eq!(row.rows()[0][0], Datum::Int(k1));
    let row = r.execute(&format!("SELECT v FROM t WHERE k = {k2}")).unwrap();
    assert_eq!(row.rows()[0][0], Datum::Int(k2));
}

/// The maintenance daemon wiring: deadlock detection + 2PC recovery run on
/// their intervals through the background-worker API.
#[test]
fn maintenance_daemon_runs() {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = 4;
    cfg.deadlock_detection_interval = std::time::Duration::from_millis(10);
    cfg.recovery_interval = std::time::Duration::from_millis(10);
    let c = Cluster::new(cfg);
    c.add_worker().unwrap();
    let mut daemon = citrus::maintenance::start(&c);
    std::thread::sleep(std::time::Duration::from_millis(80));
    daemon.stop();
    assert!(daemon.detection_passes() >= 2, "daemon must have polled");
}

/// Workload drivers + cluster + MVA solver compose into a sane closed loop
/// (the benchmark methodology itself is tested).
#[test]
fn closed_loop_methodology_sanity() {
    let samples = vec![
        workloads::runner::RunCost {
            per_node: vec![(1, 1.0, 0.5)],
            net_ms: 0.5,
            elapsed_ms: 2.0,
        };
        16
    ];
    let mut total = workloads::runner::RunCost::default();
    for s in &samples {
        total.add(s);
    }
    assert!((total.total_cpu() - 16.0).abs() < 1e-9);
    // one 16-core node, per-txn 1ms cpu + 0.5ms disk: disk saturates first
    let stations = vec![
        netsim::Station::queueing("cpu", 1.0, 16),
        netsim::Station::queueing("disk", 0.5, 1),
        netsim::Station::delay("net", 0.5),
    ];
    let r = netsim::solve(&stations, 200, 0.0);
    assert_eq!(r.bottleneck, "disk");
    assert!((r.throughput_per_sec - 2000.0).abs() < 20.0, "{}", r.throughput_per_sec);
}
