//! Cross-crate semantic checks: the §3.7.4 trade-offs the paper accepts,
//! failure handling, and end-to-end consistency properties.

use citrus::cluster::{Cluster, ClusterConfig};
use pgmini::error::ErrorCode;
use pgmini::types::Datum;
use std::sync::Arc;

fn cluster(workers: u32) -> Arc<Cluster> {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = 8;
    let c = Cluster::new(cfg);
    for _ in 0..workers {
        c.add_worker().unwrap();
    }
    c
}

/// §3.7.4: citrus provides atomicity but *not* distributed snapshot
/// isolation. A concurrent multi-node read can observe a multi-node write
/// half-applied (committed on one node, not yet on another) — the anomaly
/// the paper explicitly accepts. This test documents that the system is
/// still atomic *eventually*: after commit completes, no reader ever sees a
/// partial state.
#[test]
fn atomic_after_commit_despite_no_snapshot_isolation() {
    let c = cluster(3);
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE pairs (k bigint PRIMARY KEY, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('pairs', 'k')").unwrap();
    for k in 0..16i64 {
        s.execute(&format!("INSERT INTO pairs VALUES ({k}, 0)")).unwrap();
    }
    // writer: multi-node transaction moving value between two keys
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE pairs SET v = v + 5 WHERE k = 1").unwrap();
    s.execute("UPDATE pairs SET v = v - 5 WHERE k = 9").unwrap();
    s.execute("COMMIT").unwrap();
    // after commit, every reader sees the balanced state
    let mut reader = c.session().unwrap();
    let r = reader.execute("SELECT sum(v) FROM pairs").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(0));
    let r = reader.execute("SELECT v FROM pairs WHERE k = 1").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(5));
}

/// A failed statement inside a distributed transaction aborts everything on
/// every node (no partial effects).
#[test]
fn distributed_transaction_aborts_cleanly_on_error() {
    let c = cluster(2);
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint NOT NULL)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    for k in 0..8i64 {
        s.execute(&format!("INSERT INTO t VALUES ({k}, 0)")).unwrap();
    }
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 1").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 2").unwrap();
    // constraint violation dooms the transaction
    let err = s.execute("UPDATE t SET v = NULL WHERE k = 3").unwrap_err();
    assert_eq!(err.code, ErrorCode::NotNullViolation);
    let err = s.execute("SELECT 1").unwrap_err();
    assert_eq!(err.code, ErrorCode::InvalidTransactionState);
    s.execute("ROLLBACK").unwrap();
    let mut r = c.session().unwrap();
    let sum = r.execute("SELECT sum(v) FROM t").unwrap();
    assert_eq!(sum.rows()[0][0], Datum::Int(0), "nothing leaked from the aborted txn");
}

/// Worker failure mid-transaction rolls the distributed transaction back;
/// after failover the cluster serves committed data.
#[test]
fn node_failure_mid_transaction_then_failover() {
    let c = cluster(3);
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    for k in 0..24i64 {
        s.execute(&format!("INSERT INTO t VALUES ({k}, {k})")).unwrap();
    }
    // find two keys on different nodes
    let (k1, k2, victim) = {
        let meta = c.metadata.read();
        let dt = meta.table("t").unwrap();
        let mut found = None;
        'outer: for a in 0..24i64 {
            for b in 0..24i64 {
                let ba = meta.shard_index_for_value("t", &Datum::Int(a)).unwrap();
                let bb = meta.shard_index_for_value("t", &Datum::Int(b)).unwrap();
                let na = meta.shard(dt.shards[ba]).unwrap().placements[0];
                let nb = meta.shard(dt.shards[bb]).unwrap().placements[0];
                if na != nb {
                    found = Some((a, b, nb));
                    break 'outer;
                }
            }
        }
        found.expect("keys on two nodes")
    };
    s.execute("BEGIN").unwrap();
    s.execute(&format!("UPDATE t SET v = 999 WHERE k = {k1}")).unwrap();
    // the second node dies before we touch it
    citrus::ha::crash_node(&c, victim).unwrap();
    let err = s.execute(&format!("UPDATE t SET v = 999 WHERE k = {k2}")).unwrap_err();
    assert_eq!(err.code, ErrorCode::ConnectionFailure);
    s.execute("ROLLBACK").unwrap();
    // promote the standby; all committed data survives, the aborted write
    // is gone
    citrus::ha::promote_standby(&c, victim).unwrap();
    // the ORIGINAL session must recover too: its broken pooled connection
    // is evicted and the next statement reconnects
    let row = s.execute(&format!("SELECT v FROM t WHERE k = {k2}")).unwrap();
    assert_eq!(row.rows()[0][0], Datum::Int(k2));
    let mut r = c.session().unwrap();
    let row = r.execute(&format!("SELECT v FROM t WHERE k = {k1}")).unwrap();
    assert_eq!(row.rows()[0][0], Datum::Int(k1));
    let row = r.execute(&format!("SELECT v FROM t WHERE k = {k2}")).unwrap();
    assert_eq!(row.rows()[0][0], Datum::Int(k2));
}

/// The maintenance daemon wiring: deadlock detection + 2PC recovery run on
/// their intervals through the background-worker API.
#[test]
fn maintenance_daemon_runs() {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = 4;
    cfg.deadlock_detection_interval = std::time::Duration::from_millis(10);
    cfg.recovery_interval = std::time::Duration::from_millis(10);
    let c = Cluster::new(cfg);
    c.add_worker().unwrap();
    let mut daemon = citrus::maintenance::start(&c);
    std::thread::sleep(std::time::Duration::from_millis(80));
    daemon.stop();
    assert!(daemon.detection_passes() >= 2, "daemon must have polled");
}

/// Workload drivers + cluster + MVA solver compose into a sane closed loop
/// (the benchmark methodology itself is tested).
#[test]
fn closed_loop_methodology_sanity() {
    let samples = vec![
        workloads::runner::RunCost {
            per_node: vec![(1, 1.0, 0.5)],
            net_ms: 0.5,
            elapsed_ms: 2.0,
        };
        16
    ];
    let mut total = workloads::runner::RunCost::default();
    for s in &samples {
        total.add(s);
    }
    assert!((total.total_cpu() - 16.0).abs() < 1e-9);
    // one 16-core node, per-txn 1ms cpu + 0.5ms disk: disk saturates first
    let stations = vec![
        netsim::Station::queueing("cpu", 1.0, 16),
        netsim::Station::queueing("disk", 0.5, 1),
        netsim::Station::delay("net", 0.5),
    ];
    let r = netsim::solve(&stations, 200, 0.0);
    assert_eq!(r.bottleneck, "disk");
    assert!((r.throughput_per_sec - 2000.0).abs() < 20.0, "{}", r.throughput_per_sec);
}
