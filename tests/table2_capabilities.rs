//! Table 2, executed: every capability the paper's workload patterns require
//! is exercised against a live cluster. Each test is one row of the table.

use citrus::cluster::{Cluster, ClusterConfig};
use citrus::metadata::NodeId;
use pgmini::types::Datum;
use std::sync::Arc;

fn cluster() -> Arc<Cluster> {
    let mut cfg = ClusterConfig::default();
    cfg.shard_count = 8;
    let c = Cluster::new(cfg);
    c.add_worker().unwrap();
    c.add_worker().unwrap();
    c
}

#[test]
fn distributed_tables() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint, v text)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    assert!(c.metadata.read().is_citrus_table("t"));
    assert_eq!(c.metadata.read().table("t").unwrap().shards.len(), 8);
}

#[test]
fn colocated_distributed_tables() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE a (k bigint)").unwrap();
    s.execute("SELECT create_distributed_table('a', 'k')").unwrap();
    s.execute("CREATE TABLE b (k bigint)").unwrap();
    s.execute("SELECT create_distributed_table('b', 'k', 'a')").unwrap();
    let meta = c.metadata.read();
    assert_eq!(
        meta.table("a").unwrap().colocation_id,
        meta.table("b").unwrap().colocation_id
    );
}

#[test]
fn reference_tables() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE dims (id bigint PRIMARY KEY, label text)").unwrap();
    s.execute("SELECT create_reference_table('dims')").unwrap();
    s.execute("INSERT INTO dims VALUES (1, 'x')").unwrap();
    let meta = c.metadata.read();
    let shard = meta.shard(meta.table("dims").unwrap().shards[0]).unwrap();
    assert_eq!(shard.placements.len(), 3, "replicated to every node");
}

#[test]
fn local_tables_coexist() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE local_cfg (k text PRIMARY KEY, v text)").unwrap();
    s.execute("INSERT INTO local_cfg VALUES ('a', '1')").unwrap();
    let r = s.execute("SELECT v FROM local_cfg WHERE k = 'a'").unwrap();
    assert_eq!(r.rows()[0][0], Datum::from_text("1"));
}

#[test]
fn distributed_transactions() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    for k in 0..32i64 {
        s.execute(&format!("INSERT INTO t VALUES ({k}, 0)")).unwrap();
    }
    s.execute("BEGIN").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 1").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 9").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE k = 17").unwrap();
    s.execute("COMMIT").unwrap();
    let r = s.execute("SELECT sum(v) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(3));
}

#[test]
fn distributed_schema_changes() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint, v text)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    s.execute("CREATE INDEX t_v ON t (v)").unwrap();
    // every shard received the index
    let meta = c.metadata.read();
    for sid in &meta.table("t").unwrap().shards {
        let shard = meta.shard(*sid).unwrap();
        let e = c.node(shard.placements[0]).unwrap().engine();
        let m = e.table_meta(&shard.physical_name()).unwrap();
        assert!(!m.indexes.is_empty());
    }
}

#[test]
fn query_routing() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint, v text)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    s.execute("INSERT INTO t VALUES (7, 'hi')").unwrap();
    s.execute("SELECT v FROM t WHERE k = 7").unwrap();
    let ext = c.extension(NodeId(0)).unwrap();
    assert_eq!(
        ext.last_planner_kind(s.session_mut().id()),
        Some(citrus::PlannerKind::FastPath)
    );
}

#[test]
fn parallel_distributed_select() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    for k in 0..64i64 {
        s.execute(&format!("INSERT INTO t VALUES ({k}, {k})")).unwrap();
    }
    let r = s.execute("SELECT count(*), sum(v) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(64));
    let ext = c.extension(NodeId(0)).unwrap();
    assert_eq!(
        ext.last_planner_kind(s.session_mut().id()),
        Some(citrus::PlannerKind::Pushdown)
    );
}

#[test]
fn parallel_distributed_dml() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE raw (k bigint, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('raw', 'k')").unwrap();
    s.execute("CREATE TABLE rollup (k bigint, total bigint)").unwrap();
    s.execute("SELECT create_distributed_table('rollup', 'k', 'raw')").unwrap();
    for k in 0..32i64 {
        s.execute(&format!("INSERT INTO raw VALUES ({k}, 1), ({k}, 2)")).unwrap();
    }
    // multi-shard UPDATE
    let n = s.execute("UPDATE raw SET v = v + 10 WHERE v = 1").unwrap().affected();
    assert_eq!(n, 32);
    // co-located INSERT..SELECT
    let n = s
        .execute("INSERT INTO rollup (k, total) SELECT k, sum(v) FROM raw GROUP BY k")
        .unwrap()
        .affected();
    assert_eq!(n, 32);
}

#[test]
fn colocated_distributed_joins() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE a (k bigint, x bigint)").unwrap();
    s.execute("SELECT create_distributed_table('a', 'k')").unwrap();
    s.execute("CREATE TABLE b (k bigint, y bigint)").unwrap();
    s.execute("SELECT create_distributed_table('b', 'k', 'a')").unwrap();
    for k in 0..20i64 {
        s.execute(&format!("INSERT INTO a VALUES ({k}, {k})")).unwrap();
        s.execute(&format!("INSERT INTO b VALUES ({k}, {})", k * 2)).unwrap();
    }
    let r = s
        .execute("SELECT count(*) FROM a JOIN b ON a.k = b.k WHERE a.x < 10")
        .unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(10));
}

#[test]
fn non_colocated_distributed_joins() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE big (k bigint, x bigint)").unwrap();
    s.execute("SELECT create_distributed_table('big', 'k')").unwrap();
    s.execute("CREATE TABLE other (x bigint, label text)").unwrap();
    s.execute("SELECT create_distributed_table('other', 'x', 'none')").unwrap();
    for k in 0..30i64 {
        s.execute(&format!("INSERT INTO big VALUES ({k}, {})", k % 3)).unwrap();
    }
    for x in 0..3i64 {
        s.execute(&format!("INSERT INTO other VALUES ({x}, 'l{x}')")).unwrap();
    }
    let r = s
        .execute(
            "SELECT o.label, count(*) FROM big b JOIN other o ON b.x = o.x \
             GROUP BY o.label ORDER BY 1",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 3);
    assert_eq!(r.rows()[0][1], Datum::Int(10));
}

#[test]
fn columnar_storage() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE facts (k bigint, v float)").unwrap();
    c.coordinator().engine().set_columnar("facts").unwrap();
    s.execute("INSERT INTO facts VALUES (1, 0.5), (2, 1.5)").unwrap();
    let r = s.execute("SELECT sum(v) FROM facts").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Float(2.0));
}

#[test]
fn parallel_bulk_loading() {
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint, v text)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    let rows: Vec<Vec<Datum>> =
        (0..1000).map(|i| vec![Datum::Int(i), Datum::Text(format!("v{i}"))]).collect();
    let n = s.copy("t", &[], rows).unwrap();
    assert_eq!(n, 1000);
    let r = s.execute("SELECT count(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Datum::Int(1000));
}

#[test]
fn connection_scaling() {
    // MX mode: any node coordinates, spreading client connections
    let c = cluster();
    let mut s = c.session().unwrap();
    s.execute("CREATE TABLE t (k bigint PRIMARY KEY, v bigint)").unwrap();
    s.execute("SELECT create_distributed_table('t', 'k')").unwrap();
    s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    c.enable_mx();
    for node in c.node_ids() {
        let mut ws = c.session_on(node).unwrap();
        let r = ws.execute("SELECT v FROM t WHERE k = 1").unwrap();
        assert_eq!(r.rows()[0][0], Datum::Int(10), "via node {}", node.0);
    }
    // and the shared connection limit is enforced cluster-wide
    assert!(c.connection_limit() > 0);
}
